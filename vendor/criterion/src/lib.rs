//! Offline stand-in for `criterion`.
//!
//! Provides the harness surface the workspace's benches use: `black_box`,
//! `Criterion::bench_function`, `benchmark_group` (with `sample_size` and
//! `finish`), and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — warm up once, then run batches of
//! iterations inside a small wall-clock budget and report the mean — which
//! is enough to compare implementations on the same machine. `cargo bench
//! -- --test` runs each benchmark exactly once as a smoke test, matching
//! upstream. Unknown CLI flags (and cargo's bench-name filter argument)
//! are accepted and used as substring filters, as upstream does.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to every benchmark function.
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filters: Vec::new(),
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Build from the process CLI args (`--test` enables smoke mode;
    /// non-flag args are name filters; other flags are ignored).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                c.test_mode = true;
            } else if !arg.starts_with('-') {
                c.filters.push(arg);
            }
        }
        c
    }

    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f))
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.selected(id) {
            run_one(id, self.test_mode, self.budget, &mut f);
        }
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Print the trailing summary (no-op in the stand-in).
    pub fn final_summary(&mut self) {}
}

/// A named group; `sample_size` is accepted for source compatibility but
/// the time budget is what actually bounds measurement.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the wall-clock budget governs instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.selected(&full) {
            run_one(
                &full,
                self.criterion.test_mode,
                self.criterion.budget,
                &mut f,
            );
        }
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    test_mode: bool,
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.iters = 1;
            self.elapsed = Duration::ZERO;
            return;
        }
        // Warm-up and batch-size calibration: one untimed call, then grow
        // batches until the budget is spent.
        black_box(routine());
        let mut total_iters = 0u64;
        let mut batch = 1u64;
        let start = Instant::now();
        while start.elapsed() < self.budget {
            for _ in 0..batch {
                black_box(routine());
            }
            total_iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.iters = total_iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, test_mode: bool, budget: Duration, f: &mut F) {
    let mut b = Bencher {
        test_mode,
        budget,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if test_mode {
        println!("test {id} ... ok");
    } else if b.iters > 0 {
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!(
            "{id:<50} {:>12}/iter  ({} iters in {:.2?})",
            format_ns(per_iter),
            b.iters,
            b.elapsed
        );
    } else {
        println!("{id:<50} (no measurement)");
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher {
            test_mode: true,
            budget: Duration::from_millis(10),
            iters: 0,
            elapsed: Duration::ZERO,
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(b.iters, 1);
    }

    #[test]
    fn measurement_counts_iters() {
        let mut b = Bencher {
            test_mode: false,
            budget: Duration::from_millis(5),
            iters: 0,
            elapsed: Duration::ZERO,
        };
        b.iter(|| black_box(1 + 1));
        assert!(b.iters > 0);
        assert!(b.elapsed >= Duration::from_millis(5));
    }

    #[test]
    fn filters_select_by_substring() {
        let c = Criterion {
            test_mode: false,
            filters: vec!["queue".into()],
            budget: Duration::from_millis(1),
        };
        assert!(c.selected("event_queue_push_pop"));
        assert!(!c.selected("engine_run"));
        let open = Criterion::default();
        assert!(open.selected("anything"));
    }
}
