//! Offline stand-in for the event-loop layer crates (`mio`, `polling`,
//! `socket2`) this build cannot download: a minimal, safe wrapper over the
//! Linux readiness and batching syscalls the probenet live engine needs.
//!
//! The workspace's first-party crates forbid `unsafe`, so — exactly like
//! `vendor/loom` stands in for the loom model checker — this crate is the
//! one place the raw FFI lives, kept small enough to audit in one sitting:
//!
//! * [`Epoll`] — `epoll_create1` / `epoll_ctl` / `epoll_wait`, with level-
//!   or edge-triggered interest per registration ([`Interest`]);
//! * [`WakePipe`] — the classic self-pipe: a non-blocking pipe whose read
//!   end sits in the epoll set so any thread can wake the loop by writing
//!   one byte to a cloned [`WakeHandle`];
//! * [`send_batch`] / [`recv_batch`] — `sendmmsg` / `recvmmsg` submission
//!   of many UDP datagrams per syscall, with [`batching_available`] for
//!   callers that need a `send_to`/`recv_from` fallback ladder;
//! * [`set_socket_buffers`] — `SO_RCVBUF` / `SO_SNDBUF` sizing so a single
//!   socket can absorb the bursts of thousands of multiplexed sessions.
//!
//! Every public function is safe: file descriptors are taken as
//! [`RawFd`] + lifetimes are the caller's responsibility exactly as with
//! `std::os::fd`, but no public API can cause memory unsafety. All pointer
//! arithmetic is confined to the private `sys` module.
//!
//! On non-Linux targets the readiness and batching entry points return
//! `io::ErrorKind::Unsupported`, which the callers' fallback ladders turn
//! into plain blocking `std::net` IO.

use std::io;
use std::net::SocketAddr;
use std::os::fd::RawFd;
use std::sync::Arc;

/// What readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
    /// Edge-triggered (`EPOLLET`) instead of level-triggered delivery.
    pub edge: bool,
}

impl Interest {
    /// Level-triggered read interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
        edge: false,
    };
    /// Level-triggered read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
        edge: false,
    };

    /// This interest, delivered edge-triggered.
    pub fn edge_triggered(mut self) -> Interest {
        self.edge = true;
        self
    }
}

/// One readiness event out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (or peer hung up — reads will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error condition on the fd (reads/writes will surface it).
    pub error: bool,
}

/// Reusable event buffer for [`Epoll::wait`]; allocates once.
pub struct Events {
    raw: Vec<sys::RawEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            raw: vec![sys::RawEvent::default(); capacity.max(1)],
            len: 0,
        }
    }

    /// Events delivered by the last [`Epoll::wait`].
    pub fn iter(&self) -> impl Iterator<Item = PollEvent> + '_ {
        self.raw[..self.len].iter().map(sys::to_event)
    }

    /// Number of events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the last wait delivered nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A level/edge-triggered epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a new epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Epoll> {
        sys::epoll_create().map(|fd| Epoll { fd })
    }

    /// Register `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(self.fd, sys::CTL_ADD, fd, Some((token, interest)))
    }

    /// Change the interest of an already registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(self.fd, sys::CTL_MOD, fd, Some((token, interest)))
    }

    /// Remove `fd` from the set.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        sys::epoll_ctl(self.fd, sys::CTL_DEL, fd, None)
    }

    /// Wait up to `timeout_ms` (−1 = forever, 0 = poll) for readiness and
    /// fill `events`. Returns the number of events; `EINTR` retries
    /// internally so callers never see spurious interrupted errors.
    pub fn wait(&self, events: &mut Events, timeout_ms: i32) -> io::Result<usize> {
        let n = sys::epoll_wait(self.fd, &mut events.raw, timeout_ms)?;
        events.len = n;
        Ok(n)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        sys::close(self.fd);
    }
}

/// Shared write end of a [`WakePipe`]; clone freely across threads.
#[derive(Debug, Clone)]
pub struct WakeHandle {
    write: Arc<OwnedPipeFd>,
}

impl WakeHandle {
    /// Wake the loop owning the pipe's read end. Coalesces: waking an
    /// already-woken loop is a no-op (the pipe is non-blocking, a full
    /// pipe already guarantees a pending wakeup).
    pub fn wake(&self) {
        sys::write_byte(self.write.0);
    }
}

#[derive(Debug)]
struct OwnedPipeFd(RawFd);

impl Drop for OwnedPipeFd {
    fn drop(&mut self) {
        sys::close(self.0);
    }
}

/// A non-blocking self-pipe for event-driven wakeups: the read end lives
/// in an epoll set, any thread holding a [`WakeHandle`] can wake the loop.
#[derive(Debug)]
pub struct WakePipe {
    read: OwnedPipeFd,
    write: Arc<OwnedPipeFd>,
}

impl WakePipe {
    /// Create the pipe (both ends non-blocking, close-on-exec).
    pub fn new() -> io::Result<WakePipe> {
        let (r, w) = sys::pipe()?;
        Ok(WakePipe {
            read: OwnedPipeFd(r),
            write: Arc::new(OwnedPipeFd(w)),
        })
    }

    /// The fd to register for read interest in an epoll set.
    pub fn read_fd(&self) -> RawFd {
        self.read.0
    }

    /// A cloneable handle to the write end.
    pub fn handle(&self) -> WakeHandle {
        WakeHandle {
            write: Arc::clone(&self.write),
        }
    }

    /// Drain all pending wake bytes; returns how many were pending.
    pub fn drain(&self) -> usize {
        sys::drain(self.read.0)
    }
}

/// Metadata for one datagram received by [`recv_batch`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RecvMeta {
    /// Bytes written into the corresponding buffer.
    pub len: usize,
    /// Sender address, when the kernel reported one.
    pub from: Option<SocketAddr>,
}

/// Submit up to `msgs.len()` datagrams on `fd` with one `sendmmsg` call
/// (non-blocking). Each message is `(payload, destination)`; a `None`
/// destination sends on the connected peer. Returns how many messages the
/// kernel accepted (possibly fewer than submitted); `WouldBlock` when the
/// socket buffer is full, `Unsupported` where `sendmmsg` does not exist.
pub fn send_batch(fd: RawFd, msgs: &[(&[u8], Option<SocketAddr>)]) -> io::Result<usize> {
    sys::send_batch(fd, msgs)
}

/// Receive up to `bufs.len()` datagrams on `fd` with one `recvmmsg` call
/// (non-blocking). `meta[i]` describes the datagram landed in `bufs[i]`.
/// Returns the number received; `WouldBlock` when nothing is queued,
/// `Unsupported` where `recvmmsg` does not exist.
///
/// # Panics
/// Panics if `meta` is shorter than `bufs`.
pub fn recv_batch(fd: RawFd, bufs: &mut [&mut [u8]], meta: &mut [RecvMeta]) -> io::Result<usize> {
    assert!(meta.len() >= bufs.len(), "meta must cover every buffer");
    sys::recv_batch(fd, bufs, meta)
}

/// Are `sendmmsg`/`recvmmsg` available on this host? Probed once with a
/// zero-length submission and cached; callers use this to pick the batched
/// rung of their fallback ladder up front.
pub fn batching_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(sys::probe_batching)
}

/// Ask the kernel for `rcv`/`snd` byte socket buffers (`SO_RCVBUF` /
/// `SO_SNDBUF`). Best-effort: the kernel clamps to its configured maxima,
/// so the resulting sizes may be smaller than requested.
pub fn set_socket_buffers(fd: RawFd, rcv: usize, snd: usize) -> io::Result<()> {
    sys::set_socket_buffers(fd, rcv, snd)
}

#[cfg(target_os = "linux")]
mod sys {
    //! The raw syscall layer. Everything `unsafe` in the crate is here.
    //!
    //! Struct layouts mirror the x86-64 Linux kernel/glibc ABI and are
    //! pinned by the layout tests at the bottom of the crate.

    use super::{Interest, PollEvent, RecvMeta};
    use std::io;
    use std::mem;
    use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_uint, c_void};

    // epoll_ctl ops.
    pub const CTL_ADD: c_int = 1;
    pub const CTL_DEL: c_int = 2;
    pub const CTL_MOD: c_int = 3;

    // epoll event bits.
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLET: u32 = 1 << 31;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const O_NONBLOCK: c_int = 0o4000;
    const O_CLOEXEC: c_int = 0o2000000;
    const MSG_DONTWAIT: c_int = 0x40;
    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;
    const SOL_SOCKET: c_int = 1;
    const SO_SNDBUF: c_int = 7;
    const SO_RCVBUF: c_int = 8;
    const EINTR: i32 = 4;
    const EINVAL: i32 = 22;

    /// `struct epoll_event`. The kernel ABI packs this to 12 bytes on
    /// x86-64 (no padding between `events` and `data`).
    #[derive(Debug, Clone, Copy, Default)]
    #[repr(C, packed)]
    pub struct RawEvent {
        events: u32,
        data: u64,
    }

    #[repr(C)]
    struct IoVec {
        base: *mut c_void,
        len: usize,
    }

    #[repr(C)]
    struct MsgHdr {
        name: *mut c_void,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut c_void,
        controllen: usize,
        flags: c_int,
    }

    #[repr(C)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: c_uint,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SockAddrIn {
        family: u16,
        port_be: u16,
        addr_be: u32,
        zero: [u8; 8],
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct SockAddrIn6 {
        family: u16,
        port_be: u16,
        flowinfo: u32,
        addr: [u8; 16],
        scope_id: u32,
    }

    /// Big enough for either address family, like `sockaddr_storage`.
    #[repr(C, align(8))]
    #[derive(Clone, Copy)]
    struct SockAddrBuf {
        bytes: [u8; 128],
    }

    impl Default for SockAddrBuf {
        fn default() -> Self {
            SockAddrBuf { bytes: [0; 128] }
        }
    }

    mod ffi {
        use super::{MMsgHdr, RawEvent};
        use std::os::raw::{c_int, c_uint, c_void};

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut RawEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut RawEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
            pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
            pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
            pub fn close(fd: c_int) -> c_int;
            pub fn sendmmsg(fd: c_int, msgvec: *mut MMsgHdr, vlen: c_uint, flags: c_int) -> c_int;
            pub fn recvmmsg(
                fd: c_int,
                msgvec: *mut MMsgHdr,
                vlen: c_uint,
                flags: c_int,
                timeout: *mut c_void,
            ) -> c_int;
            pub fn setsockopt(
                fd: c_int,
                level: c_int,
                optname: c_int,
                optval: *const c_void,
                optlen: u32,
            ) -> c_int;
        }
    }

    fn last_err() -> io::Error {
        io::Error::last_os_error()
    }

    pub fn epoll_create() -> io::Result<RawFd> {
        // SAFETY: epoll_create1 takes no pointers.
        let fd = unsafe { ffi::epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            Err(last_err())
        } else {
            Ok(fd)
        }
    }

    fn interest_bits(i: Interest) -> u32 {
        let mut bits = 0;
        if i.readable {
            bits |= EPOLLIN;
        }
        if i.writable {
            bits |= EPOLLOUT;
        }
        if i.edge {
            bits |= EPOLLET;
        }
        bits
    }

    pub fn epoll_ctl(
        epfd: RawFd,
        op: c_int,
        fd: RawFd,
        reg: Option<(u64, Interest)>,
    ) -> io::Result<()> {
        let mut ev = RawEvent::default();
        let ptr = match reg {
            Some((token, interest)) => {
                ev = RawEvent {
                    events: interest_bits(interest),
                    data: token,
                };
                &mut ev as *mut RawEvent
            }
            // DEL ignores the event but old kernels want a non-null ptr.
            None => &mut ev as *mut RawEvent,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { ffi::epoll_ctl(epfd, op, fd, ptr) };
        if rc < 0 {
            Err(last_err())
        } else {
            Ok(())
        }
    }

    pub fn epoll_wait(epfd: RawFd, events: &mut [RawEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `events` is a valid, writable slice; maxevents is its
            // length, so the kernel cannot write past it.
            let rc = unsafe {
                ffi::epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms)
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = last_err();
            if err.raw_os_error() == Some(EINTR) {
                continue;
            }
            return Err(err);
        }
    }

    pub fn to_event(raw: &RawEvent) -> PollEvent {
        // Copy out of the packed struct before touching the fields.
        let bits = { raw.events };
        let data = { raw.data };
        PollEvent {
            token: data,
            readable: bits & (EPOLLIN | EPOLLHUP) != 0,
            writable: bits & EPOLLOUT != 0,
            error: bits & EPOLLERR != 0,
        }
    }

    pub fn pipe() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: `fds` is a valid 2-element array for pipe2 to fill.
        let rc = unsafe { ffi::pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc < 0 {
            Err(last_err())
        } else {
            Ok((fds[0], fds[1]))
        }
    }

    pub fn write_byte(fd: RawFd) {
        let byte = 1u8;
        // SAFETY: one readable byte; short/failed writes are fine (a full
        // pipe already holds a pending wakeup).
        let _ = unsafe { ffi::write(fd, (&byte as *const u8).cast(), 1) };
    }

    pub fn drain(fd: RawFd) -> usize {
        let mut total = 0usize;
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: `buf` is valid and writable for its full length.
            let n = unsafe { ffi::read(fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                return total;
            }
            total += n as usize;
        }
    }

    pub fn close(fd: RawFd) {
        // SAFETY: callers only close fds they own, exactly once.
        let _ = unsafe { ffi::close(fd) };
    }

    fn encode_addr(addr: SocketAddr, buf: &mut SockAddrBuf) -> u32 {
        match addr {
            SocketAddr::V4(v4) => {
                let raw = SockAddrIn {
                    family: AF_INET,
                    port_be: v4.port().to_be(),
                    addr_be: u32::from(*v4.ip()).to_be(),
                    zero: [0; 8],
                };
                let len = mem::size_of::<SockAddrIn>();
                // SAFETY: SockAddrIn is plain-old-data no larger than buf.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        (&raw as *const SockAddrIn).cast::<u8>(),
                        buf.bytes.as_mut_ptr(),
                        len,
                    );
                }
                len as u32
            }
            SocketAddr::V6(v6) => {
                let raw = SockAddrIn6 {
                    family: AF_INET6,
                    port_be: v6.port().to_be(),
                    flowinfo: v6.flowinfo(),
                    addr: v6.ip().octets(),
                    scope_id: v6.scope_id(),
                };
                let len = mem::size_of::<SockAddrIn6>();
                // SAFETY: SockAddrIn6 is plain-old-data no larger than buf.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        (&raw as *const SockAddrIn6).cast::<u8>(),
                        buf.bytes.as_mut_ptr(),
                        len,
                    );
                }
                len as u32
            }
        }
    }

    fn decode_addr(buf: &SockAddrBuf, len: u32) -> Option<SocketAddr> {
        if (len as usize) < 2 {
            return None;
        }
        let family = u16::from_ne_bytes([buf.bytes[0], buf.bytes[1]]);
        if family == AF_INET && len as usize >= mem::size_of::<SockAddrIn>() {
            let port = u16::from_be_bytes([buf.bytes[2], buf.bytes[3]]);
            let ip = Ipv4Addr::new(buf.bytes[4], buf.bytes[5], buf.bytes[6], buf.bytes[7]);
            return Some(SocketAddr::new(IpAddr::V4(ip), port));
        }
        if family == AF_INET6 && len as usize >= mem::size_of::<SockAddrIn6>() {
            let port = u16::from_be_bytes([buf.bytes[2], buf.bytes[3]]);
            let mut octets = [0u8; 16];
            octets.copy_from_slice(&buf.bytes[8..24]);
            return Some(SocketAddr::new(IpAddr::V6(Ipv6Addr::from(octets)), port));
        }
        None
    }

    pub fn send_batch(fd: RawFd, msgs: &[(&[u8], Option<SocketAddr>)]) -> io::Result<usize> {
        if msgs.is_empty() {
            return Ok(0);
        }
        let mut iovecs: Vec<IoVec> = Vec::with_capacity(msgs.len());
        let mut addrs: Vec<SockAddrBuf> = vec![SockAddrBuf::default(); msgs.len()];
        let mut hdrs: Vec<MMsgHdr> = Vec::with_capacity(msgs.len());
        for (i, (payload, to)) in msgs.iter().enumerate() {
            iovecs.push(IoVec {
                // sendmmsg never writes through msg_iov; the const→mut cast
                // mirrors the C prototype.
                base: payload.as_ptr() as *mut c_void,
                len: payload.len(),
            });
            let (name, namelen) = match to {
                Some(addr) => {
                    let len = encode_addr(*addr, &mut addrs[i]);
                    (addrs[i].bytes.as_mut_ptr().cast::<c_void>(), len)
                }
                None => (std::ptr::null_mut(), 0),
            };
            hdrs.push(MMsgHdr {
                hdr: MsgHdr {
                    name,
                    namelen,
                    iov: &mut iovecs[i] as *mut IoVec,
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            });
        }
        // SAFETY: every pointer in `hdrs` targets a live Vec element that
        // outlives this call; vlen equals the header count.
        let rc =
            unsafe { ffi::sendmmsg(fd, hdrs.as_mut_ptr(), hdrs.len() as c_uint, MSG_DONTWAIT) };
        if rc < 0 {
            Err(last_err())
        } else {
            Ok(rc as usize)
        }
    }

    pub fn recv_batch(
        fd: RawFd,
        bufs: &mut [&mut [u8]],
        meta: &mut [RecvMeta],
    ) -> io::Result<usize> {
        if bufs.is_empty() {
            return Ok(0);
        }
        let mut iovecs: Vec<IoVec> = Vec::with_capacity(bufs.len());
        let mut addrs: Vec<SockAddrBuf> = vec![SockAddrBuf::default(); bufs.len()];
        let mut hdrs: Vec<MMsgHdr> = Vec::with_capacity(bufs.len());
        for (i, buf) in bufs.iter_mut().enumerate() {
            iovecs.push(IoVec {
                base: buf.as_mut_ptr().cast(),
                len: buf.len(),
            });
            hdrs.push(MMsgHdr {
                hdr: MsgHdr {
                    name: addrs[i].bytes.as_mut_ptr().cast(),
                    namelen: mem::size_of::<SockAddrBuf>() as u32,
                    iov: std::ptr::null_mut(), // patched below, after iovecs stops growing
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            });
        }
        for (hdr, iov) in hdrs.iter_mut().zip(iovecs.iter_mut()) {
            hdr.hdr.iov = iov as *mut IoVec;
        }
        // SAFETY: every buffer/address slot pointed to by `hdrs` is a live,
        // writable Vec element sized as declared; vlen equals the count.
        let rc = unsafe {
            ffi::recvmmsg(
                fd,
                hdrs.as_mut_ptr(),
                hdrs.len() as c_uint,
                MSG_DONTWAIT,
                std::ptr::null_mut(),
            )
        };
        if rc < 0 {
            return Err(last_err());
        }
        let n = rc as usize;
        for i in 0..n {
            meta[i] = RecvMeta {
                len: hdrs[i].len as usize,
                from: decode_addr(&addrs[i], hdrs[i].hdr.namelen),
            };
        }
        Ok(n)
    }

    pub fn probe_batching() -> bool {
        // A zero-length submission on an invalid fd: a kernel with the
        // syscall reports EBADF/EINVAL/ENOTSOCK; a libc shim without it
        // reports ENOSYS. Either way nothing is sent.
        // SAFETY: vlen 0 with a dangling-but-unread msgvec is never
        // dereferenced; fd -1 is rejected before any IO.
        let rc = unsafe { ffi::sendmmsg(-1, std::ptr::null_mut(), 0, MSG_DONTWAIT) };
        if rc >= 0 {
            return true;
        }
        let errno = last_err().raw_os_error().unwrap_or(EINVAL);
        errno != libc_enosys()
    }

    const fn libc_enosys() -> i32 {
        38 // ENOSYS on every Linux arch this project targets
    }

    pub fn set_socket_buffers(fd: RawFd, rcv: usize, snd: usize) -> io::Result<()> {
        for (opt, val) in [(SO_RCVBUF, rcv), (SO_SNDBUF, snd)] {
            let v = val.min(i32::MAX as usize) as c_int;
            // SAFETY: optval points at a live c_int of the declared length.
            let rc = unsafe {
                ffi::setsockopt(
                    fd,
                    SOL_SOCKET,
                    opt,
                    (&v as *const c_int).cast(),
                    mem::size_of::<c_int>() as u32,
                )
            };
            if rc < 0 {
                return Err(last_err());
            }
        }
        Ok(())
    }

    #[cfg(test)]
    mod layout {
        use super::*;

        #[test]
        fn epoll_event_is_kernel_packed() {
            assert_eq!(mem::size_of::<RawEvent>(), 12);
        }

        #[test]
        fn msghdr_matches_glibc_x86_64() {
            assert_eq!(mem::size_of::<MsgHdr>(), 56);
            assert_eq!(mem::size_of::<MMsgHdr>(), 64);
            assert_eq!(mem::size_of::<IoVec>(), 16);
        }

        #[test]
        fn sockaddr_sizes() {
            assert_eq!(mem::size_of::<SockAddrIn>(), 16);
            assert_eq!(mem::size_of::<SockAddrIn6>(), 28);
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Portable stub: every readiness/batching call reports `Unsupported`,
    //! so callers drop to their blocking `std::net` fallback rung.

    use super::{Interest, PollEvent, RecvMeta};
    use std::io;
    use std::net::SocketAddr;
    use std::os::fd::RawFd;

    pub const CTL_ADD: i32 = 1;
    pub const CTL_DEL: i32 = 2;
    pub const CTL_MOD: i32 = 3;

    #[derive(Debug, Clone, Copy, Default)]
    pub struct RawEvent;

    fn unsupported() -> io::Error {
        io::Error::new(io::ErrorKind::Unsupported, "rawpoll: not linux")
    }

    pub fn epoll_create() -> io::Result<RawFd> {
        Err(unsupported())
    }

    pub fn epoll_ctl(_: RawFd, _: i32, _: RawFd, _: Option<(u64, Interest)>) -> io::Result<()> {
        Err(unsupported())
    }

    pub fn epoll_wait(_: RawFd, _: &mut [RawEvent], _: i32) -> io::Result<usize> {
        Err(unsupported())
    }

    pub fn to_event(_: &RawEvent) -> PollEvent {
        PollEvent {
            token: 0,
            readable: false,
            writable: false,
            error: false,
        }
    }

    pub fn pipe() -> io::Result<(RawFd, RawFd)> {
        Err(unsupported())
    }

    pub fn write_byte(_: RawFd) {}

    pub fn drain(_: RawFd) -> usize {
        0
    }

    pub fn close(_: RawFd) {}

    pub fn send_batch(_: RawFd, _: &[(&[u8], Option<SocketAddr>)]) -> io::Result<usize> {
        Err(unsupported())
    }

    pub fn recv_batch(_: RawFd, _: &mut [&mut [u8]], _: &mut [RecvMeta]) -> io::Result<usize> {
        Err(unsupported())
    }

    pub fn probe_batching() -> bool {
        false
    }

    pub fn set_socket_buffers(_: RawFd, _: usize, _: usize) -> io::Result<()> {
        Err(unsupported())
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::net::UdpSocket;
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn epoll_sees_wake_pipe() {
        let epoll = Epoll::new().expect("epoll");
        let pipe = WakePipe::new().expect("pipe");
        epoll.add(pipe.read_fd(), 7, Interest::READ).expect("add");

        let mut events = Events::with_capacity(4);
        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(epoll.wait(&mut events, 0).expect("wait"), 0);

        pipe.handle().wake();
        assert_eq!(epoll.wait(&mut events, 1000).expect("wait"), 1);
        let ev = events.iter().next().expect("event");
        assert_eq!(ev.token, 7);
        assert!(ev.readable);

        // Level-triggered: still readable until drained.
        assert_eq!(epoll.wait(&mut events, 0).expect("wait"), 1);
        assert!(pipe.drain() >= 1);
        assert_eq!(epoll.wait(&mut events, 0).expect("wait"), 0);
    }

    #[test]
    fn wake_from_another_thread_unblocks_wait() {
        let epoll = Epoll::new().expect("epoll");
        let pipe = WakePipe::new().expect("pipe");
        epoll.add(pipe.read_fd(), 1, Interest::READ).expect("add");
        let handle = pipe.handle();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            handle.wake();
        });
        let mut events = Events::with_capacity(1);
        let n = epoll.wait(&mut events, 5_000).expect("wait");
        assert_eq!(n, 1);
        waker.join().expect("waker thread");
    }

    #[test]
    fn batched_send_and_receive_roundtrip() {
        let a = UdpSocket::bind("127.0.0.1:0").expect("bind a");
        let b = UdpSocket::bind("127.0.0.1:0").expect("bind b");
        a.set_nonblocking(true).expect("nonblocking");
        b.set_nonblocking(true).expect("nonblocking");
        let to = b.local_addr().expect("addr");

        let payloads: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i; 16 + i as usize]).collect();
        let msgs: Vec<(&[u8], Option<std::net::SocketAddr>)> =
            payloads.iter().map(|p| (p.as_slice(), Some(to))).collect();
        let sent = send_batch(a.as_raw_fd(), &msgs).expect("send_batch");
        assert_eq!(sent, 5);

        std::thread::sleep(Duration::from_millis(50));
        let mut storage: Vec<Vec<u8>> = (0..8).map(|_| vec![0u8; 64]).collect();
        let mut meta = vec![RecvMeta::default(); 8];
        let got = {
            let mut bufs: Vec<&mut [u8]> = storage.iter_mut().map(|b| b.as_mut_slice()).collect();
            recv_batch(b.as_raw_fd(), &mut bufs, &mut meta).expect("recv_batch")
        };
        assert_eq!(got, 5);
        for (i, m) in meta[..got].iter().enumerate() {
            assert_eq!(m.len, 16 + i);
            assert_eq!(storage[i][..m.len], payloads[i][..]);
            assert_eq!(m.from, Some(a.local_addr().expect("addr")));
        }
        // Queue drained: the next batched read would block.
        let err = {
            let mut bufs: Vec<&mut [u8]> = storage.iter_mut().map(|b| b.as_mut_slice()).collect();
            recv_batch(b.as_raw_fd(), &mut bufs, &mut meta).expect_err("empty")
        };
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    }

    #[test]
    fn batching_is_available_on_linux() {
        assert!(batching_available());
    }

    #[test]
    fn socket_buffers_can_be_sized() {
        let s = UdpSocket::bind("127.0.0.1:0").expect("bind");
        set_socket_buffers(s.as_raw_fd(), 1 << 20, 1 << 20).expect("setsockopt");
    }

    #[test]
    fn epoll_reports_udp_readability() {
        let a = UdpSocket::bind("127.0.0.1:0").expect("bind a");
        let b = UdpSocket::bind("127.0.0.1:0").expect("bind b");
        b.set_nonblocking(true).expect("nonblocking");
        let epoll = Epoll::new().expect("epoll");
        epoll
            .add(b.as_raw_fd(), 42, Interest::READ_WRITE)
            .expect("add");
        let mut events = Events::with_capacity(4);
        // Writable immediately, not readable.
        epoll.wait(&mut events, 1000).expect("wait");
        assert!(events.iter().any(|e| e.token == 42 && e.writable));
        assert!(!events.iter().any(|e| e.readable));

        a.send_to(b"ping", b.local_addr().expect("addr"))
            .expect("send");
        std::thread::sleep(Duration::from_millis(30));
        epoll.wait(&mut events, 1000).expect("wait");
        assert!(events.iter().any(|e| e.token == 42 && e.readable));
    }
}
