//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Buf`]/[`BufMut`] trait subset the wire codecs use:
//! big-endian integer reads advancing a `&[u8]` cursor, and integer/slice
//! writes appending to a `Vec<u8>`. Reads past the end panic, matching
//! upstream `bytes` semantics (callers bounds-check first).

#![forbid(unsafe_code)]

/// Read side: a cursor over bytes. Multi-byte reads are big-endian
/// (network order), as in upstream `bytes`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy out the next `n` bytes into `dst` and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write side: append-only byte sink. Multi-byte writes are big-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_big_endian_and_advance() {
        let data = [0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde];
        let mut buf: &[u8] = &data;
        assert_eq!(buf.get_u16(), 0x1234);
        assert_eq!(buf.get_u8(), 0x56);
        assert_eq!(buf.get_u32(), 0x789abcde);
        assert_eq!(buf.remaining(), 0);
        assert!(!buf.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn read_past_end_panics() {
        let mut buf: &[u8] = &[0x01];
        let _ = buf.get_u16();
    }

    #[test]
    fn writes_round_trip_reads() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u16(0xbeef);
        out.put_u8(0x01);
        out.put_u32(0xdeadbeef);
        out.put_slice(b"xyz");
        let mut buf: &[u8] = &out;
        assert_eq!(buf.get_u16(), 0xbeef);
        assert_eq!(buf.get_u8(), 0x01);
        assert_eq!(buf.get_u32(), 0xdeadbeef);
        assert_eq!(buf, b"xyz");
    }
}
