//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the `Serialize`/`Deserialize` trait pair the workspace derives,
//! modeled around an owned JSON [`Value`] tree instead of serde's visitor
//! machinery. The only serializer the workspace uses is JSON (`serde_json`,
//! also vendored), so the value-tree design loses nothing while staying a
//! few hundred lines.
//!
//! The derive macros live in `serde_derive` (vendored, no `syn`/`quote`)
//! and generate impls of these traits for structs with named fields and
//! enums with unit or one-field tuple variants — the only shapes the
//! workspace contains.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (exact, not routed through f64).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float. Non-finite values serialize as `null`, as serde_json does.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keys keep insertion order so serialization is
    /// deterministic and matches field declaration order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable path + expectation.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => return Err(DeError(format!("expected unsigned int, got {other:?}"))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| DeError(format!("{u} exceeds i64")))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError(format!("expected int, got {other:?}"))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            // serde_json writes non-finite floats as null; accept the
            // round-trip back as NaN.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => format!("{other:?}"),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
impl_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        let v: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&v.to_value()).unwrap(), None);
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert_eq!(v.get("b"), None);
    }
}
