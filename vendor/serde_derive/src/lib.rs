//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde`'s value-tree `Serialize` /
//! `Deserialize` traits. Implemented directly on `proc_macro::TokenStream`
//! (no `syn`/`quote`, which are unavailable offline), so it supports exactly
//! the shapes this workspace contains:
//!
//! * structs with named fields (any visibility, no generics);
//! * enums whose variants are unit or single-field tuple variants.
//!
//! Anything else produces a `compile_error!` naming the limitation, so a
//! future unsupported type fails loudly at the derive site.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input declared.
enum Shape {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skip `#[...]` attributes (including doc comments) and visibility
/// modifiers at the current position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < tokens.len() && is_punct(&tokens[i], '#') {
            i += 2; // '#' + bracket group
            continue;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1; // pub(crate) etc.
                }
                continue;
            }
        }
        return i;
    }
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(t) if is_punct(t, '<')) {
        return Err(format!("derive on generic type `{name}` is not supported"));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "derive on `{name}` requires a braced body (tuple/unit structs unsupported)"
            ))
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();

    match kind.as_str() {
        "struct" => {
            let mut fields = Vec::new();
            let mut j = 0;
            while j < body.len() {
                j = skip_attrs_and_vis(&body, j);
                if j >= body.len() {
                    break;
                }
                let fname = match &body[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => return Err(format!("expected field name, got {other:?}")),
                };
                j += 1;
                if !matches!(body.get(j), Some(t) if is_punct(t, ':')) {
                    return Err(format!("expected `:` after field `{fname}`"));
                }
                j += 1;
                // Skip the type up to the next top-level comma. Generic
                // argument lists can contain commas, so track < > depth.
                let mut depth = 0i32;
                while j < body.len() {
                    match &body[j] {
                        t if is_punct(t, '<') => depth += 1,
                        t if is_punct(t, '>') => depth -= 1,
                        t if is_punct(t, ',') && depth == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                fields.push(fname);
            }
            Ok(Shape::Struct { name, fields })
        }
        "enum" => {
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body.len() {
                j = skip_attrs_and_vis(&body, j);
                if j >= body.len() {
                    break;
                }
                let vname = match &body[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => return Err(format!("expected variant name, got {other:?}")),
                };
                j += 1;
                let mut arity = 0usize;
                match body.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        // Count top-level comma-separated fields.
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if !inner.is_empty() {
                            arity = 1;
                            let mut depth = 0i32;
                            for t in &inner {
                                if is_punct(t, '<') {
                                    depth += 1;
                                } else if is_punct(t, '>') {
                                    depth -= 1;
                                } else if is_punct(t, ',') && depth == 0 {
                                    arity += 1;
                                }
                            }
                        }
                        j += 1;
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Err(format!(
                            "struct variant `{vname}` is not supported by the vendored derive"
                        ));
                    }
                    _ => {}
                }
                if arity > 1 {
                    return Err(format!(
                        "variant `{vname}` has {arity} fields; at most one is supported"
                    ));
                }
                // Skip an optional discriminant and the separating comma.
                while j < body.len() && !is_punct(&body[j], ',') {
                    j += 1;
                }
                j += 1;
                variants.push((vname, arity));
            }
            Ok(Shape::Enum { name, variants })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derive the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("(String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, arity)| {
                    if *arity == 0 {
                        format!("{name}::{v} => ::serde::Value::Str(String::from({v:?})),")
                    } else {
                        format!(
                            "{name}::{v}(inner) => ::serde::Value::Object(vec![\
                                 (String::from({v:?}), ::serde::Serialize::to_value(inner))]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derive the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             v.get({f:?}).unwrap_or(&::serde::Value::Null))\
                             .map_err(|e| ::serde::DeError(\
                                 format!(\"{name}.{f}: {{}}\", e.0)))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, a)| *a == 0)
                .map(|(v, _)| format!("{v:?} => return Ok({name}::{v}),"))
                .collect();
            let tuple_arms: String = variants
                .iter()
                .filter(|(_, a)| *a == 1)
                .map(|(v, _)| {
                    format!(
                        "if let Some(inner) = v.get({v:?}) {{\n\
                             return Ok({name}::{v}(::serde::Deserialize::from_value(inner)?));\n\
                         }}"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         if let ::serde::Value::Str(s) = v {{\n\
                             match s.as_str() {{ {unit_arms} _ => {{}} }}\n\
                         }}\n\
                         {tuple_arms}\n\
                         Err(::serde::DeError(format!(\n\
                             \"no variant of {name} matches {{v:?}}\")))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
