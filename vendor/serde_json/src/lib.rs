//! Offline stand-in for `serde_json`.
//!
//! Serializes and parses the vendored `serde` crate's [`Value`] tree.
//! Output conventions follow upstream serde_json where they matter to this
//! workspace: compact form has no whitespace, pretty form indents by two
//! spaces, non-finite floats serialize as `null`, and object keys keep
//! field declaration order so equal inputs give byte-identical output.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            write_seq(out, indent, depth, items.is_empty(), '[', ']', |out| {
                for (i, item) in items.iter().enumerate() {
                    sep_and_pad(out, indent, depth + 1, i > 0);
                    write_value(item, out, indent, depth + 1);
                }
            });
        }
        Value::Object(fields) => {
            write_seq(out, indent, depth, fields.is_empty(), '{', '}', |out| {
                for (i, (key, val)) in fields.iter().enumerate() {
                    sep_and_pad(out, indent, depth + 1, i > 0);
                    write_escaped(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(val, out, indent, depth + 1);
                }
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String),
) {
    out.push(open);
    if empty {
        out.push(close);
        return;
    }
    body(out);
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn sep_and_pad(out: &mut String, indent: Option<usize>, depth: usize, comma: bool) {
    if comma {
        out.push(',');
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's shortest round-trip Display, with `.0` appended for integral
    // values so floats stay floats across a parse, as upstream does.
    let s = f.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' at byte {}, got {other:?}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at byte {}, got {other:?}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs are not produced by our
                            // writer; decode lone BMP code points only.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| Error(format!("bad \\u{cp:04x}")))?;
                            out.push(c);
                        }
                        other => return Err(Error(format!("bad escape \\{}", other as char))),
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("bad \\u escape".into()))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !is_float {
            // Keep integers exact.
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<i64>() {
                    return Ok(Value::I64(-i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_shape() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("c".into(), Value::F64(2.5)),
        ]);
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        assert_eq!(out, r#"{"a":1,"b":[null,true],"c":2.5}"#);
    }

    #[test]
    fn integral_floats_keep_decimal_point() {
        let mut out = String::new();
        write_value(&Value::F64(3.0), &mut out, None, 0);
        assert_eq!(out, "3.0");
    }

    #[test]
    fn round_trips_through_parser() {
        let v = Value::Object(vec![
            ("n".into(), Value::U64(u64::MAX)),
            ("neg".into(), Value::I64(-42)),
            ("f".into(), Value::F64(0.125)),
            ("s".into(), Value::Str("line\n\"quoted\"".into())),
            ("none".into(), Value::Null),
        ]);
        let text = {
            let mut out = String::new();
            write_value(&v, &mut out, None, 0);
            out
        };
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn pretty_output_indents() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::U64(1)]))]);
        let mut out = String::new();
        write_value(&v, &mut out, Some(2), 0);
        assert_eq!(out, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut out = String::new();
        write_value(&Value::F64(f64::NAN), &mut out, None, 0);
        assert_eq!(out, "null");
    }

    #[test]
    fn parses_scientific_notation() {
        assert_eq!(parse("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(parse("-2.5e-1").unwrap(), Value::F64(-0.25));
    }
}
