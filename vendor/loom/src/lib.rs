//! Offline stand-in for the `loom` permutation-testing crate.
//!
//! This build environment has no crates.io access, so instead of the real
//! loom this vendored crate implements the core idea from first principles:
//! run the model closure many times, serialising all threads onto one
//! logical timeline, and drive a depth-first search over every scheduling
//! decision so that **all distinguishable interleavings** of the modeled
//! synchronisation operations are executed.
//!
//! ## What is modeled
//!
//! * [`thread::spawn`] / [`thread::JoinHandle::join`] / [`thread::yield_now`]
//! * [`sync::Mutex`] / [`sync::Condvar`] (no spurious wakeups; FIFO notify)
//! * [`sync::atomic`] (`AtomicU64`, `AtomicUsize`, `AtomicBool`) at
//!   sequentially-consistent granularity regardless of the `Ordering`
//!   argument
//! * [`sync::Arc`] (a plain re-export of `std::sync::Arc` — it carries no
//!   scheduling-relevant state)
//!
//! ## Exploration granularity and soundness
//!
//! Schedule points are placed *before* every mutex acquisition, condvar
//! wait/re-acquire, atomic operation, spawn, join, and explicit yield. For
//! programs whose shared state is entirely mutex-protected plus
//! sequentially-consistent atomics — which is exactly the discipline
//! `probenet`'s SPSC ring follows (the workspace forbids `unsafe`, so there
//! is no lock-free code to model weak memory orderings for) — the global
//! order of those operations fully determines every observable behavior, so
//! DFS over these decisions is exhaustive at sequential consistency.
//! Unlike real loom this stand-in does **not** model weak (Acquire/Release/
//! Relaxed) reorderings; the probenet ring only relies on mutex ordering
//! plus a monotone statistics counter, for which SeqCst exploration is the
//! relevant ground truth.
//!
//! Spin loops are handled with a fairness rule rather than unbounded
//! branching: a thread that calls [`thread::yield_now`] is descheduled
//! until some *other* thread has executed a step (or no other thread can
//! run). This prunes only schedules in which a spinning reader runs forever
//! without the writer making progress — schedules that cannot change any
//! state visible to other threads — and is what makes `while !done {
//! yield }` consumer loops finite under DFS.
//!
//! A failing execution re-panics out of [`model`] with the decision
//! sequence that produced it, so a reproduction is always attached.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex};

/// Hard cap on executions explored by one [`model`] call. A 2-thread model
/// with ~20 schedule points stays well under this; hitting the cap means
/// the model is too big for exhaustive search and should be shrunk.
const MAX_EXECUTIONS: usize = 2_000_000;
/// Hard cap on scheduling decisions in a single execution (guards against
/// livelock in un-yielding spin loops).
const MAX_DEPTH: usize = 20_000;

// ---------------------------------------------------------------------------
// Execution state shared between the controlled threads of one run.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Run {
    Runnable,
    /// Descheduled by `yield_now` until another thread makes progress.
    Yielded,
    /// Waiting for the mutex with this registry id to be released.
    BlockedMutex(usize),
    /// Waiting on the condvar with this registry id.
    BlockedCondvar(usize),
    /// Waiting for the thread with this id to finish.
    BlockedJoin(usize),
    Finished,
}

#[derive(Clone, Debug)]
struct Choice {
    chosen: usize,
    enabled: Vec<usize>,
}

#[derive(Debug)]
struct ExecState {
    threads: Vec<Run>,
    active: usize,
    /// Scheduling decisions made so far in this execution.
    path: Vec<Choice>,
    /// Prefix of decisions to replay before exploring fresh ones.
    replay: Vec<usize>,
    /// `Some(holder)` per registered mutex.
    mutexes: Vec<Option<usize>>,
    /// FIFO waiters per registered condvar.
    condvars: Vec<VecDeque<usize>>,
    panic_msg: Option<String>,
    /// Set once a panic is recorded: all parked threads unwind out.
    aborting: bool,
    done: bool,
}

struct Execution {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
}

thread_local! {
    /// (execution, id of the controlled thread running on this OS thread)
    static CONTEXT: RefCell<Option<(StdArc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Panic payload used to unwind controlled threads when another thread's
/// failure aborts the execution; swallowed by the thread wrapper.
struct AbortUnwind;

fn context() -> (StdArc<Execution>, usize) {
    CONTEXT.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitive used outside loom::model")
    })
}

impl Execution {
    fn new(replay: Vec<usize>) -> StdArc<Execution> {
        StdArc::new(Execution {
            state: StdMutex::new(ExecState {
                threads: vec![Run::Runnable],
                active: 0,
                path: Vec::new(),
                replay,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                panic_msg: None,
                aborting: false,
                done: false,
            }),
            cv: StdCondvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state.lock().expect("loom execution state poisoned")
    }

    /// Pick the next thread to run and hand the timeline over to it. Must
    /// be called with `st` holding the state lock; returns with the lock
    /// released. `me == usize::MAX` means "called from the driver" (never).
    fn choose_next(&self, me: usize, mut st: std::sync::MutexGuard<'_, ExecState>) {
        // The caller just executed a step: yields by *other* threads expire
        // so spinners become contenders again at this decision.
        for (t, r) in st.threads.iter_mut().enumerate() {
            if t != me && *r == Run::Yielded {
                *r = Run::Runnable;
            }
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Run::Runnable)
            .map(|(t, _)| t)
            .collect();
        let enabled = if runnable.is_empty() {
            // Only yielded threads (if any) are left: un-park them.
            let yielded: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, r)| **r == Run::Yielded)
                .map(|(t, _)| t)
                .collect();
            for &t in &yielded {
                st.threads[t] = Run::Runnable;
            }
            yielded
        } else {
            runnable
        };

        if enabled.is_empty() {
            if st.threads.iter().all(|r| *r == Run::Finished) {
                st.done = true;
            } else if !st.aborting {
                st.panic_msg = Some(format!(
                    "deadlock: no runnable thread, states {:?}",
                    st.threads
                ));
                st.aborting = true;
                st.done = true;
            }
            drop(st);
            self.cv.notify_all();
            return;
        }

        let depth = st.path.len();
        if depth >= MAX_DEPTH && !st.aborting {
            st.panic_msg = Some(format!("model exceeded {MAX_DEPTH} scheduling decisions"));
            st.aborting = true;
            st.done = true;
            drop(st);
            self.cv.notify_all();
            return;
        }
        let chosen = if depth < st.replay.len() {
            let c = st.replay[depth];
            debug_assert!(
                enabled.contains(&c),
                "nondeterministic replay: {c} not in {enabled:?} at depth {depth} \
                 (model closure must be deterministic apart from scheduling)"
            );
            c
        } else {
            enabled[0]
        };
        st.path.push(Choice { chosen, enabled });
        st.active = chosen;
        drop(st);
        self.cv.notify_all();
    }

    /// Park until this thread is the active one (or the run is aborting).
    fn wait_for_turn(&self, me: usize) {
        let mut st = self.lock();
        loop {
            if st.aborting {
                drop(st);
                std::panic::panic_any(AbortUnwind);
            }
            if st.active == me && st.threads[me] == Run::Runnable {
                return;
            }
            st = self.cv.wait(st).expect("loom execution state poisoned");
        }
    }

    /// One schedule point: optionally update own state, pick a successor,
    /// park until re-activated.
    fn schedule(&self, me: usize, set: impl FnOnce(&mut ExecState)) {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(AbortUnwind);
        }
        set(&mut st);
        let finished = st.threads[me] == Run::Finished;
        self.choose_next(me, st);
        if !finished {
            self.wait_for_turn(me);
        }
    }

    fn record_panic(&self, msg: String, me: usize) {
        let mut st = self.lock();
        if st.panic_msg.is_none() {
            st.panic_msg = Some(msg);
        }
        st.aborting = true;
        st.threads[me] = Run::Finished;
        st.done = true;
        drop(st);
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Public API: model()
// ---------------------------------------------------------------------------

/// Explore every interleaving of the model closure's synchronisation
/// operations, panicking (with the failing decision sequence) if any
/// execution panics, asserts, or deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = StdArc::new(f);
    let mut replay: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= MAX_EXECUTIONS,
            "loom model exceeded {MAX_EXECUTIONS} executions; shrink the model"
        );
        let exec = Execution::new(std::mem::take(&mut replay));
        let root_exec = StdArc::clone(&exec);
        let root_f = StdArc::clone(&f);
        // Thread 0 runs the closure itself under the scheduler.
        let root = std::thread::spawn(move || {
            run_controlled(root_exec, 0, move || {
                root_f();
            });
        });
        // Wait for the execution to finish.
        {
            let mut st = exec.lock();
            while !st.done {
                st = exec.cv.wait(st).expect("loom execution state poisoned");
            }
        }
        let _ = root.join();
        let st = exec.lock();
        if let Some(msg) = &st.panic_msg {
            let decisions: Vec<usize> = st.path.iter().map(|c| c.chosen).collect();
            panic!(
                "loom model failed after {executions} execution(s): {msg}\n\
                 failing schedule (thread ids, in decision order): {decisions:?}"
            );
        }
        // Depth-first backtrack: find the deepest decision with an
        // unexplored alternative and re-run with that prefix.
        let mut path = st.path.clone();
        drop(st);
        let mut next_prefix = None;
        while let Some(last) = path.pop() {
            let idx = last
                .enabled
                .iter()
                .position(|&t| t == last.chosen)
                .expect("chosen thread missing from its own enabled set");
            if idx + 1 < last.enabled.len() {
                let mut prefix: Vec<usize> = path.iter().map(|c| c.chosen).collect();
                prefix.push(last.enabled[idx + 1]);
                next_prefix = Some(prefix);
                break;
            }
        }
        match next_prefix {
            Some(p) => replay = p,
            None => break, // state space exhausted
        }
    }
}

/// Body shared by thread 0 and spawned threads: installs the TLS context,
/// waits for its first turn, runs the closure, and reports completion.
fn run_controlled<R>(exec: StdArc<Execution>, id: usize, body: impl FnOnce() -> R) -> Option<R> {
    CONTEXT.with(|c| *c.borrow_mut() = Some((StdArc::clone(&exec), id)));
    let result = catch_unwind(AssertUnwindSafe(|| {
        exec.wait_for_turn(id);
        body()
    }));
    CONTEXT.with(|c| *c.borrow_mut() = None);
    match result {
        Ok(v) => {
            // Mark finished; wake joiners. The finish step itself can
            // observe an abort raised by another thread — swallow it, the
            // run is over either way.
            let _ = catch_unwind(AssertUnwindSafe(|| {
                exec.schedule(id, |st| {
                    st.threads[id] = Run::Finished;
                    for r in st.threads.iter_mut() {
                        if *r == Run::BlockedJoin(id) {
                            *r = Run::Runnable;
                        }
                    }
                });
            }));
            finish_quietly(&exec, id);
            Some(v)
        }
        Err(payload) => {
            if payload.downcast_ref::<AbortUnwind>().is_none() {
                let msg = panic_message(&payload);
                exec.record_panic(msg, id);
            } else {
                // Secondary unwind caused by another thread's failure.
                finish_quietly(&exec, id);
            }
            None
        }
    }
}

/// Ensure this thread is marked Finished and waiters are woken, without
/// taking a schedule point (used on abort paths).
fn finish_quietly(exec: &Execution, id: usize) {
    let mut st = exec.lock();
    if st.threads[id] != Run::Finished {
        st.threads[id] = Run::Finished;
        for r in st.threads.iter_mut() {
            if *r == Run::BlockedJoin(id) {
                *r = Run::Runnable;
            }
        }
    }
    drop(st);
    exec.cv.notify_all();
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

/// Modeled threading: spawn/join/yield under the exploration scheduler.
pub mod thread {
    use super::*;

    /// Handle to a modeled thread; `join` blocks under the scheduler.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<Option<T>>,
        id: usize,
    }

    /// Spawn a controlled thread participating in the current model run.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (exec, me) = context();
        let id = {
            let mut st = exec.lock();
            st.threads.push(Run::Runnable);
            st.threads.len() - 1
        };
        let child_exec = StdArc::clone(&exec);
        let inner = std::thread::spawn(move || run_controlled(child_exec, id, f));
        // Creation is itself a visible step: the child may run first.
        exec.schedule(me, |_| {});
        JoinHandle { inner, id }
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish, returning its result (`Err` if it
        /// panicked, matching `std::thread::JoinHandle::join`).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            let (exec, me) = context();
            loop {
                let st = exec.lock();
                if st.threads[self.id] == Run::Finished {
                    drop(st);
                    break;
                }
                drop(st);
                exec.schedule(me, |st| st.threads[me] = Run::BlockedJoin(self.id));
            }
            match self.inner.join() {
                Ok(Some(v)) => Ok(v),
                // The child panicked (its payload was recorded and the run
                // is aborting) or was aborted; unwind this thread too.
                _ => std::panic::panic_any(AbortUnwind),
            }
        }
    }

    /// Deschedule the current thread until another thread makes progress.
    pub fn yield_now() {
        let (exec, me) = context();
        exec.schedule(me, |st| st.threads[me] = Run::Yielded);
    }
}

// ---------------------------------------------------------------------------
// sync
// ---------------------------------------------------------------------------

/// Modeled synchronisation primitives (std-API-compatible subset).
pub mod sync {
    use super::*;
    pub use std::sync::Arc;

    /// Error type kept for std API shape; lock poisoning is never produced
    /// by the model (a panic aborts the whole execution instead).
    #[derive(Debug)]
    pub struct PoisonError;

    fn mutex_id(exec: &Execution, slot: &std::sync::OnceLock<usize>) -> usize {
        *slot.get_or_init(|| {
            let mut st = exec.lock();
            st.mutexes.push(None);
            st.mutexes.len() - 1
        })
    }

    /// A mutex whose acquisition order is explored exhaustively.
    pub struct Mutex<T> {
        id: std::sync::OnceLock<usize>,
        data: StdMutex<T>,
    }

    /// Guard released (with a model-visible unlock) on drop.
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        /// A new modeled mutex.
        pub fn new(value: T) -> Self {
            Mutex {
                id: std::sync::OnceLock::new(),
                data: StdMutex::new(value),
            }
        }

        /// Acquire, exploring both "I got it first" and "the contender got
        /// it first" schedules. Never actually poisons.
        pub fn lock(&self) -> Result<MutexGuard<'_, T>, PoisonError> {
            let (exec, me) = context();
            let id = mutex_id(&exec, &self.id);
            // Preemption point *before* acquiring: a competing thread may
            // be scheduled to take the lock instead.
            exec.schedule(me, |_| {});
            loop {
                {
                    let mut st = exec.lock();
                    if st.aborting {
                        drop(st);
                        std::panic::panic_any(AbortUnwind);
                    }
                    if st.mutexes[id].is_none() {
                        st.mutexes[id] = Some(me);
                        break;
                    }
                }
                exec.schedule(me, |st| st.threads[me] = Run::BlockedMutex(id));
            }
            let inner = self
                .data
                .try_lock()
                .expect("loom mutex data contended despite serialized execution");
            Ok(MutexGuard {
                lock: self,
                inner: Some(inner),
            })
        }
    }

    impl<T> MutexGuard<'_, T> {
        fn model_unlock(lock_id: usize) {
            let (exec, _me) = context();
            let mut st = exec.lock();
            st.mutexes[lock_id] = None;
            for r in st.threads.iter_mut() {
                if *r == Run::BlockedMutex(lock_id) {
                    *r = Run::Runnable;
                }
            }
            // No schedule point here: the next acquisition point branches
            // over who enters the following critical section.
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard accessed after release")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard accessed after release")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            drop(self.inner.take());
            let id = *self.lock.id.get().expect("locked mutex has an id");
            Self::model_unlock(id);
        }
    }

    /// A condition variable with FIFO wakeups and no spurious wakeups.
    pub struct Condvar {
        id: std::sync::OnceLock<usize>,
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Condvar {
        /// A new modeled condvar.
        pub fn new() -> Self {
            Condvar {
                id: std::sync::OnceLock::new(),
            }
        }

        fn cv_id(&self, exec: &Execution) -> usize {
            *self.id.get_or_init(|| {
                let mut st = exec.lock();
                st.condvars.push(VecDeque::new());
                st.condvars.len() - 1
            })
        }

        /// Atomically release the guard and wait for a notification, then
        /// re-acquire (exploring contention on the way back in).
        pub fn wait<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
        ) -> Result<MutexGuard<'a, T>, PoisonError> {
            let (exec, me) = context();
            let cv = self.cv_id(&exec);
            let mutex = guard.lock;
            drop(guard); // model-visible unlock, wakes mutex waiters
            {
                let mut st = exec.lock();
                st.condvars[cv].push_back(me);
            }
            exec.schedule(me, |st| st.threads[me] = Run::BlockedCondvar(cv));
            // Re-acquire once notified (lock() has its own branch points).
            mutex.lock()
        }

        /// Wake the longest-waiting thread, if any.
        pub fn notify_one(&self) {
            let (exec, _me) = context();
            let cv = self.cv_id(&exec);
            let mut st = exec.lock();
            if let Some(t) = st.condvars[cv].pop_front() {
                debug_assert_eq!(st.threads[t], Run::BlockedCondvar(cv));
                st.threads[t] = Run::Runnable;
            }
        }

        /// Wake every waiting thread.
        pub fn notify_all(&self) {
            let (exec, _me) = context();
            let cv = self.cv_id(&exec);
            let mut st = exec.lock();
            while let Some(t) = st.condvars[cv].pop_front() {
                st.threads[t] = Run::Runnable;
            }
        }
    }

    /// Sequentially-consistent modeled atomics (every op is a schedule
    /// point; the `Ordering` argument is accepted but not weakened).
    pub mod atomic {
        use super::super::context;
        pub use std::sync::atomic::Ordering;

        macro_rules! modeled_atomic {
            ($name:ident, $std:ty, $int:ty) => {
                /// Modeled atomic: each operation is a scheduling decision.
                pub struct $name {
                    inner: $std,
                }

                impl $name {
                    /// A new modeled atomic with the given initial value.
                    pub const fn new(v: $int) -> Self {
                        Self {
                            inner: <$std>::new(v),
                        }
                    }

                    /// Modeled load (SeqCst regardless of `_order`).
                    pub fn load(&self, _order: Ordering) -> $int {
                        let (exec, me) = context();
                        exec.schedule(me, |_| {});
                        self.inner.load(Ordering::SeqCst)
                    }

                    /// Modeled store (SeqCst regardless of `_order`).
                    pub fn store(&self, v: $int, _order: Ordering) {
                        let (exec, me) = context();
                        exec.schedule(me, |_| {});
                        self.inner.store(v, Ordering::SeqCst)
                    }

                    /// Modeled read-modify-write add.
                    pub fn fetch_add(&self, v: $int, _order: Ordering) -> $int {
                        let (exec, me) = context();
                        exec.schedule(me, |_| {});
                        self.inner.fetch_add(v, Ordering::SeqCst)
                    }
                }
            };
        }

        modeled_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        modeled_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        /// Modeled atomic bool: each operation is a scheduling decision.
        pub struct AtomicBool {
            inner: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            /// A new modeled atomic with the given initial value.
            pub const fn new(v: bool) -> Self {
                Self {
                    inner: std::sync::atomic::AtomicBool::new(v),
                }
            }

            /// Modeled load (SeqCst regardless of `_order`).
            pub fn load(&self, _order: Ordering) -> bool {
                let (exec, me) = context();
                exec.schedule(me, |_| {});
                self.inner.load(Ordering::SeqCst)
            }

            /// Modeled store (SeqCst regardless of `_order`).
            pub fn store(&self, v: bool, _order: Ordering) {
                let (exec, me) = context();
                exec.schedule(me, |_| {});
                self.inner.store(v, Ordering::SeqCst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};

    /// Two unsynchronised increments: the model must visit the lost-update
    /// interleaving, proving the explorer actually branches.
    #[test]
    fn detects_lost_update() {
        let saw_lost_update = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let saw = std::sync::Arc::clone(&saw_lost_update);
        super::model(move || {
            let v = Arc::new(AtomicUsize::new(0));
            let v2 = Arc::clone(&v);
            let t = super::thread::spawn(move || {
                let x = v2.load(Ordering::SeqCst);
                v2.store(x + 1, Ordering::SeqCst);
            });
            let x = v.load(Ordering::SeqCst);
            v.store(x + 1, Ordering::SeqCst);
            t.join().expect("child");
            if v.load(Ordering::SeqCst) == 1 {
                saw.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        });
        assert!(
            saw_lost_update.load(std::sync::atomic::Ordering::SeqCst),
            "exploration never reached the racy interleaving"
        );
    }

    /// Mutex-protected increments never lose an update in any schedule.
    #[test]
    fn mutex_increments_are_exact() {
        super::model(|| {
            let v = Arc::new(Mutex::new(0u64));
            let v2 = Arc::clone(&v);
            let t = super::thread::spawn(move || {
                *v2.lock().expect("lock") += 1;
            });
            *v.lock().expect("lock") += 1;
            t.join().expect("child");
            assert_eq!(*v.lock().expect("lock"), 2);
        });
    }

    /// A waiting consumer is woken by notify_one and observes the flag.
    #[test]
    fn condvar_handoff() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let t = super::thread::spawn(move || {
                let (m, cv) = &*pair2;
                let mut ready = m.lock().expect("lock");
                *ready = true;
                drop(ready);
                cv.notify_one();
            });
            let (m, cv) = &*pair;
            let mut ready = m.lock().expect("lock");
            while !*ready {
                ready = cv.wait(ready).expect("wait");
            }
            drop(ready);
            t.join().expect("child");
        });
    }

    /// Deadlocks are reported, not hung on.
    #[test]
    fn deadlock_is_detected() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let pair = Arc::new((Mutex::new(false), Condvar::new()));
                let (m, cv) = &*pair;
                let flag = m.lock().expect("lock");
                // Nobody will ever notify: this must be caught as deadlock.
                let _ = cv.wait(flag);
            });
        });
        let err = result.expect_err("deadlock must fail the model");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }
}
