//! Offline stand-in for `proptest`.
//!
//! Implements the property-testing surface this workspace uses: the
//! [`proptest!`] macro (with `ident in strategy` and `ident: Type`
//! parameters and an optional `#![proptest_config(..)]` header), range /
//! tuple / vec / option strategies, `any::<T>()`, `prop_map`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberate for an offline build: inputs are
//! drawn from a fixed-seed generator so every run tests the same cases
//! (no regression files needed — `proptest-regressions/` is ignored), and
//! failing cases are reported without shrinking.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::marker::PhantomData;

/// Per-block configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases, other settings default.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property assertion, carrying the rendered message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($T:ident $idx:tt),+))+) => {$(
        impl<$($T: Strategy),+> Strategy for ($($T,)+) {
            type Value = ($($T::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
);

/// String-pattern strategy: upstream proptest treats a `&str` as a regex
/// to generate matches of. The stand-in honors only the trailing `{m,n}`
/// repetition for length and fills with printable non-control characters
/// (the `\PC` class the workspace uses); any other class detail is
/// ignored, which is fine for "never panics on garbage" properties.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let (min_len, max_len) = match (self.rfind('{'), self.ends_with('}')) {
            (Some(open), true) => {
                let body = &self[open + 1..self.len() - 1];
                let mut parts = body.splitn(2, ',');
                let lo = parts.next().and_then(|p| p.parse::<usize>().ok());
                let hi = parts.next().and_then(|p| p.parse::<usize>().ok());
                match (lo, hi) {
                    (Some(lo), Some(hi)) if lo <= hi => (lo, hi),
                    (Some(lo), None) => (lo, lo),
                    _ => (0, 32),
                }
            }
            _ => (0, 32),
        };
        let len = rng.gen_range(min_len..=max_len);
        (0..len)
            .map(|_| {
                if rng.gen_bool(0.9) {
                    // Printable ASCII.
                    char::from(rng.gen_range(0x20u8..0x7f))
                } else {
                    // A scattering of non-ASCII, skipping the surrogate gap.
                    char::from_u32(rng.gen_range(0xa1u32..0xd7ff)).unwrap_or('¿')
                }
            })
            .collect()
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(u8, u16, u32, u64, usize, bool, f64, f32);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// `proptest::collection` — sized containers of strategy-driven elements.
pub mod collection {
    use super::{Rng, StdRng, Strategy};

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.len.start + 1 == self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `proptest::option` — optional values.
pub mod option {
    use super::{Rng, StdRng, Strategy};

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S>(S);

    /// `None` about a quarter of the time, `Some` otherwise (matching
    /// upstream's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_bool(0.75) {
                Some(self.0.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Macro-facing driver: run `cases` random inputs through the property.
pub fn run_cases<S: Strategy>(
    config: &ProptestConfig,
    strategy: S,
    mut property: impl FnMut(S::Value) -> Result<(), TestCaseError>,
) {
    // Fixed seed: every run replays the same cases, so failures reproduce
    // without regression files.
    let mut rng = StdRng::seed_from_u64(0x1993_0b07);
    for case in 0..config.cases {
        let input = strategy.sample(&mut rng);
        if let Err(e) = property(input) {
            panic!("property failed on case {case}/{}: {e}", config.cases);
        }
    }
}

/// The `proptest!` block: an optional config header plus test functions
/// whose parameters are either `name in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case! { ($cfg) ($body) () () $($params)* }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All parameters consumed: build the tuple strategy and run.
    (($cfg:expr) ($body:block) ($($n:ident)*) ($($s:expr;)*)) => {{
        let __config = $cfg;
        let __strategy = ($($s,)*);
        $crate::run_cases(&__config, __strategy, |($($n,)*)| {
            $body
            Ok(())
        });
    }};
    // Swallow a trailing comma.
    (($cfg:expr) ($body:block) ($($n:ident)*) ($($s:expr;)*) ,) => {
        $crate::__proptest_case! { ($cfg) ($body) ($($n)*) ($($s;)*) }
    };
    // `name in strategy, ...`
    (($cfg:expr) ($body:block) ($($n:ident)*) ($($s:expr;)*)
     $id:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_case! {
            ($cfg) ($body) ($($n)* $id) ($($s;)* $strat;) $($rest)*
        }
    };
    // `name in strategy` (final parameter)
    (($cfg:expr) ($body:block) ($($n:ident)*) ($($s:expr;)*)
     $id:ident in $strat:expr) => {
        $crate::__proptest_case! {
            ($cfg) ($body) ($($n)* $id) ($($s;)* $strat;)
        }
    };
    // `name: Type, ...` — sugar for `name in any::<Type>()`
    (($cfg:expr) ($body:block) ($($n:ident)*) ($($s:expr;)*)
     $id:ident : $t:ty, $($rest:tt)*) => {
        $crate::__proptest_case! {
            ($cfg) ($body) ($($n)* $id) ($($s;)* $crate::any::<$t>();) $($rest)*
        }
    };
    // `name: Type` (final parameter)
    (($cfg:expr) ($body:block) ($($n:ident)*) ($($s:expr;)*)
     $id:ident : $t:ty) => {
        $crate::__proptest_case! {
            ($cfg) ($body) ($($n)* $id) ($($s;)* $crate::any::<$t>();)
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{:?} == {:?}`", lhs, rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// The glob-import surface tests pull in.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_stay_in_bounds() {
        let cfg = ProptestConfig::with_cases(200);
        crate::run_cases(&cfg, (1u64..10, 0.0f64..1.0), |(a, b)| {
            prop_assert!((1..10).contains(&a));
            prop_assert!((0.0..1.0).contains(&b), "b = {b}");
            Ok(())
        });
    }

    #[test]
    fn vec_and_option_strategies_compose() {
        let strat = crate::collection::vec((crate::option::of(0u64..5), 0u8..3), 2..10)
            .prop_map(|xs| xs.len());
        let cfg = ProptestConfig::default();
        crate::run_cases(&cfg, (strat,), |(len,)| {
            prop_assert!((2..10).contains(&len));
            Ok(())
        });
    }

    #[test]
    fn fixed_seed_is_reproducible() {
        let draw = || {
            let mut out = Vec::new();
            crate::run_cases(&ProptestConfig::with_cases(16), (0u64..1000,), |(x,)| {
                out.push(x);
                Ok(())
            });
            out
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro grammar: doc comments, typed params, `in` params,
        /// trailing commas.
        #[test]
        fn macro_grammar_works(
            raw: u16,
            bytes4: [u8; 4],
            v in crate::collection::vec(any::<u8>(), 0..16),
        ) {
            prop_assert!(u32::from(raw) <= 0xffff);
            prop_assert_eq!(bytes4.len(), 4);
            prop_assert!(v.len() < 16, "len {}", v.len());
        }

        #[test]
        fn single_param_form(x in 0u64..7) {
            prop_assert!(x < 7);
        }
    }
}
