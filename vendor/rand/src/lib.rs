//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the exact subset of `rand` 0.8's API that the workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`]. The generator is xoshiro256** seeded through SplitMix64
//! (the same seeding scheme `rand` uses for `seed_from_u64`); streams differ
//! from upstream `StdRng` (ChaCha12) but have the same statistical
//! properties for simulation purposes, and identical seeds always produce
//! identical streams.

#![forbid(unsafe_code)]

/// A source of random 64-bit words. The base trait every generator
/// implements; object-safe so `&mut dyn RngCore` works.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator (the stand-in for
/// `rand`'s `Standard` distribution).
pub trait SampleUniformly: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniformly for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniformly for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleUniformly for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleUniformly for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleUniformly for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl SampleUniformly for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl SampleUniformly for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleUniformly for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a generator can sample from — `a..b` and `a..=b` for the integer
/// widths and floats the workspace uses.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the modulo unbiased.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "cannot sample from empty range");
        a + (b - a) * f64::sample(rng)
    }
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly (`Standard` distribution in real `rand`).
    fn gen<T: SampleUniformly>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Sample a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// A generator seeded from system entropy — here, from the current
    /// time, since the offline stand-in has no OS entropy dependency.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not the upstream `StdRng` algorithm (ChaCha12), but the contract the
    /// workspace relies on holds: identical seeds give identical streams,
    /// and different seeds give independent-looking streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for seed_from_u64.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            // A pathological all-zero state would be a fixed point.
            if s == [0, 0, 0, 0] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::thread_rng` stand-in: a fresh time-seeded generator per call.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..11);
            assert_eq!(v, 10);
        }
    }

    #[test]
    fn generic_rng_dyn_compatible() {
        fn takes_dyn(rng: &mut dyn super::RngCore) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = takes_dyn(&mut rng);
        fn takes_generic<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let _ = takes_generic(&mut rng);
    }
}
