//! # probenet
//!
//! Facade crate re-exporting the whole `probenet` workspace: a
//! production-quality reproduction of Jean-Chrysostome Bolot's SIGCOMM '93
//! paper *"End-to-End Packet Delay and Loss Behavior in the Internet"*.
//!
//! Sub-crates:
//!
//! * [`sim`] — deterministic discrete-event path simulator (the Internet
//!   substrate the probes traverse).
//! * [`traffic`] — cross-traffic models (the "Internet stream").
//! * [`wire`] — packet wire formats (NetDyn probe packets, IPv4/UDP/ICMP).
//! * [`stats`] — statistics substrate (histograms, ACF, FFT, fitting).
//! * [`queueing`] — queueing theory (Lindley recurrence, M/D/1, the paper's
//!   two-stream batch model).
//! * [`netdyn`] — the probe tool itself (simulation driver + real UDP echo).
//! * [`core`] — the analysis pipeline: phase plots, workload estimation,
//!   loss metrics, experiment orchestration.
//! * [`stream`] — streaming collector: bounded SPSC rings feeding
//!   constant-memory estimator banks.
//! * [`live`] — single-threaded epoll reactor driving thousands of
//!   concurrent live probe sessions per core.

pub use probenet_core as core;
pub use probenet_live as live;
pub use probenet_netdyn as netdyn;
pub use probenet_queueing as queueing;
pub use probenet_sim as sim;
pub use probenet_stats as stats;
pub use probenet_stream as stream;
pub use probenet_traffic as traffic;
pub use probenet_wire as wire;
