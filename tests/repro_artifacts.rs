//! Shape tests for every paper artifact: each table and figure of the
//! evaluation is regenerated (short spans) and its qualitative structure —
//! who wins, where the peaks sit, how the metrics trend — is asserted.
//!
//! These tests exercise the same functions the `repro` binary prints.

use probenet_bench::*;

#[test]
fn table1_shape() {
    let route = table1_route();
    assert_eq!(route.len(), 10, "Table 1 lists 10 hops");
    assert_eq!(route[0], "tom.inria.fr");
    assert_eq!(route[3], "icm-sophia.icp.net");
    assert_eq!(route[4], "Ithaca.NY.NSS.NSF.NET");
    assert_eq!(route[9], "avwhub-gw.umd.edu");
}

#[test]
fn table2_shape() {
    let route = table2_route();
    assert_eq!(route.len(), 13, "Table 2 lists 13 hops after the source");
    assert_eq!(route[0], "avw1hub-gw.umd.edu");
    assert!(route[4].contains("t3.ans.net"));
    assert_eq!(route[12], "hub-eh.gw.pitt.edu");
}

#[test]
fn figure1_shape() {
    // Paper: delta = 50 ms; large number of losses (9% in that run); RTTs
    // between ~140 ms and several hundred ms.
    let series = figure1_series(120, 1993);
    let ulp = series.loss_probability();
    assert!((0.04..0.25).contains(&ulp), "ulp {ulp}, paper saw 0.09");
    let rtts = series.delivered_rtts_ms();
    let min = rtts.iter().copied().fold(f64::INFINITY, f64::min);
    let max = rtts.iter().copied().fold(0.0f64, f64::max);
    assert!((135.0..150.0).contains(&min), "min {min}");
    assert!(max > 250.0, "max {max}: needs visible queueing excursions");
}

#[test]
fn figure2_shape() {
    // Paper: cluster near (140, 140); compression line with x-intercept
    // ~48 ms giving mu ~ 130 kb/s (configured truth here: 128 kb/s).
    let (plot, _) = figure2_phase(120, 1993);
    let min = plot.min_rtt_ms().expect("points");
    assert!((135.0..150.0).contains(&min), "D cluster at {min}");
    let est = plot.bottleneck_estimate(10).expect("compression line");
    assert!(
        (40.0..48.0).contains(&est.intercept_ms),
        "intercept {} (ideal value 45.5 ms)",
        est.intercept_ms
    );
    // The DECstation clock limits accuracy; the bounds must bracket truth.
    assert!(
        est.mu_lo_bps < 128_000.0 && 128_000.0 < est.mu_hi_bps,
        "bounds [{}, {}] must include 128 kb/s",
        est.mu_lo_bps,
        est.mu_hi_bps
    );
    assert!(est.compression_points > 50);
}

#[test]
fn figure4_shape() {
    // Paper: at delta = 500 ms only two points lie on the compression
    // line; everything scatters around the diagonal.
    let plot = figure4_phase(300, 1993);
    assert!(!plot.points.is_empty());
    let offset = -(500.0 - 4.5);
    assert!(
        plot.near_line(offset, 3.0) <= 3,
        "compression should be (almost) absent at delta = 500 ms"
    );
    assert!(plot.bottleneck_estimate(10).is_none());
    // Most mass in a (wide) diagonal band — independent draws from the
    // same delay distribution scatter around y = x with the queueing
    // spread on both sides.
    let near_diag = plot.near_diagonal(80.0);
    assert!(
        near_diag * 3 > plot.points.len(),
        "diagonal scatter expected: {near_diag} of {}",
        plot.points.len()
    );
}

#[test]
fn figure5_shape() {
    // Paper: delta = 8 ms on the T3 path; lines y = x and y = x − 8 both
    // visible; 3 ms clock bands the points.
    let plot = figure5_phase(60, 1993);
    let total = plot.points.len();
    assert!(total > 1000);
    let diag = plot.near_diagonal(1.5);
    let line = plot.near_line(-8.0, 1.5);
    assert!(diag > total / 10, "diagonal underpopulated: {diag}/{total}");
    assert!(line > 20, "y = x - 8 line underpopulated: {line}/{total}");
    // Clock banding: every RTT is a multiple of 3 ms.
    for p in plot.points.iter().take(100) {
        let r = (p.x * 1e6).round() as u64;
        assert_eq!(r % 3_000_000, 0, "rtt {} not on the 3 ms grid", p.x);
    }
}

#[test]
fn figure6_shape() {
    // Paper: delta = 50 ms on the T3 path scatters around the diagonal —
    // no compression.
    let plot = figure6_phase(120, 1993);
    let total = plot.points.len();
    let diag = plot.near_diagonal(6.0);
    assert!(
        diag * 10 > total * 8,
        "expected >=80% of points near the diagonal: {diag}/{total}"
    );
    assert!(plot.near_line(-50.0 + 0.06, 1.0) < total / 50);
}

#[test]
fn figure8_shape() {
    // Paper: peaks at P/mu, delta, and bulk positions; third peak implies
    // one FTP packet (~488 B with the paper's binning; 512 B configured).
    let analysis = figure8_workload(180, 1993);
    let c = analysis.compressed_peak().expect("P/mu peak");
    assert!(
        (c.position_ms - 4.5).abs() < 1.5,
        "compressed at {}",
        c.position_ms
    );
    let u = analysis.undisturbed_peak().expect("delta peak");
    assert!(
        (u.position_ms - 20.0).abs() < 1.5,
        "undisturbed at {}",
        u.position_ms
    );
    let bulk = analysis.inferred_bulk_bytes().expect("bulk peak");
    assert!(
        (420.0..620.0).contains(&bulk),
        "bulk {bulk} B (configured 512, paper reads 488)"
    );
}

#[test]
fn figure9_shape() {
    // Paper: same structure at delta = 100 ms but with the leftmost (P/mu)
    // peak much smaller relative to the others.
    let a8 = figure8_workload(180, 1993);
    let a9 = figure9_workload(300, 1993);
    let h8 = a8.compressed_peak().expect("peak at 20 ms run").height;
    let h9 = a9.compressed_peak().map(|p| p.height).unwrap_or(0.0);
    assert!(
        h9 < 0.5 * h8,
        "compressed peak must shrink markedly: {h9} vs {h8}"
    );
    let u9 = a9.undisturbed_peak().expect("delta peak at 100 ms");
    assert!((u9.position_ms - 100.0).abs() < 5.0);
}

#[test]
fn table3_shape() {
    // Paper's Table 3 trends: ulp decreasing in delta then flattening
    // near 10%; clp >= ulp with convergence at large delta; plg falling
    // from ~2.5 toward ~1.
    let rows = table3_rows(120, 1993);
    assert_eq!(rows.len(), 6);

    // ulp at 8 ms well above the plateau; plateau near the random floor.
    assert!(rows[0].ulp > 1.5 * rows[3].ulp, "ulp must fall with delta");
    for r in &rows[2..] {
        assert!(
            (0.05..0.18).contains(&r.ulp),
            "plateau ulp {} at delta {}",
            r.ulp,
            r.delta_ms
        );
    }
    // clp >= ulp at the small-delta end; gap shrinking.
    assert!(rows[0].clp > rows[0].ulp + 0.1);
    let small_excess = rows[0].clp - rows[0].ulp;
    let large_excess = (rows[5].clp - rows[5].ulp).abs();
    assert!(
        small_excess > large_excess,
        "clp-ulp gap must shrink: {small_excess} vs {large_excess}"
    );
    // plg: monotone-ish decline from ~2+ to ~1.
    assert!(rows[0].plg > 1.5, "plg at 8 ms {}", rows[0].plg);
    assert!(rows[5].plg < 1.4, "plg at 500 ms {}", rows[5].plg);
}
