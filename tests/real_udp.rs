//! The real-network driver feeding the same analysis pipeline: a loopback
//! echo server, actual UDP datagrams, and the full §4/§5 analysis on the
//! measured series.
//!
//! These scenarios run on the epoll reactor harness (`probenet-live`)
//! under the hood: [`run_probes`] paces sends off the reactor's timer
//! wheel and sweeps the socket once more before declaring losses, instead
//! of the legacy sleep-loop pacing whose scheduling jitter made loopback
//! delivery counts flake under load. `tests/live_soak.rs` pins the two
//! drivers to byte-equivalent loss reports.

use std::time::Duration;

use probenet::core::{analyze_losses, PhasePlot};
use probenet::netdyn::{run_probes, EchoServer, ExperimentConfig};
use probenet::sim::SimDuration;

#[test]
fn loopback_measurements_flow_through_the_pipeline() {
    let server = EchoServer::spawn("127.0.0.1:0").expect("bind echo server");
    let config = ExperimentConfig::quick(SimDuration::from_millis(2), 100);
    let (series, stats) =
        run_probes(server.local_addr(), &config, Duration::from_millis(300)).expect("probe run");

    assert_eq!(series.len(), 100);
    assert!(series.received() >= 95, "received {}", series.received());
    assert_eq!(stats.decode_errors, 0);

    let plot = PhasePlot::from_series(&series);
    assert!(plot.min_rtt_ms().expect("deliveries") < 100.0);

    let loss = analyze_losses(&series);
    assert!(loss.ulp < 0.05);
    server.shutdown();
}

#[test]
fn loopback_has_no_bottleneck_line_by_majority_vote() {
    // Loopback carries no real compression line, so the detector should
    // see nothing — but any *single* run can fool it: wall-clock RTTs
    // depend on host scheduling, and under a debug build the slower probe
    // loop jitters enough that a spurious line occasionally fits the
    // scatter. A one-shot `is_none()` assertion was therefore flaky and
    // had been dropped entirely. The robust form: repeat the experiment
    // five times and require a MAJORITY of runs to find no line.
    // Tolerance: a spurious fit shows up in well under half of debug-build
    // runs (empirically < 1 in 10), so 3-of-5 keeps the false-failure rate
    // below ~1 % while still failing loudly if the detector ever starts
    // hallucinating bottlenecks systematically.
    const RUNS: usize = 5;
    let server = EchoServer::spawn("127.0.0.1:0").expect("bind echo server");
    let config = ExperimentConfig::quick(SimDuration::from_millis(2), 100);
    let mut no_line = 0usize;
    for _ in 0..RUNS {
        let (series, _) = run_probes(server.local_addr(), &config, Duration::from_millis(300))
            .expect("probe run");
        let plot = PhasePlot::from_series(&series);
        if plot.bottleneck_estimate(10).is_none() {
            no_line += 1;
        }
    }
    server.shutdown();
    assert!(
        no_line * 2 > RUNS,
        "bottleneck detector fit a line on {} of {RUNS} loopback runs",
        RUNS - no_line
    );
}

#[test]
fn injected_loss_shows_up_as_random_loss() {
    let server = EchoServer::spawn_with_loss("127.0.0.1:0", 0.2, 5).expect("bind echo server");
    let config = ExperimentConfig::quick(SimDuration::from_millis(1), 400);
    let (series, _) =
        run_probes(server.local_addr(), &config, Duration::from_millis(400)).expect("probe run");

    let loss = analyze_losses(&series);
    assert!(
        (0.1..0.35).contains(&loss.ulp),
        "ulp {} with 20% injection",
        loss.ulp
    );
    // Bernoulli injection: the loss gap stays near 1/(1-p) ≈ 1.25 and the
    // lag-1 test does not find dependence.
    if let Some(gap) = loss.plg_measured {
        assert!(gap < 2.0, "gap {gap}");
    }
    assert!(loss.losses_look_random(0.001));
    server.shutdown();
}

#[test]
fn series_serializes_for_offline_analysis() {
    let server = EchoServer::spawn("127.0.0.1:0").expect("bind echo server");
    let config = ExperimentConfig::quick(SimDuration::from_millis(2), 20);
    let (series, _) =
        run_probes(server.local_addr(), &config, Duration::from_millis(200)).expect("probe run");
    let json = serde_json::to_string(&series).expect("serialize");
    let back: probenet::netdyn::RttSeries = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.records, series.records);
    server.shutdown();
}
