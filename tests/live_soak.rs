//! Live-reactor integration contracts: a 1,000-session loopback soak into
//! one streaming collector (the tentpole's sessions-per-core claim plus
//! exact drop accounting), and the reactor-vs-legacy differential that
//! pins the two probe drivers to equivalent reports.

#![cfg(target_os = "linux")]

use std::time::Duration;

use probenet::live::{run_sessions, LiveConfig, SessionSpec};
use probenet::netdyn::{
    run_probes_with_sink, run_probes_with_sink_legacy, EchoServer, ExperimentConfig,
};
use probenet::sim::SimDuration;
use probenet::stream::{BankConfig, Collector, CollectorConfig, SessionKey, SessionProducer};

#[test]
fn thousand_session_soak_balances_drop_accounting() {
    const SESSIONS: usize = 1_000;
    const COUNT: usize = 5;
    const DELTA_MS: u64 = 100;

    let server = EchoServer::spawn("127.0.0.1:0").expect("bind echo server");
    let delta = Duration::from_millis(DELTA_MS);
    let specs: Vec<SessionSpec> = (0..SESSIONS)
        .map(|i| SessionSpec {
            key: SessionKey::new("soak/live", DELTA_MS, i as u64),
            target: server.local_addr(),
            interval: delta,
            count: COUNT,
            // Stagger starts across one δ so the reactor paces a steady
            // aggregate stream instead of synchronized bursts.
            start_offset: Duration::from_nanos(
                delta.as_nanos() as u64 * i as u64 / SESSIONS as u64,
            ),
            clock_resolution_ns: 0,
        })
        .collect();

    let mut collector = Collector::new(CollectorConfig {
        channel_capacity: 256,
        snapshot_every: 0,
    });
    let mut producers: Vec<Option<SessionProducer>> = (0..SESSIONS as u64)
        .map(|s| {
            Some(collector.add_session(
                SessionKey::new("soak/live", DELTA_MS, s),
                BankConfig::bolot(DELTA_MS as f64, 72, 0),
            ))
        })
        .collect();
    let running = collector.start();

    let mut produced = 0u64;
    let mut delivered_per_session = vec![0u64; SESSIONS];
    let report = run_sessions(specs, &LiveConfig::default(), |outcome| {
        let idx = usize::try_from(outcome.key.seed).expect("seed is a session index");
        delivered_per_session[idx] = outcome
            .records
            .iter()
            .filter(|r| r.rtt_ns.is_some())
            .count() as u64;
        let producer = producers[idx].take().expect("one outcome per session");
        for record in outcome.records {
            produced += 1;
            // Non-blocking offer into the bounded ring: rejections land in
            // the session's drop counter, keeping the identity exact.
            producer.offer(record);
        }
    })
    .expect("loopback soak run");
    drop(producers);
    let collected = running.join();

    assert_eq!(report.sessions, SESSIONS, "all sessions on one reactor");
    assert_eq!(produced, (SESSIONS * COUNT) as u64, "one record per probe");

    // The drop-accounting identity: every produced record is either folded
    // by the collector or counted in a session's drop counter.
    assert_eq!(
        produced,
        collected.total_records() + collected.total_dropped(),
        "records + dropped must equal produced"
    );
    assert_eq!(collected.sessions.len(), SESSIONS);

    // Per-session delivery matches the echo server's receive counters:
    // loopback loses nothing, so every session's delivered count is its
    // probe count and the totals line up with the echo side.
    for (i, &delivered) in delivered_per_session.iter().enumerate() {
        assert_eq!(
            delivered, COUNT as u64,
            "session {i} lost probes on loopback"
        );
    }
    let delivered: u64 = delivered_per_session.iter().sum();
    assert_eq!(delivered, report.stats.replies_received);
    let echo = server.stats();
    assert_eq!(
        echo.echoed, report.stats.probes_sent,
        "echo server saw every probe"
    );
    assert_eq!(echo.decode_errors, 0);
    server.shutdown();
}

/// The reactor-backed and the legacy thread-per-session drivers are two
/// implementations of the same measurement. Against echo servers that drop
/// probes with the same seeded Bernoulli stream, arrival order on loopback
/// is send order, so both drivers must report the *same* per-sequence loss
/// pattern — not merely similar rates.
#[test]
fn reactor_and_legacy_drivers_report_equivalent_loss() {
    const PROBES: usize = 200;
    let config = ExperimentConfig::quick(SimDuration::from_millis(2), PROBES);
    let drain = Duration::from_millis(400);

    // Two servers with identical loss streams: each driver consumes its
    // own RNG sequence from the same seed.
    let server_a = EchoServer::spawn_with_loss("127.0.0.1:0", 0.25, 42).expect("bind echo server");
    let server_b = EchoServer::spawn_with_loss("127.0.0.1:0", 0.25, 42).expect("bind echo server");

    let mut reactor_sink = Vec::new();
    let (reactor_series, reactor_stats) =
        run_probes_with_sink(server_a.local_addr(), &config, drain, |r| {
            reactor_sink.push(r)
        })
        .expect("reactor run");
    let mut legacy_sink = Vec::new();
    let (legacy_series, legacy_stats) =
        run_probes_with_sink_legacy(server_b.local_addr(), &config, drain, |r| {
            legacy_sink.push(r)
        })
        .expect("legacy run");
    server_a.shutdown();
    server_b.shutdown();

    assert_eq!(reactor_series.len(), PROBES);
    assert_eq!(legacy_series.len(), PROBES);

    // Identical loss pattern, sequence by sequence.
    let reactor_lost: Vec<u64> = reactor_series
        .records
        .iter()
        .filter(|r| r.rtt.is_none())
        .map(|r| r.seq)
        .collect();
    let legacy_lost: Vec<u64> = legacy_series
        .records
        .iter()
        .filter(|r| r.rtt.is_none())
        .map(|r| r.seq)
        .collect();
    assert_eq!(
        reactor_lost, legacy_lost,
        "drivers disagree on which probes the seeded echo dropped"
    );
    // The seeded Bernoulli(0.25) stream over 200 probes loses some but
    // not all — the comparison above is only meaningful if it did.
    assert!(
        !reactor_lost.is_empty() && reactor_lost.len() < PROBES,
        "loss injection produced a degenerate pattern: {} lost",
        reactor_lost.len()
    );

    assert_eq!(reactor_stats.duplicates, legacy_stats.duplicates);
    assert_eq!(reactor_stats.decode_errors, legacy_stats.decode_errors);

    // Both sinks carry the full record stream in sequence order.
    assert_eq!(reactor_sink.len(), PROBES);
    assert_eq!(legacy_sink.len(), PROBES);
    for (a, b) in reactor_sink.iter().zip(&legacy_sink) {
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.rtt_ns.is_some(), b.rtt_ns.is_some());
    }
}
