//! Differential mesh suite: the degenerate mesh campaign **is** the
//! single-path pipeline. Its report must be byte-identical to the
//! checked-in `--stream` golden at every worker-pool width (the
//! in-process equivalent of the CI matrix `PROBENET_THREADS ∈
//! {1,4,8}`), survive the round trip through the merge daemon's
//! incremental reader unchanged, and keep the reader's staging buffer
//! bounded by the largest single frame.

use probenet_bench::{
    stream_golden_path, stream_session_tasks, GOLDEN_FRAME_SHARDS, GOLDEN_SCENARIO,
};
use probenet_merged::MergeService;
use probenet_mesh::{
    campaign::run_campaign, degenerate_report, fold_through_daemon, DegenerateSpec, MeshSpec,
};
use probenet_wire::snapshot::SessionFrame;

fn golden_spec() -> DegenerateSpec {
    DegenerateSpec {
        scenario: GOLDEN_SCENARIO.to_string(),
        tasks: stream_session_tasks(),
    }
}

/// The in-process thread-count matrix mirroring CI's
/// `PROBENET_THREADS ∈ {1,4,8}` streaming loop.
const THREADS: [usize; 3] = [1, 4, 8];

#[test]
fn degenerate_mesh_matches_the_stream_golden_at_every_width() {
    let golden =
        std::fs::read_to_string(stream_golden_path()).expect("checked-in stream golden readable");
    for threads in THREADS {
        let mut rendered = degenerate_report(&golden_spec(), threads).to_json();
        rendered.push('\n');
        assert_eq!(
            rendered, golden,
            "degenerate mesh report at {threads} workers differs from the stream golden"
        );
    }
}

#[test]
fn degenerate_mesh_survives_the_daemon_fold_with_bounded_buffer() {
    let report = degenerate_report(&golden_spec(), 4);
    let max_frame = report
        .sessions
        .iter()
        .map(|s| SessionFrame::from_report(s).encode().len())
        .max()
        .expect("golden campaign has sessions");
    for shards in [1, GOLDEN_FRAME_SHARDS, report.sessions.len()] {
        let (folded, peak) = fold_through_daemon(&report, shards).expect("fold succeeds");
        assert_eq!(
            folded.to_json(),
            report.to_json(),
            "daemon fold over {shards} shards differs from its input"
        );
        // The bugfix contract: incremental ingest stages at most one
        // frame plus one read chunk, never the whole stream.
        assert!(
            peak <= max_frame + probenet_merged::INGEST_CHUNK,
            "peak buffer {peak} exceeds largest frame {max_frame} + chunk \
             over {shards} shards"
        );
    }
}

/// Mesh-scale fold-throughput probe behind the EXPERIMENTS.md "fleet
/// merge at mesh scale" entry — run explicitly with `cargo test
/// --release --test mesh_differential -- --ignored --nocapture`
/// (wall-clock numbers are meaningless in debug builds).
#[test]
#[ignore = "throughput measurement, run by hand in release mode"]
fn mesh_fold_throughput_probe() {
    let run = run_campaign(&MeshSpec::golden(), 4).expect("golden campaign");
    let bytes_per_fold: usize = run.host_streams.iter().map(Vec::len).sum();
    let mut sessions = 0usize;
    const FOLDS: u32 = 200;
    let started = std::time::Instant::now();
    for _ in 0..FOLDS {
        let mut service = MergeService::new();
        for stream in &run.host_streams {
            service
                .ingest_reader(&mut std::io::Cursor::new(stream))
                .expect("own streams decode");
        }
        sessions += service.into_report().expect("fold succeeds").sessions.len();
    }
    let secs = started.elapsed().as_secs_f64();
    println!(
        "mesh fold: {FOLDS} folds of {} vantage streams ({bytes_per_fold} bytes) in {secs:.3} s — \
         {:.1} MB/s incremental decode+fold, {:.0} sessions/s",
        run.host_streams.len(),
        bytes_per_fold as f64 * f64::from(FOLDS) / secs / 1e6,
        sessions as f64 / secs,
    );
}
