//! Partitioned-parallel equivalence matrix: the conservative-lookahead
//! engine must be **byte-identical** to the serial engine at every
//! partition width, through every consumer layer — raw series records,
//! streaming sink taps, and port statistics. The widths mirror the CI
//! determinism matrix (`PROBENET_THREADS` ∈ {1, 4, 8}); these tests pin the
//! width in-process so they are independent of the environment.

use probenet::netdyn::{ExperimentConfig, RttRecord, SimExperiment};
use probenet::sim::{Direction, Path, SimDuration};
use probenet::traffic::InternetMix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's transatlantic path, loaded in both directions.
fn experiment(width: usize) -> SimExperiment {
    let cfg = ExperimentConfig::paper(SimDuration::from_millis(20)).with_count(1500);
    let mix = InternetMix::calibrated(128_000, 0.62, 0.10, 3.0);
    let horizon = SimDuration::from_secs(35);
    let out = mix.generate(&mut StdRng::seed_from_u64(21), horizon);
    let back = mix.generate(&mut StdRng::seed_from_u64(22), horizon);
    SimExperiment::new(cfg, Path::inria_umd_1992(), 1993)
        .with_cross_traffic(5, Direction::Outbound, out)
        .with_cross_traffic(5, Direction::Inbound, back)
        .with_partitions(width)
}

#[test]
fn series_and_port_stats_identical_at_all_widths() {
    let (serial_series, serial_run) = experiment(1).run();
    assert_eq!(serial_run.partitions, 1);
    let serial_json = serde_json::to_string(&serial_series.records).expect("serialize");
    let serial_ports: Vec<String> = serial_run
        .port_stats
        .iter()
        .map(|s| format!("{s:?}"))
        .collect();
    for width in [4usize, 8] {
        let (series, run) = experiment(width).run();
        assert!(run.partitions > 1, "width {width} did not partition");
        assert_eq!(
            serde_json::to_string(&series.records).expect("serialize"),
            serial_json,
            "records diverged at width {width}"
        );
        let ports: Vec<String> = run.port_stats.iter().map(|s| format!("{s:?}")).collect();
        assert_eq!(ports, serial_ports, "port stats diverged at width {width}");
        assert_eq!(
            run.now, serial_run.now,
            "final clock diverged at width {width}"
        );
    }
}

#[test]
fn streaming_sink_sees_identical_records_at_all_widths() {
    let tap = |width: usize| {
        let mut seen: Vec<RttRecord> = Vec::new();
        let (series, _) = experiment(width).run_with_sink(|r| seen.push(*r));
        (seen, series)
    };
    let (serial_tap, serial_series) = tap(1);
    // The sink must see exactly the series' records, in sequence order.
    assert_eq!(serial_tap, serial_series.records);
    for width in [4usize, 8] {
        let (stream, series) = tap(width);
        assert_eq!(stream, serial_tap, "sink stream diverged at width {width}");
        assert_eq!(series.records, serial_series.records);
    }
}

#[test]
fn impaired_path_identical_at_all_widths() {
    // umd_pitt_1993 carries per-link random loss, exercising the per-port
    // RNG streams across partition boundaries.
    let run_at = |width: usize| {
        let cfg = ExperimentConfig::paper(SimDuration::from_millis(10)).with_count(2000);
        let (series, run) = SimExperiment::new(cfg, Path::umd_pitt_1993(), 4021)
            .with_partitions(width)
            .run();
        let mut drops: Vec<(u64, u64, u8, u64)> = run
            .drops
            .iter()
            .map(|d| (d.id.0, d.seq, d.reason as u8, d.at.as_nanos()))
            .collect();
        drops.sort_unstable();
        (
            serde_json::to_string(&series.records).expect("serialize"),
            drops,
        )
    };
    let serial = run_at(1);
    for width in [4usize, 8] {
        assert_eq!(
            run_at(width),
            serial,
            "impaired run diverged at width {width}"
        );
    }
}
