//! Scenario-level validation of the impairment subsystem: the calibrated
//! `bursty-transatlantic` scenario must reproduce the paper's §4 loss
//! findings end to end, and the other named scenarios must show their
//! advertised signatures (baseline shifts, duplicates, reordering,
//! checksum drops).

use probenet::core::{
    analyze_losses, impaired_campaign, impairment_scenario, impairment_scenarios,
};
use probenet::sim::SimDuration;

#[test]
fn bursty_scenario_reproduces_paper_loss_findings() {
    let sc = impairment_scenario("bursty-transatlantic").expect("named scenario");

    // δ = 8 ms: probes land inside Bad periods, so losses cluster and the
    // conditional loss probability dwarfs the unconditional one (§4).
    let fast = sc.run(
        1993,
        SimDuration::from_millis(8),
        SimDuration::from_secs(60),
    );
    let fast_loss = analyze_losses(&fast.series);
    let clp = fast_loss.clp.expect("losses at 8 ms");
    assert!(
        clp > 2.0 * fast_loss.ulp,
        "δ=8ms: clp {clp} not ≫ ulp {}",
        fast_loss.ulp
    );
    // The burst channel contributes multi-packet loss runs: the gap
    // distribution must have mass beyond run length 1.
    assert!(
        fast_loss.run_lengths.len() > 1,
        "δ=8ms: no multi-packet loss runs: {:?}",
        fast_loss.run_lengths
    );

    // δ = 500 ms: successive probes almost never share a Bad period, so
    // losses pass the lag-1 independence test. 10 minutes of probing keeps
    // the conditional-probability estimate out of small-sample noise.
    let slow = sc.run(
        1993,
        SimDuration::from_millis(500),
        SimDuration::from_secs(600),
    );
    let slow_loss = analyze_losses(&slow.series);
    assert!(slow_loss.lost > 0, "δ=500ms: expected some losses");
    assert!(
        slow_loss.losses_look_random(0.05),
        "δ=500ms: losses should look random: clp {:?} ulp {}",
        slow_loss.clp,
        slow_loss.ulp
    );
}

#[test]
fn dirty_fiber_shows_reordering_and_checksum_drops() {
    let sc = impairment_scenario("dirty-fiber").expect("named scenario");
    let out = sc.run(7, SimDuration::from_millis(20), SimDuration::from_secs(60));
    assert!(
        out.series.reordering_count() > 0,
        "reordering impairment produced no inversions"
    );
    assert!(
        out.probe_impair_drops > 0,
        "corruption produced no endpoint checksum drops"
    );
}

#[test]
fn impaired_campaign_threads_the_scenario_through() {
    let sc = impairment_scenario("bursty-transatlantic").expect("named scenario");
    let r = impaired_campaign(
        &sc,
        SimDuration::from_millis(50),
        SimDuration::from_secs(20),
        &[1, 2, 3],
    );
    assert_eq!(r.ulp.n, 3);
    assert!(r.ulp.mean > 0.0, "burst channel added no loss");
}

#[test]
fn every_named_scenario_runs_and_delivers() {
    for sc in impairment_scenarios() {
        let out = sc.run(
            42,
            SimDuration::from_millis(100),
            SimDuration::from_secs(20),
        );
        let delivered = out.series.received();
        assert!(
            delivered > 150,
            "{}: only {delivered}/200 probes delivered",
            sc.name
        );
    }
}
