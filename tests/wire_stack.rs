//! Wire-format integration: the full framing stack a real NetDyn datagram
//! traverses — probe payload inside UDP inside IPv4 — plus the ICMP
//! time-exceeded message a router would send back during route discovery.

use probenet::wire::{
    internet_checksum, IcmpMessage, Ipv4Header, ProbePacket, Timestamp48, UdpHeader,
    IPV4_HEADER_BYTES, PROBE_PAYLOAD_BYTES, UDP_HEADER_BYTES,
};

const SRC: [u8; 4] = [138, 96, 24, 84]; // INRIA address space, fittingly
const DST: [u8; 4] = [128, 8, 128, 44]; // UMd

fn frame_probe(probe: &ProbePacket, ttl: u8) -> Vec<u8> {
    let payload = probe.to_bytes();
    let mut udp = Vec::new();
    UdpHeader::new(5000, 7001, payload.len()).encode(SRC, DST, &payload, &mut udp);
    let mut datagram = Vec::new();
    Ipv4Header::new(
        probenet::wire::ipv4::protocol::UDP,
        SRC,
        DST,
        ttl,
        udp.len(),
    )
    .encode(&mut datagram);
    datagram.extend_from_slice(&udp);
    datagram
}

#[test]
fn probe_round_trips_through_the_full_stack() {
    let probe = ProbePacket {
        seq: 1234,
        flags: 0,
        source_ts: Timestamp48::from_micros(1_000_000),
        echo_ts: Timestamp48::from_micros(1_070_500),
        dest_ts: Timestamp48::from_micros(1_142_400),
    };
    let datagram = frame_probe(&probe, 64);
    assert_eq!(
        datagram.len(),
        IPV4_HEADER_BYTES + UDP_HEADER_BYTES + PROBE_PAYLOAD_BYTES
    );

    // Receiver side: peel IPv4, then UDP, then the probe.
    let (ip, ip_payload) = Ipv4Header::decode(&datagram).expect("valid IPv4");
    assert_eq!(ip.protocol, probenet::wire::ipv4::protocol::UDP);
    assert_eq!(ip.source, SRC);
    let (udp, udp_payload) = UdpHeader::decode(SRC, DST, ip_payload).expect("valid UDP");
    assert_eq!(udp.destination_port, 7001);
    let decoded = ProbePacket::decode(udp_payload).expect("valid probe");
    assert_eq!(decoded, probe);
    // The RTT arithmetic survives framing.
    assert_eq!(decoded.rtt_micros(), 142_400);
}

#[test]
fn any_single_bit_flip_is_caught_by_some_checksum() {
    let probe = ProbePacket::outgoing(7, Timestamp48::from_micros(5));
    let clean = frame_probe(&probe, 64);
    let mut caught = 0;
    let mut total = 0;
    for byte in 0..clean.len() {
        for bit in 0..8 {
            let mut corrupted = clean.clone();
            corrupted[byte] ^= 1 << bit;
            total += 1;
            let survives = match Ipv4Header::decode(&corrupted) {
                Ok((_, ip_payload)) => match UdpHeader::decode(SRC, DST, ip_payload) {
                    Ok((_, udp_payload)) => ProbePacket::decode(udp_payload).is_ok(),
                    Err(_) => false,
                },
                Err(_) => false,
            };
            if !survives {
                caught += 1;
            }
        }
    }
    // One's-complement checksums catch all single-bit errors; the probe
    // magic/version guards the payload header bytes.
    assert_eq!(
        caught,
        total,
        "{} corruptions slipped through",
        total - caught
    );
}

#[test]
fn router_builds_a_valid_time_exceeded_reply() {
    // A router that expires a probe quotes the IP header + first 8 payload
    // bytes back to the source (traceroute's mechanism).
    let probe = ProbePacket::outgoing(3, Timestamp48::from_micros(9));
    let datagram = frame_probe(&probe, 1);
    let quote_len = IPV4_HEADER_BYTES + 8;
    let reply = IcmpMessage::TimeExceeded {
        original: datagram[..quote_len].to_vec(),
    };
    let bytes = reply.to_bytes();
    // The source parses the reply and recognizes its own datagram.
    match IcmpMessage::decode(&bytes).expect("valid ICMP") {
        IcmpMessage::TimeExceeded { original } => {
            let (ip, _) = Ipv4Header::decode_header_only(&original).expect("quoted header parses");
            assert_eq!(ip.source, SRC);
            assert_eq!(ip.destination, DST);
            // The quoted 8 bytes cover the UDP ports: enough to match the
            // probing socket.
            let ports = &original[IPV4_HEADER_BYTES..IPV4_HEADER_BYTES + 4];
            assert_eq!(ports, &[0x13, 0x88, 0x1b, 0x59]); // 5000, 7001
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn checksum_is_ones_complement_invariant() {
    // Folding a correct checksum into any buffer makes the total zero —
    // the RFC 1071 self-check routers use.
    let probe = ProbePacket::outgoing(11, Timestamp48::from_micros(1));
    let datagram = frame_probe(&probe, 32);
    assert_eq!(internet_checksum(&datagram[..IPV4_HEADER_BYTES]), 0);
}
