//! Differential suite for the streaming analysis engine (`probenet-stream`):
//! every collector snapshot must reproduce the batch pipeline — byte-exactly
//! for counts and loss metrics, within the documented ε for quantiles and
//! merged float accumulators — and be bit-identical whatever the thread
//! count or channel capacity (see DESIGN.md §11 for the exactness policy).

use probenet_bench::{stream_golden_path, stream_report, stream_report_threads};
use probenet_core::{
    analyze_losses, analyze_workload, impairment_scenario, loss_analysis_from_stream, PhasePlot,
};
use probenet_netdyn::{ExperimentConfig, RttSeries, SimExperiment};
use probenet_sim::{Path, SimDuration};
use probenet_stats::{autocorrelation, Ecdf, Moments};
use probenet_stream::{
    BankConfig, Collector, CollectorConfig, EstimatorBank, LogQuantileSketch, SessionKey,
};

/// Scenarios the differential comparison sweeps: healthy plus the main
/// impairment families (burst loss, reordering, route flap).
const SCENARIOS: &[&str] = &[
    "bursty-transatlantic",
    "route-flap",
    "noisy-clock",
    "dirty-fiber",
];

fn scenario_series(name: &str) -> Option<RttSeries> {
    let sc = impairment_scenario(name)?;
    Some(
        sc.run(
            1993,
            SimDuration::from_millis(50),
            SimDuration::from_secs(30),
        )
        .series,
    )
}

fn bank_for(series: &RttSeries) -> EstimatorBank {
    let delta_ms = series.interval_ns as f64 / 1e6;
    EstimatorBank::new(BankConfig::bolot(
        delta_ms,
        series.wire_bytes,
        series.clock_resolution_ns,
    ))
}

fn fold_series(series: &RttSeries) -> EstimatorBank {
    let mut bank = bank_for(series);
    for r in &series.records {
        bank.push(&r.to_stream());
    }
    bank
}

fn delivered_ms(series: &RttSeries) -> Vec<f64> {
    series
        .records
        .iter()
        .filter_map(|r| r.rtt.map(|ns| ns as f64 / 1e6))
        .collect()
}

#[test]
fn streaming_loss_metrics_are_byte_exact_against_batch() {
    let mut covered = 0;
    for name in SCENARIOS {
        let Some(series) = scenario_series(name) else {
            continue;
        };
        covered += 1;
        let snap = fold_series(&series).snapshot();
        let from_stream = loss_analysis_from_stream(&snap.loss);
        let batch = analyze_losses(&series);
        assert_eq!(
            serde_json::to_string(&from_stream).unwrap(),
            serde_json::to_string(&batch).unwrap(),
            "loss metrics drifted for scenario {name}"
        );
        assert_eq!(snap.sent as usize, series.len(), "{name}");
        assert_eq!(snap.received as usize, series.received(), "{name}");
    }
    assert!(covered >= 2, "too few scenarios resolved by name");
}

#[test]
fn streaming_moments_histogram_and_acf_match_batch_bitwise() {
    for name in SCENARIOS {
        let Some(series) = scenario_series(name) else {
            continue;
        };
        let bank = fold_series(&series);
        let snap = bank.snapshot();
        let rtts = delivered_ms(&series);

        // Welford moments fold in the same order as the batch slice.
        let batch = Moments::from_slice(&rtts);
        assert_eq!(bank.moments().count(), batch.count(), "{name}");
        if batch.count() > 0 {
            assert_eq!(bank.moments().mean(), batch.mean(), "{name}");
            assert_eq!(bank.moments().std_dev(), batch.std_dev(), "{name}");
        }

        // The session is shorter than the ACF ring, so nothing was evicted
        // and the windowed ACF is exactly the batch ACF.
        assert_eq!(snap.acf_evicted, 0, "{name}");
        let max_lag = 20.min(rtts.len().saturating_sub(1));
        assert_eq!(snap.acf, autocorrelation(&rtts, max_lag), "{name}");
    }
}

#[test]
fn sketch_quantiles_are_within_documented_relative_error() {
    for name in SCENARIOS {
        let Some(series) = scenario_series(name) else {
            continue;
        };
        let bank = fold_series(&series);
        let ns: Vec<f64> = series
            .records
            .iter()
            .filter_map(|r| r.rtt.map(|v| v as f64))
            .collect();
        if ns.is_empty() {
            continue;
        }
        let exact = Ecdf::new(&ns);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let approx = bank.sketch().quantile(q).expect("delivered probes") as f64;
            let truth = exact.quantile(q);
            // The sketch reports a bucket lower bound: never above the exact
            // order statistic, and within 2⁻⁷ relative below it.
            assert!(
                approx <= truth,
                "{name}: q{q} sketch {approx} above exact {truth}"
            );
            assert!(
                truth - approx <= truth * LogQuantileSketch::RELATIVE_ERROR + 1e-9,
                "{name}: q{q} sketch {approx} vs exact {truth}"
            );
        }
    }
}

#[test]
fn streaming_workload_matches_batch_binning_and_mean() {
    for name in SCENARIOS {
        let Some(series) = scenario_series(name) else {
            continue;
        };
        let bank = fold_series(&series);
        let delta_ms = series.interval_ns as f64 / 1e6;
        let max_ms = (4.0 * delta_ms).max(100.0);
        let batch = analyze_workload(&series, 128_000.0, 4096.0, max_ms);
        assert_eq!(
            bank.workload().histogram().counts(),
            batch.histogram.counts(),
            "{name}: interarrival histogram counts drifted"
        );
        assert_eq!(
            bank.workload().pairs() as usize,
            batch.workload_bytes.len(),
            "{name}"
        );
        if !batch.workload_bytes.is_empty() {
            let batch_mean: f64 =
                batch.workload_bytes.iter().sum::<f64>() / batch.workload_bytes.len() as f64;
            // A serial push fold performs the same additions in the same
            // order as the batch sum, so the means are bit-identical.
            assert_eq!(bank.workload().mean_workload_bytes(), batch_mean, "{name}");
        }
    }
}

#[test]
fn streaming_phase_density_rebins_the_batch_phase_plot_exactly() {
    for name in SCENARIOS {
        let Some(series) = scenario_series(name) else {
            continue;
        };
        let bank = fold_series(&series);
        let plot = PhasePlot::from_series(&series);
        assert_eq!(bank.phase().pairs() as usize, plot.points.len(), "{name}");
        let mut expected = vec![0u64; bank.phase().bins() * bank.phase().bins()];
        let mut out_of_range = 0u64;
        for p in &plot.points {
            match bank.phase().cell_of(p.x, p.y) {
                Some((ix, iy)) => expected[ix * bank.phase().bins() + iy] += 1,
                None => out_of_range += 1,
            }
        }
        assert_eq!(bank.phase().counts(), &expected[..], "{name}");
        assert_eq!(bank.phase().snapshot().out_of_range, out_of_range, "{name}");
    }
}

#[test]
fn driver_sink_feeds_collector_to_the_same_snapshot_as_batch() {
    // The simulator-side tap: records stream out of `run_with_sink` into a
    // live collector; the resulting snapshot must equal a direct fold of
    // the returned series (and hence, per the tests above, the batch
    // pipeline).
    let config = ExperimentConfig::paper(SimDuration::from_millis(50)).with_count(600);
    let mut collector = Collector::new(CollectorConfig::default());
    let key = SessionKey::new("inria-umd", 50, 42);
    let producer = collector.add_session(key.clone(), BankConfig::bolot(50.0, 72, 3_906_000));
    let experiment = SimExperiment::new(config, Path::inria_umd_1992(), 42);
    let running = collector.start();
    let (series, _) = experiment.run_with_sink(|r| {
        assert!(producer.push(r.to_stream()), "collector exited early");
    });
    drop(producer);
    let report = running.join();
    assert_eq!(report.total_dropped(), 0);

    let mut direct = EstimatorBank::new(BankConfig::bolot(50.0, 72, 3_906_000));
    for r in &series.records {
        direct.push(&r.to_stream());
    }
    let session = &report.sessions[0];
    assert_eq!(session.key, key);
    assert_eq!(session.records as usize, series.len());
    assert_eq!(
        serde_json::to_string(&session.snapshot).unwrap(),
        serde_json::to_string(&direct.snapshot()).unwrap()
    );
}

#[test]
fn collector_snapshots_are_invariant_to_channel_capacity() {
    let series = scenario_series("bursty-transatlantic").expect("pinned scenario");
    let reference = serde_json::to_string(&fold_series(&series).snapshot()).unwrap();
    for capacity in [1usize, 64, 4096] {
        let mut collector = Collector::new(CollectorConfig {
            channel_capacity: capacity,
            snapshot_every: 0,
        });
        let producer = collector.add_session(
            SessionKey::new("capacity-sweep", 50, 1993),
            BankConfig::bolot(
                series.interval_ns as f64 / 1e6,
                series.wire_bytes,
                series.clock_resolution_ns,
            ),
        );
        let running = collector.start();
        let records = series.records.clone();
        let handle = std::thread::spawn(move || {
            for r in &records {
                assert!(producer.push(r.to_stream()), "collector exited early");
            }
        });
        handle.join().expect("producer thread");
        let report = running.join();
        assert_eq!(report.total_dropped(), 0, "capacity {capacity}");
        assert_eq!(
            serde_json::to_string(&report.sessions[0].snapshot).unwrap(),
            reference,
            "capacity {capacity}"
        );
    }
}

#[test]
fn stream_report_is_bit_identical_across_thread_counts() {
    let one = stream_report_threads(1);
    for threads in [4usize, 8] {
        assert_eq!(
            one,
            stream_report_threads(threads),
            "stream report differs at {threads} threads"
        );
    }
}

#[test]
fn stream_report_matches_checked_in_golden() {
    let golden = std::fs::read_to_string(stream_golden_path()).expect("checked-in stream golden");
    assert_eq!(
        stream_report(),
        golden,
        "streaming snapshots drifted from tests/golden/stream-snapshots.json; \
         rerun `repro --stream --bless` if the change is intended"
    );
}

/// The acceptance bar: ≥ 1M records/sec aggregate across ≥ 8 concurrent
/// sessions with zero silent drops. Only meaningful with optimizations on —
/// debug builds are an order of magnitude slower and would make the bound
/// flaky.
#[cfg(not(debug_assertions))]
#[test]
fn collector_sustains_one_million_records_per_second() {
    let ingest = probenet_bench::stream_ingest_throughput(8, 150_000);
    assert_eq!(ingest.dropped, 0, "blocking push must never drop");
    assert_eq!(ingest.total_records, 8 * 150_000);
    assert!(
        ingest.aggregate_records_per_sec >= 1_000_000.0,
        "aggregate ingest {:.0} records/s below the 1M bar",
        ingest.aggregate_records_per_sec
    );
}
