//! End-to-end pipeline tests: calibrated scenario → measurement → every
//! analysis stage, asserting the paper's qualitative findings hold.

use probenet::core::{
    analyze_losses, analyze_workload, interarrival_series, PaperScenario, PeakLabel, PhasePlot,
};
use probenet::netdyn::ExperimentConfig;
use probenet::sim::SimDuration;
use probenet::stats::{autocorrelation, ArModel, Moments};

fn run(delta_ms: u64, seconds: u64, seed: u64) -> probenet::core::ExperimentOutput {
    let scenario = PaperScenario::inria_umd(seed);
    let delta = SimDuration::from_millis(delta_ms);
    let config = ExperimentConfig::paper(delta)
        .with_count((seconds * 1000 / delta_ms) as usize)
        .with_clock(SimDuration::ZERO);
    scenario.run(&config)
}

#[test]
fn full_pipeline_delta_20ms() {
    let out = run(20, 120, 1);
    let series = &out.series;

    // Measurement sanity.
    assert!(series.received() > series.len() / 2);
    let min = series.min_rtt_ms().expect("deliveries");
    assert!((138.0..148.0).contains(&min), "min rtt {min}");

    // Phase analysis: compression exists at delta = 20 ms and inverts to
    // the configured 128 kb/s within a reasonable band (ideal clock).
    let plot = PhasePlot::from_series(series);
    let est = plot
        .bottleneck_estimate(10)
        .expect("compression line at delta = 20 ms");
    let rel = (est.mu_bps - 128_000.0).abs() / 128_000.0;
    assert!(rel < 0.10, "mu estimate {} off by {rel:.3}", est.mu_bps);

    // Workload analysis: the three peak families of Figure 8.
    let analysis = analyze_workload(series, 128_000.0, 4096.0, 100.0);
    assert!(analysis.compressed_peak().is_some(), "no compressed peak");
    assert!(analysis.undisturbed_peak().is_some(), "no undisturbed peak");
    let bulk = analysis
        .inferred_bulk_bytes()
        .expect("no single-FTP-packet peak");
    assert!(
        (420.0..620.0).contains(&bulk),
        "inferred bulk size {bulk} B, configured 512 B (paper reads 488 B)"
    );

    // Loss analysis: clp >= ulp at this probe rate.
    let loss = analyze_losses(series);
    assert!(loss.ulp > 0.02, "ulp {}", loss.ulp);
    let clp = loss.clp.expect("losses occurred");
    assert!(clp + 0.02 >= loss.ulp, "clp {clp} vs ulp {}", loss.ulp);
}

#[test]
fn workload_estimates_average_near_offered_load() {
    // Mean of the eq.-(6) estimates over small delta tracks the offered
    // cross-traffic load (biased up by the buffer-empty clamp).
    let out = run(20, 120, 3);
    let est = probenet::core::workload_estimates(&out.series, 128_000.0);
    let mean_bits = est.iter().sum::<f64>() / est.len() as f64 * 8.0;
    let per_interval_offered = 0.62 * 128_000.0 * 0.020; // util * mu * delta
                                                         // Within a factor band: the estimator upper-bounds and loss-broken
                                                         // pairs are excluded.
    assert!(
        mean_bits > 0.5 * per_interval_offered && mean_bits < 2.5 * per_interval_offered,
        "mean estimated {mean_bits} bits vs offered {per_interval_offered}"
    );
}

#[test]
fn rtt_series_is_strongly_autocorrelated_at_small_delta() {
    // Queues drain over many probe intervals at delta = 8 ms: neighbouring
    // RTTs are highly correlated — the basis for the paper's §3 interest
    // in time-series models (and ref [16]-style predictive control).
    let out = run(8, 60, 5);
    let rtts = out.series.delivered_rtts_ms();
    let acf = autocorrelation(&rtts, 10);
    assert!(acf[1] > 0.8, "lag-1 autocorrelation {}", acf[1]);

    // An AR model therefore predicts far better than the mean.
    let model = ArModel::fit(&rtts, 4);
    let mse = model.one_step_mse(&rtts);
    let var = Moments::from_slice(&rtts).variance();
    assert!(
        mse < 0.3 * var,
        "AR(4) one-step MSE {mse:.2} vs variance {var:.2}"
    );
}

#[test]
fn rtt_decorrelates_as_delta_grows() {
    // The same comparison the paper makes for losses holds for delays:
    // at delta = 500 ms successive probes see nearly independent queues.
    let small = run(8, 60, 6);
    let large = run(500, 600, 6);
    let acf_small = autocorrelation(&small.series.delivered_rtts_ms(), 1)[1];
    let acf_large = autocorrelation(&large.series.delivered_rtts_ms(), 1)[1];
    assert!(
        acf_small > acf_large + 0.3,
        "lag-1 acf: delta=8ms {acf_small:.3} vs delta=500ms {acf_large:.3}"
    );
}

#[test]
fn interarrival_mean_equals_delta_under_stationarity() {
    // E[g_n] = delta when the series is stationary (returning probes
    // neither pile up forever nor drain a deficit): a consistency check of
    // the measurement pipeline.
    let out = run(50, 240, 7);
    let g = interarrival_series(&out.series);
    let mean = g.iter().sum::<f64>() / g.len() as f64;
    assert!(
        (mean - 50.0).abs() < 2.0,
        "mean interarrival {mean} ms vs delta 50 ms"
    );
}

#[test]
fn workload_peaks_are_delta_invariant_where_expected() {
    // Compressed-peak position (P/mu) must not move with delta; the
    // undisturbed peak must track delta — the key structural claim behind
    // Figures 8 and 9.
    let a20 = analyze_workload(&run(20, 120, 8).series, 128_000.0, 4096.0, 100.0);
    let a100 = analyze_workload(&run(100, 240, 8).series, 128_000.0, 4096.0, 200.0);

    let c20 = a20
        .compressed_peak()
        .expect("compressed at 20 ms")
        .position_ms;
    let u20 = a20
        .undisturbed_peak()
        .expect("undisturbed at 20 ms")
        .position_ms;
    let u100 = a100
        .undisturbed_peak()
        .expect("undisturbed at 100 ms")
        .position_ms;
    assert!((c20 - 4.5).abs() < 1.5, "compressed peak at {c20} ms");
    assert!((u20 - 20.0).abs() < 1.5, "undisturbed at {u20} ms");
    assert!((u100 - 100.0).abs() < 5.0, "undisturbed at {u100} ms");

    // Compression is rarer at delta = 100 ms: the peak shrinks (paper's
    // Figure 9 observation) or disappears.
    let h20 = a20.compressed_peak().expect("checked").height;
    let h100 = a100.compressed_peak().map(|p| p.height).unwrap_or(0.0);
    assert!(h100 < h20, "compressed peak must shrink: {h100} vs {h20}");
}

#[test]
fn peak_labels_cover_expected_families() {
    let a = analyze_workload(&run(20, 180, 9).series, 128_000.0, 4096.0, 100.0);
    let labels: Vec<PeakLabel> = a.peaks.iter().map(|p| p.label).collect();
    assert!(labels.contains(&PeakLabel::Compressed));
    assert!(labels.contains(&PeakLabel::Undisturbed));
    assert!(
        labels
            .iter()
            .any(|l| matches!(l, PeakLabel::BulkPackets(_))),
        "no bulk peak found in {labels:?}"
    );
}
