//! Golden-trace snapshots of the pinned `bursty-transatlantic` impairment
//! scenario: the full report — loss metrics plus an FNV-1a digest over
//! every per-probe record — must match the checked-in artifacts under
//! `tests/golden/` byte for byte, whether the slices are rendered serially
//! or on the work-stealing pool.
//!
//! A mismatch means simulator behavior drifted. If the drift is intended,
//! regenerate the artifacts with `cargo run --release --bin repro -- --bless`
//! and commit the diff; if not, it is a determinism or regression bug.

use probenet_bench::{golden_report_threads, GOLDEN_SEEDS};

/// The checked-in artifacts, pinned at compile time so the test cannot
/// silently pass against freshly regenerated files.
fn checked_in(seed: u64) -> &'static str {
    match seed {
        1993 => include_str!("golden/bursty-transatlantic-seed1993.json"),
        4021 => include_str!("golden/bursty-transatlantic-seed4021.json"),
        other => panic!("no golden artifact for seed {other}"),
    }
}

#[test]
fn golden_traces_match_serial_rendering() {
    for seed in GOLDEN_SEEDS {
        let fresh = golden_report_threads(seed, 1);
        assert_eq!(
            fresh,
            checked_in(seed),
            "seed {seed}: serial golden report drifted from tests/golden/ \
             (rerun `repro --bless` only if the behavior change is intended)"
        );
    }
}

#[test]
fn golden_traces_match_pooled_rendering() {
    for seed in GOLDEN_SEEDS {
        let fresh = golden_report_threads(seed, 4);
        assert_eq!(
            fresh,
            checked_in(seed),
            "seed {seed}: pool(4) golden report differs from the checked-in \
             artifact — pool scheduling leaked into results"
        );
    }
}
