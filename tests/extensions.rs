//! Integration tests for the beyond-the-paper extensions: the §6 analytic
//! model against the full simulator, one-way delays, route changes, delay
//! fits, and CSV interchange — each exercised across crate boundaries.

use probenet::core::{
    analyze_delay_distribution, analyze_owd, detect_route_changes, loss_given_delay,
    playback_buffer_ms, PaperScenario,
};
use probenet::netdyn::{from_csv, to_csv, ExperimentConfig, RttRecord, RttSeries, SimExperiment};
use probenet::queueing::{BatchModelSolver, BatchSizeDist, BolotModel};
use probenet::sim::{Direction, Engine, Path, SimDuration, SimTime};
use probenet::stats::hurst_aggregate_variance;
use probenet::traffic::{thin_with, InternetMix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario_series(delta_ms: u64, count: usize, seed: u64) -> RttSeries {
    let sc = PaperScenario::inria_umd(seed);
    let cfg = ExperimentConfig::paper(SimDuration::from_millis(delta_ms))
        .with_count(count)
        .with_clock(SimDuration::ZERO);
    sc.run(&cfg).series
}

#[test]
fn analytic_model_tracks_simulated_compression_mass() {
    // Drive the Figure-3 topology with batch-deterministic traffic (one
    // batch per interval) and compare the simulated interarrival mass at
    // P/mu with the analytic stationary solution.
    let model = BolotModel::new(128_000.0, 576.0, 0.020, 0.100);
    let probs = [0.78, 0.12, 0.06, 0.04];
    let solver = BatchModelSolver::new(model, 0.010, BatchSizeDist::ftp_batches(4096.0, &probs));
    let sol = solver.solve(5000);

    // Simulate the same process on the sim engine's Figure-3 path.
    let path = probenet::sim::figure3_model(
        128_000,
        SimDuration::from_millis(100),
        probenet::sim::BufferLimit::Unbounded,
    );
    let mut engine = Engine::new(path, 9);
    let n = 30_000u64;
    let mut state = 123u64;
    for k in 0..n {
        let at = SimTime::from_millis(20 * (k + 1));
        engine.inject_probe(at, 72, k);
        // One batch per interval at offset 10 ms, sizes from `probs`.
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64;
        let mut acc = 0.0;
        let mut batch = 0usize;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                batch = i;
                break;
            }
        }
        if batch > 0 {
            let t = at + SimDuration::from_millis(10);
            engine.attach_cross_traffic(
                0,
                Direction::Outbound,
                (0..batch).map(move |_| (t, 512u32)),
            );
        }
    }
    engine.run();
    let mut recv: Vec<(u64, f64)> = engine
        .probe_deliveries()
        .map(|d| (d.seq, d.rtt().as_secs_f64()))
        .collect();
    recv.sort_by_key(|&(s, _)| s);
    let g: Vec<f64> = recv
        .windows(2)
        .filter(|w| w[1].0 == w[0].0 + 1)
        .map(|w| w[1].1 - w[0].1 + 0.020)
        .collect();
    let sim_mass_at = |x: f64, tol: f64| {
        g.iter().filter(|&&v| (v - x).abs() <= tol).count() as f64 / g.len() as f64
    };
    for (x, label) in [(0.0045, "P/mu"), (0.020, "delta"), (0.0365, "1 pkt")] {
        let sim = sim_mass_at(x, 0.0015);
        let analytic = sol.g_mass_near(x, 0.0015);
        assert!(
            (sim - analytic).abs() < 0.05,
            "{label}: simulated {sim:.4} vs analytic {analytic:.4}"
        );
    }
}

#[test]
fn owd_pipeline_end_to_end() {
    let series = scenario_series(20, 4000, 5);
    let owd = analyze_owd(&series).expect("sim provides echo stamps");
    assert!(owd.samples > 2500);
    // Consistency with the series' own view.
    assert_eq!(owd.samples, series.one_way_delays_ms().len());
    // Outbound carries the heavier configured load.
    assert!(owd.queueing_asymmetry_ms > 0.0);
}

#[test]
fn route_change_detected_through_loaded_path() {
    let path = Path::inria_umd_1992();
    let (bidx, spec) = path.bottleneck();
    let mu = spec.bandwidth_bps;
    let mut engine = Engine::new(path, 13);
    let mix = InternetMix::calibrated(mu, 0.45, 0.1, 3.0);
    let arrivals = mix.generate(&mut StdRng::seed_from_u64(6), SimDuration::from_secs(130));
    engine.attach_cross_traffic(
        bidx,
        Direction::Outbound,
        arrivals.iter().map(|a| a.into_pair()),
    );
    engine.schedule_propagation_change(
        bidx,
        SimTime::from_secs(60),
        SimDuration::from_micros(49_750 + 25_000),
    );
    let count = 2400u64;
    for n in 0..count {
        engine.inject_probe(SimTime::from_millis(50 * n), 72, n);
    }
    engine.run();
    let mut records: Vec<RttRecord> = (0..count)
        .map(|n| RttRecord {
            seq: n,
            sent_at: n * 50_000_000,
            echoed_at: None,
            rtt: None,
        })
        .collect();
    for d in engine.probe_deliveries() {
        records[d.seq as usize].rtt = Some(d.rtt().as_nanos());
    }
    let series = RttSeries::new(SimDuration::from_millis(50), 72, SimDuration::ZERO, records);
    let changes = detect_route_changes(&series, 100, 10.0);
    assert_eq!(changes.len(), 1, "{changes:?}");
    assert!((changes[0].shift_ms() - 50.0).abs() < 5.0, "{changes:?}");
}

#[test]
fn delay_fit_and_playback_sizing_are_consistent() {
    let series = scenario_series(50, 4800, 8);
    let a = analyze_delay_distribution(&series).expect("data");
    // The p95-based playback budget matches the quantile arithmetic.
    let budget = playback_buffer_ms(&series, 0.05).expect("data");
    assert!((budget - (a.p95_ms - a.min_ms)).abs() < 1e-9);
    // Congestion losses follow high delays on this path at small delta.
    let series8 = scenario_series(8, 12_000, 8);
    let (hi, lo) = loss_given_delay(&series8, 0.9).expect("losses");
    assert!(hi > lo, "loss after high delay {hi} vs low {lo}");
}

#[test]
fn csv_round_trips_a_real_experiment() {
    let series = scenario_series(100, 600, 9);
    let text = to_csv(&series);
    let back = from_csv(&text).expect("parse our own output");
    assert_eq!(back.records, series.records);
    assert_eq!(back.interval_ns, series.interval_ns);
    // The paper convention survives the round trip.
    assert_eq!(back.rtt_or_zero_ms(), series.rtt_or_zero_ms());
}

#[test]
fn diurnal_modulation_raises_hurst() {
    // Stationary load vs. slowly modulated load: the modulated series has
    // more long-time-scale variance (higher aggregate-variance Hurst).
    let path = Path::inria_umd_1992();
    let (bidx, spec) = path.bottleneck();
    let horizon = SimDuration::from_secs(300);
    let cfg = ExperimentConfig::paper(SimDuration::from_millis(100))
        .with_count(3000)
        .with_clock(SimDuration::ZERO);

    let stationary = {
        let mix = InternetMix::calibrated(spec.bandwidth_bps, 0.55, 0.1, 3.0);
        let arr = mix.generate(&mut StdRng::seed_from_u64(1), horizon);
        SimExperiment::new(cfg.clone(), path.clone(), 2)
            .with_cross_traffic(bidx, Direction::Outbound, arr)
            .run()
            .0
    };
    let modulated = {
        let mix = InternetMix::calibrated(spec.bandwidth_bps, 0.85, 0.1, 3.0);
        let mut rng = StdRng::seed_from_u64(1);
        let arr = mix.generate(&mut rng, horizon);
        let arr = thin_with(
            &arr,
            probenet::traffic::diurnal_factor(0.3, 1.0, SimDuration::from_secs(150)),
            &mut rng,
        );
        SimExperiment::new(cfg, path, 2)
            .with_cross_traffic(bidx, Direction::Outbound, arr)
            .run()
            .0
    };
    let h_flat = hurst_aggregate_variance(&stationary.delivered_rtts_ms()).expect("data");
    let h_mod = hurst_aggregate_variance(&modulated.delivered_rtts_ms()).expect("data");
    assert!(
        h_mod > h_flat,
        "modulated H {h_mod:.3} should exceed stationary H {h_flat:.3}"
    );
}

#[test]
fn route_shortening_reorders_in_flight_probes() {
    // Probes crossing a long hop get overtaken when the hop suddenly
    // shortens: the sequence numbers expose the reordering (the NetDyn
    // capability the paper's §2 describes).
    let path = Path::new(
        vec!["a".into(), "b".into()],
        vec![probenet::sim::LinkSpec::new(
            10_000_000,
            SimDuration::from_millis(200),
        )],
    );
    let mut engine = Engine::new(path, 1);
    // Shorten the link drastically while early probes are still in flight.
    engine.schedule_propagation_change(0, SimTime::from_millis(50), SimDuration::from_millis(5));
    for n in 0..20u64 {
        engine.inject_probe(SimTime::from_millis(20 * n), 72, n);
    }
    engine.run();
    let mut records: Vec<RttRecord> = (0..20u64)
        .map(|n| RttRecord {
            seq: n,
            sent_at: n * 20_000_000,
            echoed_at: None,
            rtt: None,
        })
        .collect();
    for d in engine.probe_deliveries() {
        records[d.seq as usize].rtt = Some(d.rtt().as_nanos());
    }
    let series = RttSeries::new(SimDuration::from_millis(20), 72, SimDuration::ZERO, records);
    assert!(
        series.reordering_count() > 0,
        "shortened route must overtake in-flight probes"
    );

    // A stable route never reorders.
    let path = Path::inria_umd_1992();
    let mut engine = Engine::new(path, 2);
    for n in 0..200u64 {
        engine.inject_probe(SimTime::from_millis(20 * n), 72, n);
    }
    engine.run();
    let mut records: Vec<RttRecord> = (0..200u64)
        .map(|n| RttRecord {
            seq: n,
            sent_at: n * 20_000_000,
            echoed_at: None,
            rtt: None,
        })
        .collect();
    for d in engine.probe_deliveries() {
        records[d.seq as usize].rtt = Some(d.rtt().as_nanos());
    }
    let series = RttSeries::new(SimDuration::from_millis(20), 72, SimDuration::ZERO, records);
    assert_eq!(series.reordering_count(), 0);
}
