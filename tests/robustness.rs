//! Robustness: the analysis pipeline must accept *arbitrary* measurement
//! data without panicking — a real tool meets malformed, adversarial, and
//! degenerate series (clock glitches, total loss, single probes), not just
//! its own simulator's output.

use probenet::core::{
    analyze_delay_distribution, analyze_losses, analyze_owd, analyze_workload,
    detect_route_changes, full_report, interarrival_series, loss_delay_correlation, render_report,
    workload_estimates, PhasePlot,
};
use probenet::netdyn::{from_csv, to_csv, RttRecord, RttSeries};
use probenet::sim::SimDuration;
use proptest::prelude::*;

/// Arbitrary-ish RTT series: random subsets lost, random (possibly absurd)
/// RTT magnitudes, random echo stamps.
fn arb_series() -> impl Strategy<Value = RttSeries> {
    (
        1u64..500, // interval ms
        0u64..6,   // clock resolution ms
        proptest::collection::vec(
            (
                proptest::option::of(0u64..10_000_000_000), // rtt ns (up to 10 s)
                proptest::option::of(0u64..10_000_000_000), // echo offset ns
            ),
            0..200,
        ),
    )
        .prop_map(|(interval_ms, clock_ms, probes)| {
            let records = probes
                .into_iter()
                .enumerate()
                .map(|(n, (rtt, echo))| RttRecord {
                    seq: n as u64,
                    sent_at: n as u64 * interval_ms * 1_000_000,
                    echoed_at: echo.map(|e| n as u64 * interval_ms * 1_000_000 + e),
                    rtt,
                })
                .collect();
            RttSeries::new(
                SimDuration::from_millis(interval_ms),
                72,
                SimDuration::from_millis(clock_ms),
                records,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn analysis_pipeline_never_panics(series in arb_series()) {
        let _ = analyze_losses(&series);
        let plot = PhasePlot::from_series(&series);
        let _ = plot.bottleneck_estimate(10);
        let _ = plot.min_rtt_ms();
        let _ = interarrival_series(&series);
        let _ = workload_estimates(&series, 128_000.0);
        let _ = analyze_workload(&series, 128_000.0, 4096.0, 100.0);
        let _ = analyze_delay_distribution(&series);
        let _ = loss_delay_correlation(&series);
        let _ = analyze_owd(&series);
        let _ = detect_route_changes(&series, 50, 10.0);
        let _ = series.reordering_count();
    }

    #[test]
    fn full_report_never_panics_and_always_renders(series in arb_series()) {
        let report = full_report(&series, Some(128_000.0));
        let text = render_report(&report);
        prop_assert!(text.contains("measurement:"));
        // And it always serializes.
        let json = serde_json::to_string(&report).expect("serializable");
        prop_assert!(json.contains("measurement"));
    }

    #[test]
    fn csv_round_trip_is_lossless_for_any_series(series in arb_series()) {
        let text = to_csv(&series);
        let back = from_csv(&text).expect("own output parses");
        prop_assert_eq!(back.records, series.records);
    }

    #[test]
    fn csv_parser_never_panics_on_garbage(text in "\\PC{0,400}") {
        let _ = from_csv(&text);
    }
}
