//! Cross-validation: the discrete-event simulator against the analytic
//! queueing layer.
//!
//! These tests degenerate the simulator to configurations with exact or
//! closed-form expectations — the paper's Figure-3 model, Lindley's
//! recurrence, Pollaczek–Khinchine — and require agreement.

use probenet::queueing::{finite_queue, md1_mean_wait, Batch, BolotModel, Outcome};
use probenet::sim::{
    figure3_model, BufferLimit, Direction, Engine, FlowClass, LinkSpec, Path, SimDuration, SimTime,
};
use probenet::traffic::PoissonStream;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A one-hop path with no propagation delay and an unbounded buffer: the
/// pure single-server queue.
fn bare_queue(mu_bps: u64) -> Path {
    Path::new(
        vec!["src".into(), "sink".into()],
        vec![LinkSpec::new(mu_bps, SimDuration::ZERO).with_buffer(BufferLimit::Unbounded)],
    )
}

#[test]
fn engine_reproduces_bolot_model_exactly() {
    // The paper's Figure-3 model: fixed delay + one bottleneck. Feed the
    // same probe schedule and batch sequence to both the event simulator
    // and the closed two-stage Lindley recurrence; RTTs must agree to the
    // nanosecond-rounding level.
    let mu = 128_000u64;
    let delta_s = 0.020;
    let fixed_rtt = 0.100;
    let probe_bytes = 72u32;
    let model = BolotModel::new(mu as f64, probe_bytes as f64 * 8.0, delta_s, fixed_rtt);

    // Batch sequence: k FTP packets (4096 bits each) per interval, with a
    // deterministic pattern, arriving 5 ms into the interval. Use a
    // *single arrival instant* per batch, as the model assumes.
    let pattern = [0u32, 1, 0, 0, 2, 0, 1, 0, 0, 0, 3, 0, 0, 1, 0];
    let n_probes = 200usize;
    let batches: Vec<Batch> = (0..n_probes - 1)
        .map(|i| Batch {
            bits: pattern[i % pattern.len()] as f64 * 4096.0,
            offset: 0.005,
        })
        .collect();
    let want_rtts = model.rtts(&model.waiting_times(&batches));

    // Simulator: same single queue; the return path must be free of
    // queueing, so give the return direction nothing to contend with.
    // figure3_model splits the fixed RTT over the one link's propagation
    // (both directions); the probe is served once per direction, but the
    // model counts one P/mu only — so make the return service free by
    // using... instead, build the path by hand: outbound bottleneck link,
    // then an infinitely fast return. A 2-node path shares the link both
    // ways, so use the fact that with no return cross traffic and probe
    // spacing >= P/mu the return queue adds exactly P/mu per probe: fold
    // that into the comparison.
    let path = figure3_model(
        mu,
        SimDuration::from_secs_f64(fixed_rtt),
        BufferLimit::Unbounded,
    );
    let mut engine = Engine::new(path, 0);
    for n in 0..n_probes as u64 {
        engine.inject_probe(
            SimTime::from_secs_f64(delta_s * (n + 1) as f64),
            probe_bytes,
            n,
        );
    }
    for (i, b) in batches.iter().enumerate() {
        if b.bits > 0.0 {
            let k = (b.bits / 4096.0) as u32;
            let at = SimTime::from_secs_f64(delta_s * (i + 1) as f64 + b.offset);
            engine.attach_cross_traffic(0, Direction::Outbound, (0..k).map(move |_| (at, 512u32)));
        }
    }
    engine.run();

    let mut got: Vec<(u64, f64)> = engine
        .probe_deliveries()
        .map(|d| (d.seq, d.rtt().as_secs_f64()))
        .collect();
    got.sort_by_key(|&(seq, _)| seq);
    assert_eq!(got.len(), n_probes, "no probe may be lost here");

    // The simulator's RTT = model RTT + one extra P/mu (the return-link
    // service, which the analytic model folds into D but the simulator
    // pays explicitly).
    let extra = probe_bytes as f64 * 8.0 / mu as f64;
    for (n, rtt) in got {
        let want = want_rtts[n as usize] + extra;
        assert!(
            (rtt - want).abs() < 1e-6,
            "probe {n}: sim {rtt:.6} s vs model {want:.6} s"
        );
    }
}

#[test]
fn engine_matches_lindley_finite_queue() {
    // Drive a finite-buffer queue with a deterministic cross-traffic
    // pattern and compare packet-by-packet outcomes with the exact Lindley
    // bookkeeping from the queueing crate.
    let mu = 100_000u64; // 12.5 kB/s: a 500-byte packet takes 40 ms
    let capacity_queued = 3usize;
    let path = Path::new(
        vec!["a".into(), "b".into()],
        vec![
            LinkSpec::new(mu, SimDuration::ZERO).with_buffer(BufferLimit::Packets(capacity_queued))
        ],
    );
    let mut engine = Engine::new(path, 0);
    // A bursty deterministic schedule (ms): clusters that overflow.
    let arrivals_ms: Vec<u64> = vec![0, 1, 2, 3, 4, 5, 200, 201, 202, 203, 204, 500];
    let size = 500u32;
    engine.attach_cross_traffic(
        0,
        Direction::Outbound,
        arrivals_ms
            .iter()
            .map(|&ms| (SimTime::from_millis(ms), size)),
    );
    engine.run();

    let service = size as f64 * 8.0 / mu as f64;
    let arr_s: Vec<f64> = arrivals_ms.iter().map(|&ms| ms as f64 / 1e3).collect();
    let services = vec![service; arr_s.len()];
    // Engine admits into buffer + 1 in service.
    let outcomes = finite_queue(&arr_s, &services, capacity_queued + 1);

    let delivered: std::collections::HashMap<u64, f64> = engine
        .deliveries()
        .iter()
        .filter(|d| d.class == FlowClass::Cross)
        .map(|d| (d.seq, d.rtt().as_secs_f64()))
        .collect();
    let dropped: std::collections::HashSet<u64> = engine.drops().iter().map(|d| d.seq).collect();

    for (i, o) in outcomes.iter().enumerate() {
        match o {
            Outcome::Served { wait } => {
                let rtt = delivered
                    .get(&(i as u64))
                    .unwrap_or_else(|| panic!("packet {i} should be served"));
                let want = wait + service; // sojourn = wait + service
                assert!(
                    (rtt - want).abs() < 1e-9,
                    "packet {i}: sim sojourn {rtt} vs lindley {want}"
                );
            }
            Outcome::Blocked => {
                assert!(
                    dropped.contains(&(i as u64)),
                    "packet {i} should be blocked"
                );
            }
        }
    }
}

#[test]
fn md1_queue_matches_pollaczek_khinchine() {
    // Poisson arrivals + deterministic service at rho = 0.7: the measured
    // mean waiting time must approach the PK formula.
    let mu = 1_000_000u64; // 1 Mb/s
    let size = 1000u32; // 8 ms service
    let service = size as f64 * 8.0 / mu as f64;
    let rho: f64 = 0.7;
    let lambda = rho / service; // 87.5 packets/s

    let stream = PoissonStream {
        rate_hz: lambda,
        sizes: probenet::traffic::PacketSize::Constant(size),
    };
    let horizon = SimDuration::from_secs(2000);
    let arrivals = stream.generate(&mut StdRng::seed_from_u64(42), horizon);
    let n = arrivals.len();

    let mut engine = Engine::new(bare_queue(mu), 1);
    engine.attach_cross_traffic(
        0,
        Direction::Outbound,
        arrivals.iter().map(|a| a.into_pair()),
    );
    engine.run();

    let total_wait: f64 = engine
        .deliveries()
        .iter()
        .map(|d| d.rtt().as_secs_f64() - service)
        .sum();
    let measured = total_wait / n as f64;
    let want = md1_mean_wait(lambda, service);
    let rel = (measured - want).abs() / want;
    assert!(
        rel < 0.08,
        "M/D/1 mean wait: measured {measured:.6} vs PK {want:.6} (rel err {rel:.3})"
    );
}

#[test]
fn probe_saturation_yields_exact_compression_spacing() {
    // delta < P/mu: the probe stream saturates the bottleneck; every
    // delivery is spaced exactly P/mu apart (the extreme of eq. 3).
    let mu = 128_000u64;
    let probe = 72u32; // 4.5 ms service
    let path = Path::new(
        vec!["src".into(), "echo".into()],
        vec![LinkSpec::new(mu, SimDuration::from_millis(5)).with_buffer(BufferLimit::Unbounded)],
    );
    let mut engine = Engine::new(path, 0);
    for n in 0..200u64 {
        engine.inject_probe(SimTime::from_millis(2 * n), probe, n);
    }
    engine.run();
    let mut recv: Vec<SimTime> = engine.probe_deliveries().map(|d| d.delivered_at).collect();
    recv.sort();
    assert_eq!(recv.len(), 200);
    for w in recv.windows(2) {
        assert_eq!(w[1] - w[0], SimDuration::from_micros(4500));
    }
}

#[test]
fn bernoulli_loss_path_has_clp_equal_ulp() {
    // Pure random loss (no queueing, no overflow): the loss process is
    // i.i.d., so clp ≈ ulp, the gap ≈ 1/(1−ulp), and independence tests
    // pass — the baseline against which the paper's small-δ burstiness
    // stands out.
    let path = Path::new(
        vec!["src".into(), "echo".into()],
        vec![LinkSpec::new(10_000_000, SimDuration::from_millis(1)).with_random_loss(0.1)],
    );
    let mut engine = Engine::new(path, 9);
    let n = 50_000u64;
    for k in 0..n {
        engine.inject_probe(SimTime::from_millis(k), 72, k);
    }
    engine.run();
    let mut flags = vec![true; n as usize];
    for d in engine.probe_deliveries() {
        flags[d.seq as usize] = false;
    }
    let analysis = probenet::core::analyze_loss_flags(&flags);
    // Two traversals at 10%: ulp = 1 - 0.9^2 = 0.19.
    assert!((analysis.ulp - 0.19).abs() < 0.01, "ulp {}", analysis.ulp);
    let clp = analysis.clp.expect("losses occurred");
    assert!(
        (clp - analysis.ulp).abs() < 0.02,
        "clp {clp} should equal ulp {}",
        analysis.ulp
    );
    assert!(analysis.losses_look_random(0.001));
    let gap = analysis.plg_measured.expect("losses occurred");
    assert!((gap - 1.0 / (1.0 - clp)).abs() < 0.05, "gap {gap}");
}
