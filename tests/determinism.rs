//! Reproducibility guarantees across the whole stack: identical seeds give
//! bit-identical experiments; different seeds genuinely differ; and the
//! serialized forms are stable round-trips. These properties are what make
//! every number in EXPERIMENTS.md regenerable.

use probenet::core::{
    delta_sweep, delta_sweep_serial, run_campaign, run_campaign_serial, PaperScenario,
};
use probenet::netdyn::{to_csv, ExperimentConfig};
use probenet::sim::{Direction, Engine, Path, SimDuration, SimTime, WindowFlow};

fn run_scenario(seed: u64) -> probenet::netdyn::RttSeries {
    let sc = PaperScenario::inria_umd(seed);
    let cfg = ExperimentConfig::paper(SimDuration::from_millis(20)).with_count(2000);
    sc.run(&cfg).series
}

#[test]
fn identical_seeds_give_identical_series() {
    let a = run_scenario(77);
    let b = run_scenario(77);
    assert_eq!(a.records, b.records);
    // Byte-identical serializations too.
    assert_eq!(to_csv(&a), to_csv(&b));
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn different_seeds_give_different_series() {
    let a = run_scenario(1);
    let b = run_scenario(2);
    assert_ne!(a.records, b.records, "seeds must drive real randomness");
    // But the calibration invariants hold for both.
    for s in [&a, &b] {
        let min = s.min_rtt_ms().expect("deliveries");
        assert!((138.0..146.0).contains(&min), "min {min}");
    }
}

#[test]
fn sweep_is_reproducible_despite_parallelism() {
    // delta_sweep runs its six experiments on six threads; the result must
    // not depend on scheduling.
    let sc = PaperScenario::inria_umd(5);
    let span = SimDuration::from_secs(15);
    let rows_a: Vec<_> = delta_sweep(&sc, span)
        .into_iter()
        .map(|(r, _)| (r.delta_ms as u64, r.ulp.to_bits(), r.clp.to_bits()))
        .collect();
    let rows_b: Vec<_> = delta_sweep(&sc, span)
        .into_iter()
        .map(|(r, _)| (r.delta_ms as u64, r.ulp.to_bits(), r.clp.to_bits()))
        .collect();
    assert_eq!(rows_a, rows_b);
}

#[test]
fn pooled_campaign_and_sweep_match_serial_byte_for_byte() {
    // The work-stealing pool must be invisible in results: a campaign over
    // several seeds and a full δ sweep, run through the pool, serialize to
    // exactly the JSON a forced single-thread run produces.
    let span = SimDuration::from_secs(15);
    let seeds = [1993u64, 4021, 77];

    let scenario_for = |seed| PaperScenario::inria_umd(seed);
    let config = ExperimentConfig::paper(SimDuration::from_millis(50)).with_count(300);
    let pooled = run_campaign(scenario_for, &config, &seeds);
    let serial = run_campaign_serial(scenario_for, &config, &seeds);
    assert_eq!(
        serde_json::to_string(&pooled).unwrap(),
        serde_json::to_string(&serial).unwrap(),
        "CampaignResult depends on scheduling"
    );

    let sc = PaperScenario::inria_umd(4021);
    let sweep_pooled: Vec<_> = delta_sweep(&sc, span).into_iter().map(|(r, _)| r).collect();
    let sweep_serial: Vec<_> = delta_sweep_serial(&sc, span)
        .into_iter()
        .map(|(r, _)| r)
        .collect();
    assert_eq!(
        serde_json::to_string(&sweep_pooled).unwrap(),
        serde_json::to_string(&sweep_serial).unwrap(),
        "SweepRow depends on scheduling"
    );
}

#[test]
fn window_flows_are_deterministic() {
    let run = || {
        let mut e = Engine::new(Path::inria_umd_1992(), 3);
        e.add_window_flow(WindowFlow::aimd(512, 40, 32, false), SimTime::ZERO);
        e.add_window_flow(WindowFlow::fixed(512, 40, 4, true), SimTime::ZERO);
        for n in 0..500u64 {
            e.inject_probe(SimTime::from_millis(40 * n), 72, n);
        }
        e.run_until(SimTime::from_secs(25));
        let deliveries: Vec<(u32, u64, u64)> = e
            .deliveries()
            .iter()
            .map(|d| (d.flow, d.seq, d.delivered_at.as_nanos()))
            .collect();
        (deliveries, e.drops().len())
    };
    assert_eq!(run(), run());
}

#[test]
fn run_until_then_continue_equals_run_straight_through() {
    // Pausing the engine at horizons must not change physics.
    let build = || {
        let mut e = Engine::new(Path::inria_umd_1992(), 9);
        e.attach_cross_traffic(
            4,
            Direction::Outbound,
            (0..500u64).map(|i| (SimTime::from_millis(37 * i), 512u32)),
        );
        for n in 0..400u64 {
            e.inject_probe(SimTime::from_millis(50 * n), 72, n);
        }
        e
    };
    let mut straight = build();
    straight.run();
    let mut stepped = build();
    for step in 1..=50u64 {
        stepped.run_until(SimTime::from_millis(step * 500));
    }
    stepped.run();
    let key = |e: &Engine| {
        e.deliveries()
            .iter()
            .map(|d| (d.flow, d.seq, d.delivered_at.as_nanos()))
            .collect::<Vec<_>>()
    };
    assert_eq!(key(&straight), key(&stepped));
    assert_eq!(straight.drops().len(), stepped.drops().len());
}
