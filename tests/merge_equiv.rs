//! Differential fleet suite: one campaign's records, split across N
//! simulated collectors and shipped through the `probenet-merged` fold as
//! snapshot frames, must reproduce the single-process [`Collector`] report
//! **byte-for-byte** — whatever the worker-pool width (the in-process
//! equivalent of the CI matrix `PROBENET_THREADS ∈ {1,4,8}`), the fleet
//! size (N ∈ {1,2,8}), the frame arrival order, or the transport (bytes
//! in memory vs a real TCP socket). Same-key *segment* folds are pinned
//! bit-identically against the in-memory `EstimatorBank::merge`.

use std::io::Write as _;

use probenet_bench::frame_shards;
use probenet_core::impairment_scenario;
use probenet_merged::{serve_tcp, MergeService};
use probenet_netdyn::RttSeries;
use probenet_sim::SimDuration;
use probenet_stream::{
    BankConfig, Collector, CollectorConfig, CollectorReport, EstimatorBank, SessionKey,
};
use probenet_wire::snapshot::SessionFrame;

/// The campaign: four sessions over three impairment scenarios, short
/// spans so the suite stays debug-build friendly.
const SESSIONS: &[(&str, u64, u64)] = &[
    ("bursty-transatlantic", 20, 1993),
    ("bursty-transatlantic", 50, 4021),
    ("route-flap", 50, 7),
    ("dirty-fiber", 8, 42),
];

fn session_series(scenario: &str, delta_ms: u64, seed: u64) -> RttSeries {
    impairment_scenario(scenario)
        .expect("campaign scenario exists")
        .run(
            seed,
            SimDuration::from_millis(delta_ms),
            SimDuration::from_secs(20),
        )
        .series
}

/// The single-process reference: every session folded by one collector,
/// series generation scheduled on `threads` pool workers — the same
/// structure as the golden `stream_collector_report`, over this suite's
/// cheaper campaign.
fn campaign_report(threads: usize, snapshot_every: u64) -> CollectorReport {
    let tasks: Vec<(String, u64, u64)> = SESSIONS
        .iter()
        .map(|&(s, d, seed)| (s.to_string(), d, seed))
        .collect();
    let series_by_task =
        probenet_core::sched::par_map_threads(threads, tasks.clone(), |(s, d, seed)| {
            session_series(&s, d, seed)
        });
    let mut collector = Collector::new(CollectorConfig {
        channel_capacity: 256,
        snapshot_every,
    });
    let mut producers = Vec::new();
    for ((scenario, delta_ms, seed), series) in tasks.iter().zip(&series_by_task) {
        let key = SessionKey::new(scenario, *delta_ms, *seed);
        let bank = BankConfig::bolot(
            *delta_ms as f64,
            series.wire_bytes,
            series.clock_resolution_ns,
        );
        producers.push(collector.add_session(key, bank));
    }
    let running = collector.start();
    let mut handles = Vec::new();
    for (p, series) in producers.into_iter().zip(series_by_task) {
        handles.push(std::thread::spawn(move || {
            for r in &series.records {
                assert!(p.push(r.to_stream()), "collector exited early");
            }
        }));
    }
    for h in handles {
        h.join().expect("producer thread");
    }
    running.join()
}

fn render(report: &CollectorReport) -> String {
    let mut body = report.to_json();
    body.push('\n');
    body
}

#[test]
fn merged_report_is_byte_identical_across_widths_and_fleet_sizes() {
    for threads in [1usize, 4, 8] {
        let single = campaign_report(threads, 0);
        let expected = render(&single);
        for collectors in [1usize, 2, 8] {
            let shards = frame_shards(&single, collectors);
            // Ingest in reverse arrival order: the fold must not depend on
            // which collector reports first.
            let mut service = MergeService::new();
            for shard in shards.iter().rev() {
                service
                    .ingest_bytes(shard)
                    .expect("golden-path frames decode");
            }
            let merged = service.into_report().expect("fold succeeds");
            assert_eq!(
                render(&merged),
                expected,
                "threads={threads} collectors={collectors}: merged report drifted"
            );
        }
    }
}

#[test]
fn tcp_transport_reproduces_the_single_process_report() {
    let single = campaign_report(1, 0);
    let expected = render(&single);
    let shards = frame_shards(&single, 2);

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("bound address");
    let daemon = std::thread::spawn(move || serve_tcp(&listener, 2));
    let mut senders = Vec::new();
    for shard in shards {
        senders.push(std::thread::spawn(move || {
            let mut conn = std::net::TcpStream::connect(addr).expect("connect to daemon");
            conn.write_all(&shard).expect("ship frames");
            // Dropping the stream closes the write side; the daemon reads
            // to EOF.
        }));
    }
    for s in senders {
        s.join().expect("sender thread");
    }
    let merged = daemon
        .join()
        .expect("daemon thread")
        .expect("fold succeeds");
    assert_eq!(render(&merged), expected, "TCP-shipped report drifted");
}

#[test]
fn same_key_segment_folds_match_the_in_memory_merge() {
    let (scenario, delta_ms, seed) = SESSIONS[0];
    let series = session_series(scenario, delta_ms, seed);
    let config = BankConfig::bolot(
        delta_ms as f64,
        series.wire_bytes,
        series.clock_resolution_ns,
    );
    let key = SessionKey::new(scenario, delta_ms, seed);
    let cut = series.records.len() / 3;

    let fold = |range: std::ops::Range<usize>| {
        let mut bank = EstimatorBank::new(config.clone());
        for r in &series.records[range] {
            bank.push(&r.to_stream());
        }
        bank
    };
    let frame = |range: std::ops::Range<usize>| SessionFrame {
        key: key.clone(),
        first_seq: range.start as u64,
        records: (range.end - range.start) as u64,
        dropped: 0,
        bank: fold(range),
        interim: Vec::new(),
        hops: Vec::new(),
        extensions: Vec::new(),
    };

    // Ship the tail shard first: the service must reorder by `first_seq`.
    let mut service = MergeService::new();
    service
        .ingest_bytes(&frame(cut..series.records.len()).encode())
        .expect("tail shard decodes");
    service
        .ingest_bytes(&frame(0..cut).encode())
        .expect("head shard decodes");
    let merged = service.into_report().expect("fold succeeds");
    assert_eq!(merged.sessions.len(), 1);
    assert_eq!(merged.sessions[0].records, series.records.len() as u64);

    let mut expected = fold(0..cut);
    expected.merge(&fold(cut..series.records.len()));
    assert_eq!(
        merged.sessions[0].bank.wire_state(),
        expected.wire_state(),
        "segment fold must be bit-identical to the in-memory merge"
    );
    assert_eq!(
        serde_json::to_string(&merged.sessions[0].snapshot).expect("snapshot renders"),
        serde_json::to_string(&expected.snapshot()).expect("snapshot renders"),
    );
}

/// Throughput probe behind the EXPERIMENTS.md "fleet merge" entry — run
/// explicitly with `cargo test --release --test merge_equiv -- --ignored
/// --nocapture` (wall-clock numbers are meaningless in debug builds).
#[test]
#[ignore = "throughput measurement, run by hand in release mode"]
fn merge_throughput_probe() {
    let shards: Vec<Vec<u8>> = (0..2)
        .map(|i| {
            std::fs::read(format!("tests/golden/stream-frames-c{i}.bin"))
                .expect("blessed frame shards exist (repro --stream --bless)")
        })
        .collect();
    let bytes_per_fold: usize = shards.iter().map(Vec::len).sum();
    let mut sessions = 0usize;
    const FOLDS: u32 = 200;
    let started = std::time::Instant::now();
    for _ in 0..FOLDS {
        let mut service = MergeService::new();
        for shard in &shards {
            service.ingest_bytes(shard).expect("golden shards decode");
        }
        sessions += service.into_report().expect("fold succeeds").sessions.len();
    }
    let secs = started.elapsed().as_secs_f64();
    println!(
        "fleet merge: {FOLDS} folds of {bytes_per_fold} bytes in {secs:.3} s — \
         {:.1} MB/s decode+fold, {:.0} sessions/s",
        bytes_per_fold as f64 * f64::from(FOLDS) / secs / 1e6,
        sessions as f64 / secs,
    );
}

#[test]
fn interim_snapshots_survive_the_fleet_round_trip() {
    // snapshot_every > 0 exercises the INTERIM frame section end-to-end.
    let single = campaign_report(1, 64);
    assert!(
        single.sessions.iter().any(|s| !s.interim.is_empty()),
        "campaign must produce interim snapshots for this test to bite"
    );
    let expected = render(&single);
    let shards = frame_shards(&single, 2);
    let mut service = MergeService::new();
    for shard in &shards {
        service.ingest_bytes(shard).expect("frames decode");
    }
    let merged = service.into_report().expect("fold succeeds");
    assert_eq!(render(&merged), expected, "interim-bearing report drifted");
}
