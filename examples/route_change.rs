//! Route-change detection from probe RTT baselines.
//!
//! The NetDyn studies the paper builds on (its ref [21]) observed Internet
//! route changes as sustained shifts of the round-trip baseline. Here the
//! transatlantic hop of the INRIA–UMd path is re-homed twice mid-run; the
//! detector recovers both events from the probe series alone, through the
//! queueing noise of the loaded bottleneck.
//!
//! ```sh
//! cargo run --release --example route_change
//! ```

use probenet::core::{detect_route_changes, render_time_series};
use probenet::netdyn::{RttRecord, RttSeries};
use probenet::sim::{Direction, Engine, Path, SimDuration, SimTime};
use probenet::traffic::InternetMix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let path = Path::inria_umd_1992();
    let (bottleneck, spec) = path.bottleneck();
    let mu = spec.bandwidth_bps;
    let delta = SimDuration::from_millis(50);
    let count = 4800u64; // 4 minutes

    let mut engine = Engine::new(path, 11);

    // Cross traffic keeps queueing noise on top of the baseline.
    let mix = InternetMix::calibrated(mu, 0.5, 0.1, 3.0);
    let arrivals = mix.generate(&mut StdRng::seed_from_u64(4), SimDuration::from_secs(250));
    engine.attach_cross_traffic(
        bottleneck,
        Direction::Outbound,
        arrivals.iter().map(|a| a.into_pair()),
    );

    // Two route changes: +20 ms one way at t = 80 s, back to nearly the
    // original at t = 160 s.
    engine.schedule_propagation_change(
        bottleneck,
        SimTime::from_secs(80),
        SimDuration::from_micros(49_750 + 20_000),
    );
    engine.schedule_propagation_change(
        bottleneck,
        SimTime::from_secs(160),
        SimDuration::from_micros(49_750 + 2_000),
    );

    for n in 0..count {
        engine.inject_probe(SimTime::from_millis(50 * n), 72, n);
    }
    engine.run();

    let mut records: Vec<RttRecord> = (0..count)
        .map(|n| RttRecord {
            seq: n,
            sent_at: n * 50_000_000,
            echoed_at: None,
            rtt: None,
        })
        .collect();
    for d in engine.probe_deliveries() {
        records[d.seq as usize].rtt = Some(d.rtt().as_nanos());
    }
    let series = RttSeries::new(delta, 72, SimDuration::ZERO, records);

    println!("probe series with two injected route changes (80 s and 160 s):\n");
    print!("{}", render_time_series(&series.rtt_or_zero_ms(), 110, 16));

    let changes = detect_route_changes(&series, 120, 8.0);
    println!("\ndetected {} route change(s):", changes.len());
    for c in &changes {
        println!(
            "  at probe {} (t = {:.0} s): baseline {:.1} ms -> {:.1} ms ({:+.1} ms)",
            c.at_index,
            c.at_index as f64 * 0.05,
            c.before_ms,
            c.after_ms,
            c.shift_ms()
        );
    }
    println!(
        "\ninjected truth: +40 ms RTT at t = 80 s, -36 ms RTT at t = 160 s\n\
         (propagation is one-way; probes cross the hop twice)"
    );
}
