//! Two-way traffic dynamics: ACK compression meets probe compression.
//!
//! The paper links its probe-compression phenomenon to the ACK compression
//! observed in simulations of two-way TCP traffic (refs [29], [18]): both
//! are small packets queuing behind bulk packets and draining back-to-back
//! at the bottleneck rate. This example runs closed-loop window transfers
//! in both directions, probes through them, and shows the two phenomena
//! side by side.
//!
//! ```sh
//! cargo run --release --example two_way
//! ```

use probenet::core::{render_phase_plot, PhasePlot};
use probenet::netdyn::{RttRecord, RttSeries};
use probenet::sim::{
    BufferLimit, Engine, FlowClass, LinkSpec, Path, SimDuration, SimTime, WindowFlow,
};

fn main() {
    let mu = 128_000u64;
    let path = Path::new(
        vec!["src".into(), "router".into(), "dst".into()],
        vec![
            LinkSpec::new(10_000_000, SimDuration::from_micros(100)),
            LinkSpec::new(mu, SimDuration::from_millis(30)).with_buffer(BufferLimit::Packets(40)),
        ],
    );
    let mut engine = Engine::new(path.clone(), 3);

    // A forward bulk transfer (data out, ACKs back) and a reverse one
    // (data back, ACKs out): classic two-way traffic.
    let fwd = engine.add_window_flow(WindowFlow::fixed(512, 40, 6, false), SimTime::ZERO);
    engine.add_window_flow(WindowFlow::fixed(512, 40, 6, true), SimTime::ZERO);

    // Probe through it at delta = 50 ms.
    let delta = SimDuration::from_millis(50);
    let count = 2400u64;
    for n in 0..count {
        engine.inject_probe(SimTime::from_millis(50 * n), 72, n);
    }
    engine.run_until(SimTime::from_secs(125));

    // --- ACK compression on the forward flow ---
    let ack_times: Vec<SimTime> = engine
        .deliveries()
        .iter()
        .filter(|d| d.class == FlowClass::Window && d.flow == fwd)
        .map(|d| d.delivered_at)
        .collect();
    let ack_service = SimDuration::transmission(40, mu);
    let data_service = SimDuration::transmission(512, mu);
    let compressed = ack_times
        .windows(2)
        .filter(|w| w[1] - w[0] <= ack_service * 2)
        .count();
    println!(
        "forward transfer: {} ACKs; {:.0}% arrived back-to-back (<= 2 ACK service times)\n\
         -> ACK compression: ACKs queued behind the reverse transfer's 512-B data\n",
        ack_times.len(),
        100.0 * compressed as f64 / (ack_times.len() - 1) as f64
    );

    // --- probe compression in the same run ---
    let mut records: Vec<RttRecord> = (0..count)
        .map(|n| RttRecord {
            seq: n,
            sent_at: n * 50_000_000,
            echoed_at: None,
            rtt: None,
        })
        .collect();
    for d in engine.probe_deliveries() {
        records[d.seq as usize].rtt = Some(d.rtt().as_nanos());
    }
    let series = RttSeries::new(delta, 72, SimDuration::ZERO, records);
    let plot = PhasePlot::from_series(&series);
    print!("{}", render_phase_plot(&plot, 72, 22));

    // Under a *saturating* closed-loop transfer probes rarely sit adjacent
    // in the bottleneck queue: the ack-clock slots one data packet between
    // them, so RTT differences quantize to
    //   (P + k·data)/mu − delta,  k = 0, 1, 2, …
    // The strongest sub-diagonal line is usually k = 1, one data service
    // time above the pure (k = 0) compression line.
    let p_service = SimDuration::transmission(72, mu).as_millis_f64();
    let delta_ms = 50.0;
    let diffs: Vec<f64> = plot.diffs();
    for k in 0..3 {
        let offset = p_service + k as f64 * data_service.as_millis_f64() - delta_ms;
        if offset >= 0.0 {
            break;
        }
        let on_line = diffs.iter().filter(|&&d| (d - offset).abs() < 1.0).count();
        println!(
            "probe pairs on y = x {:+.1} ms (k = {k} data packets between them): {on_line}",
            offset
        );
    }
    println!(
        "\nsame mechanism, two faces: probes and ACKs alike queue behind the\n\
         transfers' 512-B data and drain in lockstep with it — the paper's §4\n\
         probe compression is the ACK compression of two-way TCP traffic\n\
         (refs [29], [18]) seen through a measurement stream.\n\
         NOTE for estimator users: with saturating periodic cross traffic the\n\
         dominant line is k = 1, so the naive intercept inversion would\n\
         misread mu — the open-loop Internet mix of the paper's path does not\n\
         have this failure mode (k = 0 dominates there)."
    );
    println!(
        "probe stats: {} sent, {} delivered, data spacing at bottleneck {:.1} ms",
        count,
        series.received(),
        data_service.as_millis_f64()
    );
}
