//! The diurnal congestion cycle, seen through probe delays.
//!
//! Mukherjee's study (the paper's ref [19]) ran a spectral analysis of
//! average Internet delays and found "a clear diurnal cycle, suggesting the
//! presence of a base congestion level which changes slowly with time".
//! This example modulates the cross traffic with a compressed "day" (a
//! sinusoidal load factor), probes through it, and recovers the cycle from
//! the delay series with the periodogram.
//!
//! ```sh
//! cargo run --release --example diurnal
//! ```

use probenet::netdyn::{ExperimentConfig, SimExperiment};
use probenet::sim::{Direction, Path, SimDuration};
use probenet::stats::{dominant_frequency, hurst_aggregate_variance, Moments};
use probenet::traffic::{diurnal_factor, thin_with, InternetMix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A compressed day: the load swings between 25% and 85% of the
    // bottleneck with a 200-second period.
    let period = SimDuration::from_secs(200);
    let horizon = SimDuration::from_secs(600); // three "days"
    let path = Path::inria_umd_1992();
    let (bottleneck, spec) = path.bottleneck();

    let base = InternetMix::calibrated(spec.bandwidth_bps, 0.85, 0.1, 3.0);
    let mut rng = StdRng::seed_from_u64(21);
    let peak_load = base.generate(&mut rng, horizon);
    let modulated = thin_with(
        &peak_load,
        diurnal_factor(0.25 / 0.85, 1.0, period),
        &mut rng,
    );

    // Probe every 100 ms across the three cycles.
    let delta = SimDuration::from_millis(100);
    let config = ExperimentConfig::paper(delta)
        .with_count(6000)
        .with_clock(SimDuration::ZERO);
    let (series, _) = SimExperiment::new(config, path, 5)
        .with_cross_traffic(bottleneck, Direction::Outbound, modulated)
        .run();

    let rtts = series.rtt_or_zero_ms();
    // Average over 10-second windows (100 probes), as ref [19] averaged
    // probe groups, then look at the spectrum.
    let window = 100;
    let averages: Vec<f64> = rtts
        .chunks(window)
        .map(|c| {
            let delivered: Vec<f64> = c.iter().copied().filter(|&r| r > 0.0).collect();
            if delivered.is_empty() {
                0.0
            } else {
                delivered.iter().sum::<f64>() / delivered.len() as f64
            }
        })
        .collect();

    let m = Moments::from_slice(&averages);
    println!(
        "windowed mean RTT: min {:.0} ms, max {:.0} ms over {} windows",
        m.min(),
        m.max(),
        averages.len()
    );

    match dominant_frequency(&averages) {
        Some(f) => {
            // Frequency is in cycles per window (10 s each).
            let period_s = 10.0 / f;
            println!("dominant spectral component: period {period_s:.0} s (injected cycle: 200 s)");
        }
        None => println!("series too short for spectral analysis"),
    }

    if let Some(h) = hurst_aggregate_variance(&series.delivered_rtts_ms()) {
        println!(
            "aggregate-variance Hurst estimate of the raw delay series: {h:.2}\n\
             (slow modulation inflates long-time-scale variance, pushing H up;\n\
              the paper's own framing: 'the structure of the Internet load over\n\
              different time scales')"
        );
    }
}
