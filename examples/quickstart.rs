//! Quickstart: probe the paper's INRIA → University of Maryland path and
//! print the headline measurements.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use probenet::core::{analyze_losses, PaperScenario, PhasePlot};
use probenet::netdyn::ExperimentConfig;
use probenet::sim::SimDuration;

fn main() {
    // The calibrated July-1992 scenario: 10-hop path, 128 kb/s
    // transatlantic bottleneck, Telnet+FTP cross traffic.
    let scenario = PaperScenario::inria_umd(42);

    // One of the paper's settings: 32-byte probes every 50 ms, here for a
    // 60-second run (the paper probed for 10 minutes).
    let delta = SimDuration::from_millis(50);
    let config = ExperimentConfig::paper(delta).with_count(1200);
    println!(
        "probing: {} probes of {} wire bytes at delta = {delta}",
        config.count,
        config.wire_bytes()
    );

    let out = scenario.run(&config);
    let series = &out.series;

    println!(
        "\nsent {} | received {} | lost {}",
        series.len(),
        series.received(),
        series.lost()
    );
    println!(
        "min rtt {:.1} ms (the fixed component D + P/mu)",
        series.min_rtt_ms().expect("some probes returned")
    );
    let rtts = series.delivered_rtts_ms();
    let mean = rtts.iter().sum::<f64>() / rtts.len() as f64;
    println!("mean rtt {mean:.1} ms over delivered probes");

    // Phase-plot analysis: detect probe compression and estimate the
    // bottleneck bandwidth from the compression line's intercept.
    let plot = PhasePlot::from_series(series);
    match plot.bottleneck_estimate(10) {
        Some(est) => println!(
            "bottleneck estimate: {:.0} kb/s (clock bounds [{:.0}, {:.0}]), \
             {} compressed probe pairs",
            est.mu_bps / 1e3,
            est.mu_lo_bps / 1e3,
            est.mu_hi_bps / 1e3,
            est.compression_points
        ),
        None => println!("no probe compression observed"),
    }

    // Loss-process analysis: the paper's ulp / clp / plg triple.
    let loss = analyze_losses(series);
    println!(
        "loss: ulp {:.3}, clp {:?}, loss gap {:?} (Palm: {:?})",
        loss.ulp, loss.clp, loss.plg_measured, loss.plg_palm
    );
    println!(
        "losses look random (lag-1 chi^2, alpha = 0.01)? {}",
        loss.losses_look_random(0.01)
    );
}
