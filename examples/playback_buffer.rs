//! Playback-buffer sizing from the measured delay distribution.
//!
//! The paper's introduction motivates the whole study with emerging audio
//! and video applications: "the shape of the delay distribution is crucial
//! for the proper sizing of playback buffers". This example probes the
//! calibrated path at audio-like packet intervals and turns the measured
//! distribution into concrete buffer budgets, plus the constant+gamma fit
//! of the paper's ref [19].
//!
//! ```sh
//! cargo run --release --example playback_buffer
//! ```

use probenet::core::{analyze_delay_distribution, playback_buffer_ms, PaperScenario};
use probenet::netdyn::ExperimentConfig;
use probenet::sim::SimDuration;

fn main() {
    let delta = SimDuration::from_millis(50);
    let scenario = PaperScenario::inria_umd(31);
    let config = ExperimentConfig::paper(delta)
        .with_count(7200) // six minutes of audio
        .with_clock(SimDuration::ZERO);
    let out = scenario.run(&config);
    let series = &out.series;

    let a = analyze_delay_distribution(series).expect("delivered probes");
    println!(
        "delay distribution over {} packets: min {:.1} / median {:.1} / mean {:.1} / p95 {:.1} ms",
        a.samples, a.min_ms, a.median_ms, a.mean_ms, a.p95_ms
    );
    if let Some(fit) = &a.fit {
        println!(
            "constant+gamma fit (ref [19]'s model): shift {:.1} ms + gamma(shape {:.2}, scale {:.1} ms), KS {:.3}",
            fit.shift_ms, fit.shape, fit.scale_ms, fit.ks_distance
        );
    }

    println!("\nplayback buffer (delay budget above the minimum RTT) per late-loss budget:");
    println!(
        "{:>12} | {:>12} | {:>22}",
        "late budget", "buffer", "total added latency"
    );
    for budget in [0.20, 0.10, 0.05, 0.02, 0.01] {
        let b = playback_buffer_ms(series, budget).expect("data");
        println!(
            "{:>11.0}% | {:>9.0} ms | {:>19.0} ms",
            budget * 100.0,
            b,
            a.min_ms + b
        );
    }

    // Network losses come on top of late losses; recovery handles those
    // (see examples/audio_fec.rs).
    println!(
        "\nnetwork loss on this run: {:.1}% (recoverable open-loop; see audio_fec)",
        series.loss_probability() * 100.0
    );
    println!(
        "reading: the long congestion tail makes the last percent of\n\
         punctuality expensive — the paper's point that the distribution's\n\
         *shape*, not just its mean, drives interactive application design."
    );
}
