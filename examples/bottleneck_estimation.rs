//! Bottleneck-bandwidth estimation across the paper's δ sweep.
//!
//! For each probe interval, runs the calibrated INRIA–UMd experiment,
//! builds the phase plot, and — where probe compression occurs — inverts
//! the compression line into a bandwidth estimate. Shows how the estimate
//! degrades as δ grows (less compression) and how clock resolution bounds
//! the reading. Ground truth is the configured 128 kb/s transatlantic link.
//!
//! ```sh
//! cargo run --release --example bottleneck_estimation
//! ```

use probenet::core::{PaperScenario, PhasePlot};
use probenet::netdyn::{paper_intervals, ExperimentConfig};
use probenet::sim::SimDuration;

fn main() {
    let span = SimDuration::from_secs(120);
    println!("ground truth: 128 kb/s bottleneck | span {span} per experiment\n");
    println!(
        "{:>9} | {:>8} | {:>12} | {:>22} | {:>6}",
        "delta", "clock", "mu estimate", "clock bounds (kb/s)", "pairs"
    );

    for clock_label in ["ideal", "DECstation 3.906 ms"] {
        println!("--- {clock_label} clock ---");
        for delta in paper_intervals() {
            let scenario = PaperScenario::inria_umd(7);
            let count = (span.as_nanos() / delta.as_nanos()) as usize;
            let mut config = ExperimentConfig::paper(delta).with_count(count);
            if clock_label == "ideal" {
                config = config.with_clock(SimDuration::ZERO);
            }
            let out = scenario.run(&config);
            let plot = PhasePlot::from_series(&out.series);
            match plot.bottleneck_estimate(10) {
                Some(est) => println!(
                    "{:>7.0}ms | {:>8} | {:>9.1} kb/s | [{:>8.1}, {:>8.1}] | {:>6}",
                    delta.as_millis_f64(),
                    clock_label.split_whitespace().next().expect("label"),
                    est.mu_bps / 1e3,
                    est.mu_lo_bps / 1e3,
                    est.mu_hi_bps / 1e3,
                    est.compression_points,
                ),
                None => println!(
                    "{:>7.0}ms | {:>8} | {:>12} | {:>22} | {:>6}",
                    delta.as_millis_f64(),
                    clock_label.split_whitespace().next().expect("label"),
                    "no line",
                    "-",
                    "-"
                ),
            }
        }
    }

    println!(
        "\nreading: compression requires the probe+cross load to keep the\n\
         bottleneck buffer busy across probes; at large delta consecutive\n\
         probes rarely queue behind one another (the paper's Figure 4) and\n\
         no line exists to invert. The DECstation clock quantizes the\n\
         intercept, which the bounds make explicit."
    );
}
