//! Route discovery over the simulated paths — the paper's Tables 1 and 2.
//!
//! Sends probes with increasing TTL; routers answer expired probes with
//! time-exceeded messages, identifying themselves hop by hop, exactly as
//! `traceroute` does on the real Internet.
//!
//! ```sh
//! cargo run --release --example traceroute
//! ```

use probenet::sim::{discover_route, Path, SimDuration};

fn print_route(title: &str, path: &Path) {
    println!("{title}");
    let route = discover_route(path, SimDuration::from_millis(500));
    let (bidx, bspec) = path.bottleneck();
    for (i, name) in route.iter().enumerate() {
        let marker = if i == bidx {
            format!("   <-- bottleneck ({} kb/s)", bspec.bandwidth_bps / 1000)
        } else {
            String::new()
        };
        println!("{:>3}  {name}{marker}", i + 1);
    }
    println!(
        "base rtt of a 72-byte probe: {:.1} ms\n",
        path.base_rtt(72).as_millis_f64()
    );
}

fn main() {
    print_route(
        "traceroute to avwhub-gw.umd.edu (Table 1, July 1992):",
        &Path::inria_umd_1992(),
    );
    print_route(
        "traceroute to hub-eh.gw.pitt.edu (Table 2, May 1993):",
        &Path::umd_pitt_1993(),
    );
}
