//! Audio over the measured Internet: is open-loop recovery enough?
//!
//! The paper's §5 argues that because the probe loss gap stays near 1,
//! audio applications (which send packets at regular intervals, 22.5 ms to
//! 125 ms apart) can recover losses open-loop: with FEC, or by simply
//! repeating the previous packet. This example plays an "audio stream"
//! through the calibrated path at typical audio packetization intervals
//! and quantifies both schemes.
//!
//! ```sh
//! cargo run --release --example audio_fec
//! ```

use probenet::core::{
    analyze_losses, fec_overhead, fec_recovery, repetition_recovery, PaperScenario,
};
use probenet::netdyn::ExperimentConfig;
use probenet::sim::SimDuration;

fn main() {
    let span = SimDuration::from_secs(180);
    // Audio packetization intervals from the paper's §5: 22.5 ms (NeVoT)
    // to 125 ms; 64 kb/s PCM in 180-byte packets ≈ 22.5 ms.
    let intervals_ms = [22u64, 50, 125];

    println!("audio packet streams over the INRIA-UMd path ({span} each)\n");
    for delta_ms in intervals_ms {
        let scenario = PaperScenario::inria_umd(11);
        let delta = SimDuration::from_millis(delta_ms);
        let count = (span.as_nanos() / delta.as_nanos()) as usize;
        let config = ExperimentConfig::paper(delta).with_count(count);
        let out = scenario.run(&config);
        let loss_flags = out.series.loss_flags();
        let loss = analyze_losses(&out.series);

        println!(
            "packet interval {delta_ms} ms: loss rate {:.1}%, loss gap {:.2}",
            loss.ulp * 100.0,
            loss.plg_measured.unwrap_or(1.0),
        );

        // Repetition: replay the previous packet (zero overhead).
        let rep = repetition_recovery(&loss_flags);
        println!(
            "  repetition      : residual loss {:.2}% (recovered {}/{}), overhead 0%",
            rep.residual_loss_rate * 100.0,
            rep.recovered,
            rep.lost
        );

        // FEC(4, 1): one parity packet per 4 media packets (ref [23]).
        for (data, parity) in [(4usize, 1usize), (8, 2)] {
            let fec = fec_recovery(&loss_flags, data, parity);
            println!(
                "  FEC({data},{parity})        : residual loss {:.2}% (recovered {}/{}), overhead {:.0}%",
                fec.residual_loss_rate * 100.0,
                fec.recovered,
                fec.lost,
                fec_overhead(data, parity) * 100.0
            );
        }
        println!();
    }

    println!(
        "reading: with the measured loss gap near 1 (losses essentially\n\
         random), both schemes eliminate most audio gaps, exactly the\n\
         paper's conclusion; burstier losses (small delta) favor longer\n\
         FEC blocks."
    );
}
