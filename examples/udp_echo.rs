//! Real networking: the NetDyn probe tool over actual UDP sockets.
//!
//! Spawns the echo server on loopback, runs a probing experiment against
//! it, and analyzes the result with the same pipeline used on simulated
//! data. Pass an address to probe a remote echo server instead, or
//! `--serve <addr>` to run only the echo side on a real host:
//!
//! ```sh
//! cargo run --release --example udp_echo                     # loopback demo
//! cargo run --release --example udp_echo -- --serve 0.0.0.0:9900   # echo host
//! cargo run --release --example udp_echo -- 192.0.2.1:9900   # probe a host
//! ```

use std::time::Duration;

use probenet::core::analyze_loss_flags;
use probenet::netdyn::{run_probes, EchoServer, ExperimentConfig};
use probenet::sim::SimDuration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("--serve") {
        let addr = args.get(1).map(String::as_str).unwrap_or("0.0.0.0:9900");
        let server = EchoServer::spawn(addr).expect("bind echo server");
        println!("echo server listening on {}", server.local_addr());
        println!("press Ctrl-C to stop");
        loop {
            std::thread::sleep(Duration::from_secs(5));
            let s = server.stats();
            println!(
                "echoed {} | dropped {} | decode errors {}",
                s.echoed, s.dropped, s.decode_errors
            );
        }
    }

    // Default: loopback demo with fault injection so losses are visible.
    let (server, target) = match args.first() {
        Some(addr) => (None, addr.parse().expect("server address")),
        None => {
            let server =
                EchoServer::spawn_with_loss("127.0.0.1:0", 0.10, 3).expect("bind echo server");
            println!(
                "spawned loopback echo server on {} with 10% fault injection",
                server.local_addr()
            );
            let addr = server.local_addr();
            (Some(server), addr)
        }
    };

    // 500 probes of 32 bytes, 20 ms apart — one of the paper's settings,
    // compressed into a 10-second run.
    let config = ExperimentConfig::quick(SimDuration::from_millis(20), 500);
    println!(
        "sending {} probes to {target} at {} intervals...",
        config.count, config.interval
    );
    let (series, stats) =
        run_probes(target, &config, Duration::from_millis(500)).expect("probe run");

    println!(
        "\nsent {} | received {} | lost {} | duplicates {}",
        series.len(),
        series.received(),
        series.lost(),
        stats.duplicates
    );
    if let Some(min) = series.min_rtt_ms() {
        let rtts = series.delivered_rtts_ms();
        let mean = rtts.iter().sum::<f64>() / rtts.len() as f64;
        let max = rtts.iter().copied().fold(0.0f64, f64::max);
        println!("rtt: min {min:.3} ms | mean {mean:.3} ms | max {max:.3} ms");
    }
    let loss = analyze_loss_flags(&series.loss_flags());
    println!(
        "loss: ulp {:.3}, clp {:?}, gap {:?}, random? {}",
        loss.ulp,
        loss.clp,
        loss.plg_measured,
        loss.losses_look_random(0.01)
    );
    drop(server);
}
