//! Experiment configuration.

use probenet_sim::SimDuration;

/// UDP + IP + link-level overhead added to the probe payload on the wire.
/// With the 32-byte payload this gives the 72-byte `P` the paper's
/// equation-(6) arithmetic uses (it evaluates `P = 72 × 8` bits).
pub const WIRE_OVERHEAD_BYTES: u32 = 40;

/// The paper's probe payload: 32 bytes (§2).
pub const PROBE_PAYLOAD_BYTES: u32 = 32;

/// Clock resolution of the DECstation 5000 source host at INRIA:
/// 3.906 ms ≈ 1/256 s (§2).
pub const DECSTATION_CLOCK: SimDuration = SimDuration::from_nanos(3_906_250);

/// Clock resolution of the source host at UMd in the May 1993 experiments:
/// 3 ms (§4, discussion of Figure 6).
pub const UMD_CLOCK: SimDuration = SimDuration::from_millis(3);

/// The probe intervals δ the paper sweeps (§2): 8, 20, 50, 100, 200, 500 ms.
pub fn paper_intervals() -> Vec<SimDuration> {
    [8u64, 20, 50, 100, 200, 500]
        .iter()
        .map(|&ms| SimDuration::from_millis(ms))
        .collect()
}

/// Configuration of one probing experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Probe payload size in bytes.
    pub payload_bytes: u32,
    /// Extra wire bytes per probe (headers + framing).
    pub overhead_bytes: u32,
    /// Interval δ between successive probes.
    pub interval: SimDuration,
    /// Number of probes to send.
    pub count: usize,
    /// Measurement clock resolution; `SimDuration::ZERO` means a perfect
    /// clock (timestamps are not quantized).
    pub clock_resolution: SimDuration,
    /// Frequency error of the measuring host's clock in parts per billion:
    /// an instant `t` of true time reads as `t + t·ppb/10⁹` before
    /// quantization. Both probe timestamps come from the same (source)
    /// clock, so drift rescales measured RTTs rather than offsetting them.
    /// 0 means a perfectly disciplined clock.
    pub clock_drift_ppb: i64,
}

impl ExperimentConfig {
    /// The paper's configuration for a given δ: 32-byte probes for 10
    /// minutes (§2), measured with the DECstation clock.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn paper(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "probe interval must be positive");
        let experiment = SimDuration::from_secs(600); // 10 minutes
        let count = (experiment.as_nanos() / interval.as_nanos()) as usize;
        ExperimentConfig {
            payload_bytes: PROBE_PAYLOAD_BYTES,
            overhead_bytes: WIRE_OVERHEAD_BYTES,
            interval,
            count,
            clock_resolution: DECSTATION_CLOCK,
            clock_drift_ppb: 0,
        }
    }

    /// A short configuration for tests and examples: `count` probes at
    /// `interval`, perfect clock.
    pub fn quick(interval: SimDuration, count: usize) -> Self {
        ExperimentConfig {
            payload_bytes: PROBE_PAYLOAD_BYTES,
            overhead_bytes: WIRE_OVERHEAD_BYTES,
            interval,
            count,
            clock_resolution: SimDuration::ZERO,
            clock_drift_ppb: 0,
        }
    }

    /// Replace the clock resolution.
    pub fn with_clock(mut self, resolution: SimDuration) -> Self {
        self.clock_resolution = resolution;
        self
    }

    /// Replace the probe count.
    pub fn with_count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Replace the clock's frequency error (parts per billion; may be
    /// negative for a slow clock).
    pub fn with_drift(mut self, ppb: i64) -> Self {
        self.clock_drift_ppb = ppb;
        self
    }

    /// Total probe size on the wire.
    pub fn wire_bytes(&self) -> u32 {
        self.payload_bytes + self.overhead_bytes
    }

    /// Wall-clock span of the send schedule.
    pub fn span(&self) -> SimDuration {
        self.interval.saturating_mul(self.count as u64)
    }

    /// Fraction of a bottleneck of `mu_bps` the probe stream consumes —
    /// the quantity the paper's loss analysis conditions on ("unless the
    /// probe traffic uses a large fraction of the available bandwidth").
    pub fn probe_utilization(&self, mu_bps: u64) -> f64 {
        (self.wire_bytes() as f64 * 8.0) / (self.interval.as_secs_f64() * mu_bps as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section2() {
        let c = ExperimentConfig::paper(SimDuration::from_millis(50));
        assert_eq!(c.payload_bytes, 32);
        assert_eq!(c.wire_bytes(), 72);
        assert_eq!(c.count, 12_000); // 600 s / 50 ms
        assert_eq!(c.clock_resolution, DECSTATION_CLOCK);
        assert_eq!(c.span(), SimDuration::from_secs(600));
    }

    #[test]
    fn paper_interval_sweep() {
        let ds = paper_intervals();
        assert_eq!(ds.len(), 6);
        assert_eq!(ds[0], SimDuration::from_millis(8));
        assert_eq!(ds[5], SimDuration::from_millis(500));
    }

    #[test]
    fn decstation_clock_is_1_over_256_s() {
        assert_eq!(DECSTATION_CLOCK.as_nanos() * 256, 1_000_000_000);
    }

    #[test]
    fn probe_utilization_math() {
        // 72 B every 8 ms at 128 kb/s: 72*8/0.008 = 72 kb/s -> 56.25%.
        let c = ExperimentConfig::paper(SimDuration::from_millis(8));
        let u = c.probe_utilization(128_000);
        assert!((u - 0.5625).abs() < 1e-12, "utilization {u}");
        // At δ = 500 ms it is below 1%.
        let c = ExperimentConfig::paper(SimDuration::from_millis(500));
        assert!(c.probe_utilization(128_000) < 0.01);
    }

    #[test]
    fn builders() {
        let c = ExperimentConfig::quick(SimDuration::from_millis(10), 100)
            .with_clock(UMD_CLOCK)
            .with_count(50);
        assert_eq!(c.count, 50);
        assert_eq!(c.clock_resolution, UMD_CLOCK);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interval_panics() {
        ExperimentConfig::paper(SimDuration::ZERO);
    }
}
