//! Plain-text CSV interchange for RTT series.
//!
//! The original NetDyn workflow wrote measurement logs to flat files for
//! offline analysis; this module provides the same capability so series can
//! move between probenet and external tools (gnuplot, R, spreadsheets)
//! without a serde dependency on the consumer side.
//!
//! Format (header + one row per probe; empty fields for lost probes):
//!
//! ```text
//! seq,sent_at_ns,echoed_at_ns,rtt_ns
//! 0,0,71214771,142429542
//! 1,50000000,,
//! ```

use std::fmt::Write as _;

use probenet_sim::SimDuration;

use crate::series::{RttRecord, RttSeries};

/// Errors raised when parsing a CSV series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The header line is missing or wrong.
    BadHeader,
    /// A data row has the wrong number of fields.
    BadRow {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse as an integer.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: &'static str,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader => write!(f, "missing or invalid CSV header"),
            CsvError::BadRow { line } => write!(f, "line {line}: wrong field count"),
            CsvError::BadField { line, column } => {
                write!(f, "line {line}: invalid {column}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

const HEADER: &str = "seq,sent_at_ns,echoed_at_ns,rtt_ns";

/// Serialize a series to CSV. Metadata (interval, wire size, clock) rides
/// in `#`-prefixed comment lines so the file is self-describing.
pub fn to_csv(series: &RttSeries) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# interval_ns={}", series.interval_ns);
    let _ = writeln!(out, "# wire_bytes={}", series.wire_bytes);
    let _ = writeln!(out, "# clock_resolution_ns={}", series.clock_resolution_ns);
    out.push_str(HEADER);
    out.push('\n');
    for r in &series.records {
        let _ = write!(out, "{},{},", r.seq, r.sent_at);
        if let Some(e) = r.echoed_at {
            let _ = write!(out, "{e}");
        }
        out.push(',');
        if let Some(rtt) = r.rtt {
            let _ = write!(out, "{rtt}");
        }
        out.push('\n');
    }
    out
}

/// Parse a series from CSV produced by [`to_csv`] (or hand-written in the
/// same format; metadata comments are optional and default to zero).
pub fn from_csv(text: &str) -> Result<RttSeries, CsvError> {
    let mut interval_ns = 0u64;
    let mut wire_bytes = 0u32;
    let mut clock_ns = 0u64;
    let mut records = Vec::new();
    let mut saw_header = false;
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix('#') {
            let meta = meta.trim();
            if let Some(v) = meta.strip_prefix("interval_ns=") {
                interval_ns = v.parse().map_err(|_| CsvError::BadField {
                    line: line_no,
                    column: "interval_ns",
                })?;
            } else if let Some(v) = meta.strip_prefix("wire_bytes=") {
                wire_bytes = v.parse().map_err(|_| CsvError::BadField {
                    line: line_no,
                    column: "wire_bytes",
                })?;
            } else if let Some(v) = meta.strip_prefix("clock_resolution_ns=") {
                clock_ns = v.parse().map_err(|_| CsvError::BadField {
                    line: line_no,
                    column: "clock_resolution_ns",
                })?;
            }
            continue;
        }
        if !saw_header {
            if line != HEADER {
                return Err(CsvError::BadHeader);
            }
            saw_header = true;
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(CsvError::BadRow { line: line_no });
        }
        let seq = fields[0].parse().map_err(|_| CsvError::BadField {
            line: line_no,
            column: "seq",
        })?;
        let sent_at = fields[1].parse().map_err(|_| CsvError::BadField {
            line: line_no,
            column: "sent_at_ns",
        })?;
        let echoed_at = if fields[2].is_empty() {
            None
        } else {
            Some(fields[2].parse().map_err(|_| CsvError::BadField {
                line: line_no,
                column: "echoed_at_ns",
            })?)
        };
        let rtt = if fields[3].is_empty() {
            None
        } else {
            Some(fields[3].parse().map_err(|_| CsvError::BadField {
                line: line_no,
                column: "rtt_ns",
            })?)
        };
        records.push(RttRecord {
            seq,
            sent_at,
            echoed_at,
            rtt,
        });
    }
    if !saw_header {
        return Err(CsvError::BadHeader);
    }
    Ok(RttSeries::new(
        SimDuration::from_nanos(interval_ns),
        wire_bytes,
        SimDuration::from_nanos(clock_ns),
        records,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RttSeries {
        RttSeries::new(
            SimDuration::from_millis(50),
            72,
            SimDuration::from_nanos(3_906_250),
            vec![
                RttRecord {
                    seq: 0,
                    sent_at: 0,
                    echoed_at: Some(71_000_000),
                    rtt: Some(142_000_000),
                },
                RttRecord {
                    seq: 1,
                    sent_at: 50_000_000,
                    echoed_at: None,
                    rtt: None,
                },
            ],
        )
    }

    #[test]
    fn round_trip() {
        let s = sample();
        let csv = to_csv(&s);
        let back = from_csv(&csv).expect("parse");
        assert_eq!(back.records, s.records);
        assert_eq!(back.interval_ns, s.interval_ns);
        assert_eq!(back.wire_bytes, s.wire_bytes);
        assert_eq!(back.clock_resolution_ns, s.clock_resolution_ns);
    }

    #[test]
    fn lost_probe_has_empty_fields() {
        let csv = to_csv(&sample());
        let lost_row = csv.lines().last().expect("rows");
        assert_eq!(lost_row, "1,50000000,,");
    }

    #[test]
    fn header_is_mandatory() {
        assert_eq!(from_csv("1,2,3,4\n").unwrap_err(), CsvError::BadHeader);
        assert_eq!(from_csv("").unwrap_err(), CsvError::BadHeader);
    }

    #[test]
    fn bad_rows_are_located() {
        let text = format!("{HEADER}\n0,0,,\n1,2,3\n");
        assert_eq!(from_csv(&text).unwrap_err(), CsvError::BadRow { line: 3 });
        let text = format!("{HEADER}\nx,0,,\n");
        assert!(matches!(
            from_csv(&text),
            Err(CsvError::BadField {
                line: 2,
                column: "seq"
            })
        ));
    }

    #[test]
    fn metadata_is_optional() {
        let text = format!("{HEADER}\n0,0,,150000000\n");
        let s = from_csv(&text).expect("parse");
        assert_eq!(s.interval_ns, 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.received(), 1);
    }

    #[test]
    fn blank_lines_and_unknown_comments_are_ignored() {
        let text = format!("# made by hand\n\n{HEADER}\n\n0,0,,150000000\n");
        let s = from_csv(&text).expect("parse");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn error_display() {
        assert!(CsvError::BadHeader.to_string().contains("header"));
        assert!(CsvError::BadRow { line: 7 }.to_string().contains('7'));
    }
}
