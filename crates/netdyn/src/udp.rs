//! The real-network probe tool: a UDP echo server and a probing client
//! over `std::net` sockets.
//!
//! This is a working NetDyn clone (§2 of the paper): the client sends
//! 32-byte probe packets at a fixed interval, the echo host stamps and
//! returns them, and the client assembles the [`RttSeries`]. The paper
//! routed probes source → echo → destination with source == destination;
//! with a single client socket both roles coincide exactly as in the
//! paper's setup.
//!
//! The server offers Bernoulli **drop fault injection** so loss handling
//! can be exercised deterministically on loopback, in the spirit of the
//! fault-injection options small network stacks ship in their examples.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use probenet_live::{LiveConfig, Reactor, SessionSpec};
use probenet_sim::SimDuration;
use probenet_stream::SessionKey;
use probenet_wire::{ProbePacket, Timestamp48, PROBE_PAYLOAD_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rawpoll::{Epoll, Events, Interest, WakeHandle, WakePipe};
use std::sync::Mutex;

use crate::config::ExperimentConfig;
use crate::series::{RttRecord, RttSeries};

/// How a server thread sleeps between datagrams: event-driven where the
/// platform has epoll, a bounded read-timeout poll elsewhere.
///
/// The event-driven arm is what makes shutdown cheap *and* prompt: the
/// socket and a self-pipe share one epoll set, the thread blocks with no
/// timeout at all, and [`ServerWaiter::wake`] (one byte down the pipe)
/// bounds the join by a loop iteration instead of a 20 ms spin period.
enum ServerWaiter {
    /// Block on epoll until the socket is readable or the pipe is written.
    Event { epoll: Epoll, pipe: WakePipe },
    /// Legacy fallback: non-epoll platforms poll with a read timeout.
    Timeout,
}

impl ServerWaiter {
    /// Prepare `socket` for serving: epoll registration + non-blocking
    /// mode where available, a 20 ms read timeout otherwise.
    fn install(socket: &UdpSocket) -> io::Result<ServerWaiter> {
        match Epoll::new() {
            Ok(epoll) => {
                let pipe = WakePipe::new()?;
                socket.set_nonblocking(true)?;
                epoll.add(socket.as_raw_fd(), 0, Interest::READ)?;
                epoll.add(pipe.read_fd(), 1, Interest::READ)?;
                Ok(ServerWaiter::Event { epoll, pipe })
            }
            Err(e) if e.kind() == io::ErrorKind::Unsupported => {
                socket.set_read_timeout(Some(Duration::from_millis(20)))?;
                Ok(ServerWaiter::Timeout)
            }
            Err(e) => Err(e),
        }
    }

    /// The cross-thread wake handle (None in timeout mode, where the read
    /// timeout itself bounds the wait).
    fn wake_handle(&self) -> Option<WakeHandle> {
        match self {
            ServerWaiter::Event { pipe, .. } => Some(pipe.handle()),
            ServerWaiter::Timeout => None,
        }
    }

    /// Park until the socket may be readable (or a wake arrives). Returns
    /// `false` when the server loop should exit.
    fn park(&self, events: &mut Events) -> bool {
        match self {
            ServerWaiter::Event { epoll, pipe } => {
                let ok = epoll.wait(events, -1).is_ok();
                pipe.drain();
                ok
            }
            // Timeout mode parks inside recv_from itself.
            ServerWaiter::Timeout => true,
        }
    }

    /// Whether `recv` just returned "nothing yet" (and the caller should
    /// park) rather than a real failure.
    fn is_idle(err: &io::Error) -> bool {
        matches!(
            err.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    }
}

/// Fan-out of a server shutdown: flip the flag, then poke the self-pipe so
/// an event-driven loop notices immediately.
fn signal_shutdown(flag: &AtomicBool, wake: Option<&WakeHandle>) {
    flag.store(true, Ordering::SeqCst);
    if let Some(w) = wake {
        w.wake();
    }
}

/// Microseconds since an arbitrary process-local epoch, monotonic.
fn monotonic_micros(epoch: Instant) -> Timestamp48 {
    Timestamp48::from_micros(epoch.elapsed().as_micros() as u64)
}

/// Counters published by a running echo server.
#[derive(Debug, Default, Clone)]
pub struct EchoServerStats {
    /// Probes received and echoed.
    pub echoed: u64,
    /// Probes deliberately dropped by fault injection.
    pub dropped: u64,
    /// Datagrams that failed to decode as probe packets.
    pub decode_errors: u64,
}

/// A UDP echo host: stamps `echo_ts` into each valid probe and returns it
/// to the sender. Runs on its own thread until dropped or shut down.
#[derive(Debug)]
pub struct EchoServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    wake: Option<WakeHandle>,
    stats: Arc<Mutex<EchoServerStats>>,
    handle: Option<JoinHandle<()>>,
}

impl EchoServer {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"`) and start echoing.
    pub fn spawn<A: ToSocketAddrs>(addr: A) -> io::Result<EchoServer> {
        Self::spawn_with_loss(addr, 0.0, 0)
    }

    /// Bind and **forward** stamped probes to a fixed destination instead
    /// of reflecting them to the sender — the paper's actual three-host
    /// topology (§2): "sends UDP packets at regular intervals from a source
    /// host to a destination host via an intermediate host". Use
    /// [`DestinationCollector`] on the destination side.
    pub fn spawn_forwarding<A: ToSocketAddrs>(
        addr: A,
        destination: SocketAddr,
    ) -> io::Result<EchoServer> {
        Self::spawn_inner(addr, 0.0, 0, Some(destination))
    }

    /// As [`EchoServer::spawn`], dropping each probe independently with
    /// probability `drop_probability` (deterministic per `seed`) — fault
    /// injection for testing loss behaviour on a lossless loopback.
    ///
    /// # Panics
    /// Panics unless `0.0 <= drop_probability <= 1.0`.
    pub fn spawn_with_loss<A: ToSocketAddrs>(
        addr: A,
        drop_probability: f64,
        seed: u64,
    ) -> io::Result<EchoServer> {
        Self::spawn_inner(addr, drop_probability, seed, None)
    }

    fn spawn_inner<A: ToSocketAddrs>(
        addr: A,
        drop_probability: f64,
        seed: u64,
        forward_to: Option<SocketAddr>,
    ) -> io::Result<EchoServer> {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "drop probability out of range"
        );
        let socket = UdpSocket::bind(addr)?;
        let waiter = ServerWaiter::install(&socket)?;
        let wake = waiter.wake_handle();
        let local_addr = socket.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(Mutex::new(EchoServerStats::default()));
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                echo_loop(
                    socket,
                    waiter,
                    shutdown,
                    stats,
                    drop_probability,
                    seed,
                    forward_to,
                );
            })
        };
        Ok(EchoServer {
            local_addr,
            shutdown,
            wake,
            stats,
            handle: Some(handle),
        })
    }

    /// The bound address (with the kernel-chosen port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> EchoServerStats {
        self.stats.lock().expect("lock poisoned").clone()
    }

    /// Stop the server thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        signal_shutdown(&self.shutdown, self.wake.as_ref());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for EchoServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn echo_loop(
    socket: UdpSocket,
    waiter: ServerWaiter,
    shutdown: Arc<AtomicBool>,
    stats: Arc<Mutex<EchoServerStats>>,
    drop_probability: f64,
    seed: u64,
    forward_to: Option<SocketAddr>,
) {
    let epoch = Instant::now(); // probenet-lint: allow(wall-clock-in-sim, tainted-artifact-path) real probe epoch for echo timestamps
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = [0u8; 2048];
    let mut events = Events::with_capacity(4);
    while !shutdown.load(Ordering::SeqCst) {
        let (len, peer) = match socket.recv_from(&mut buf) {
            Ok(x) => x,
            Err(e) if ServerWaiter::is_idle(&e) => {
                if waiter.park(&mut events) {
                    continue;
                }
                break;
            }
            Err(_) => break,
        };
        match ProbePacket::decode(&buf[..len]) {
            Ok(mut probe) => {
                if drop_probability > 0.0 && rng.gen::<f64>() < drop_probability {
                    stats.lock().expect("lock poisoned").dropped += 1;
                    continue;
                }
                probe.echo_ts = monotonic_micros(epoch);
                let out = probe.to_bytes();
                let target = forward_to.unwrap_or(peer);
                if socket.send_to(&out, target).is_ok() {
                    stats.lock().expect("lock poisoned").echoed += 1;
                }
            }
            Err(_) => {
                stats.lock().expect("lock poisoned").decode_errors += 1;
            }
        }
    }
}

/// The destination host of the paper's three-host topology: listens for
/// probes forwarded by an [`EchoServer`] in forwarding mode, stamps
/// `dest_ts` on arrival, and collects the packets for retrieval.
///
/// Note the paper's caveat (§2): with three *distinct* hosts the timestamps
/// mix clocks, so only same-clock differences are meaningful — which is why
/// the paper (and [`run_probes`]) collapse source and destination onto one
/// host. The collector exists to realize the full topology and to measure
/// echo→destination one-way delays on hosts that *are* synchronized.
#[derive(Debug)]
pub struct DestinationCollector {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    wake: Option<WakeHandle>,
    received: Arc<Mutex<Vec<ProbePacket>>>,
    handle: Option<JoinHandle<()>>,
}

impl DestinationCollector {
    /// Bind to `addr` and start collecting.
    pub fn spawn<A: ToSocketAddrs>(addr: A) -> io::Result<DestinationCollector> {
        let socket = UdpSocket::bind(addr)?;
        let waiter = ServerWaiter::install(&socket)?;
        let wake = waiter.wake_handle();
        let local_addr = socket.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let received = Arc::new(Mutex::new(Vec::new()));
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            let received = Arc::clone(&received);
            std::thread::spawn(move || {
                let epoch = Instant::now(); // probenet-lint: allow(wall-clock-in-sim, tainted-artifact-path) real probe epoch for dest timestamps
                let mut buf = [0u8; 2048];
                let mut events = Events::with_capacity(4);
                while !shutdown.load(Ordering::SeqCst) {
                    let len = match socket.recv(&mut buf) {
                        Ok(l) => l,
                        Err(e) if ServerWaiter::is_idle(&e) => {
                            if waiter.park(&mut events) {
                                continue;
                            }
                            break;
                        }
                        Err(_) => break,
                    };
                    if let Ok(mut probe) = ProbePacket::decode(&buf[..len]) {
                        probe.dest_ts = monotonic_micros(epoch);
                        received.lock().expect("lock poisoned").push(probe);
                    }
                }
            })
        };
        Ok(DestinationCollector {
            local_addr,
            shutdown,
            wake,
            received,
            handle: Some(handle),
        })
    }

    /// The bound address to hand to [`EchoServer::spawn_forwarding`].
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Probes collected so far (stamped with the destination clock).
    pub fn received(&self) -> Vec<ProbePacket> {
        self.received.lock().expect("lock poisoned").clone()
    }

    /// Stop the collector and return everything it received.
    pub fn shutdown(mut self) -> Vec<ProbePacket> {
        signal_shutdown(&self.shutdown, self.wake.as_ref());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        std::mem::take(&mut *self.received.lock().expect("lock poisoned"))
    }
}

impl Drop for DestinationCollector {
    fn drop(&mut self) {
        signal_shutdown(&self.shutdown, self.wake.as_ref());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Fire-and-forget sender for the three-host topology: sends `count`
/// probes at `interval` toward the echo host and returns the number sent
/// (delivery is observed at the [`DestinationCollector`]).
pub fn send_probes_via(echo: SocketAddr, count: usize, interval: Duration) -> io::Result<usize> {
    let socket = UdpSocket::bind(("0.0.0.0", 0))?;
    socket.connect(echo)?;
    let epoch = Instant::now(); // probenet-lint: allow(wall-clock-in-sim) real probe epoch for send timestamps
    let start = Instant::now(); // probenet-lint: allow(wall-clock-in-sim) real pacing clock
    let mut sent = 0;
    for n in 0..count {
        let target = start + interval * n as u32;
        let now = Instant::now(); // probenet-lint: allow(wall-clock-in-sim) real pacing clock
        if target > now {
            std::thread::sleep(target - now);
        }
        let probe = ProbePacket::outgoing(n as u32, monotonic_micros(epoch));
        if socket.send(&probe.to_bytes()).is_ok() {
            sent += 1;
        }
    }
    Ok(sent)
}

/// Outcome of a real probing run beyond the series itself.
#[derive(Debug, Clone, Default)]
pub struct ProbeRunStats {
    /// Replies that arrived after a probe with the same sequence number had
    /// already been recorded.
    pub duplicates: u64,
    /// Replies whose payload failed to decode.
    pub decode_errors: u64,
}

/// Send `config.count` probes of `config.payload_bytes` to `server` at
/// `config.interval`, then linger `drain` waiting for stragglers; returns
/// the measured series (lost probes have `rtt = None`) and run statistics.
///
/// The measured RTT is `dest_ts − source_ts` from the packet's own
/// timestamp fields, exactly as NetDyn computes it, then quantized to
/// `config.clock_resolution`.
pub fn run_probes(
    server: SocketAddr,
    config: &ExperimentConfig,
    drain: Duration,
) -> io::Result<(RttSeries, ProbeRunStats)> {
    run_probes_with_sink(server, config, drain, |_| {})
}

/// [`run_probes`], additionally feeding every finished record to `sink` in
/// sequence order, losses included — the real-UDP tap for streaming ingest
/// (`probenet-stream`).
///
/// The sink fires after the drain window closes, not per datagram: a probe
/// is only *known lost* once the run stops waiting for stragglers, and the
/// streaming estimators consume loss outcomes in sequence order. The sink
/// sees exactly the records of the returned series, so a streaming fold
/// matches a batch analysis of that series byte-for-byte.
///
/// Since the live-engine rewire this runs on the `probenet-live` reactor
/// (a one-session [`Reactor`]): same records, same accounting, but the
/// pacing comes from the timer wheel instead of sleep slicing, which is
/// what lets callers hold thousands of these sessions on one core. On
/// platforms without epoll it transparently falls back to
/// [`run_probes_with_sink_legacy`]; that reference implementation also
/// stays available directly, and the reactor-vs-thread differential test
/// pins the two paths to equivalent reports.
pub fn run_probes_with_sink<F: FnMut(probenet_stream::StreamRecord)>(
    server: SocketAddr,
    config: &ExperimentConfig,
    drain: Duration,
    mut sink: F,
) -> io::Result<(RttSeries, ProbeRunStats)> {
    assert_eq!(
        config.payload_bytes as usize, PROBE_PAYLOAD_BYTES,
        "the wire format carries exactly the 32-byte NetDyn payload"
    );
    match run_probes_reactor(server, config, drain, &mut sink) {
        Ok(result) => Ok(result),
        Err(e) if e.kind() == io::ErrorKind::Unsupported => {
            run_probes_with_sink_legacy(server, config, drain, sink)
        }
        Err(e) => Err(e),
    }
}

/// The reactor-backed implementation behind [`run_probes_with_sink`]: one
/// session, one dedicated lane socket, records rebuilt into the same
/// [`RttSeries`] shape the thread prober returns.
fn run_probes_reactor<F: FnMut(probenet_stream::StreamRecord)>(
    server: SocketAddr,
    config: &ExperimentConfig,
    drain: Duration,
    sink: &mut F,
) -> io::Result<(RttSeries, ProbeRunStats)> {
    let interval = Duration::from_nanos(config.interval.as_nanos());
    let spec = SessionSpec {
        key: SessionKey {
            path: "netdyn/live".to_string(),
            delta_ns: config.interval.as_nanos(),
            seed: 0,
        },
        target: server,
        interval,
        count: config.count,
        start_offset: Duration::ZERO,
        clock_resolution_ns: config.clock_resolution.as_nanos(),
    };
    let live_config = LiveConfig {
        drain,
        sessions_per_lane: 1,
        ..LiveConfig::default()
    };
    let (reactor, _handle) = Reactor::new(vec![spec], live_config)?;
    let mut outcome = None;
    reactor.run(|o| outcome = Some(o))?;
    let outcome = outcome.expect("the reactor resolves every session it was given");

    let stats = ProbeRunStats {
        duplicates: outcome.duplicates,
        decode_errors: outcome.decode_errors,
    };
    // A shutdown mid-run can leave the tail unscheduled; the series
    // contract is one record per configured probe, so pad with losses.
    let records: Vec<RttRecord> = (0..config.count)
        .map(|n| RttRecord {
            seq: n as u64,
            sent_at: config.interval.as_nanos() * n as u64,
            echoed_at: outcome.echoed_at_ns.get(n).copied().flatten(),
            rtt: outcome.records.get(n).and_then(|r| r.rtt_ns),
        })
        .collect();
    for record in &records {
        sink(record.to_stream());
    }
    Ok((
        RttSeries::new(
            config.interval,
            config.wire_bytes(),
            config.clock_resolution,
            records,
        ),
        stats,
    ))
}

/// The original thread-inline implementation of [`run_probes_with_sink`]:
/// a blocking pacing loop on a connected socket. Kept as the reference the
/// reactor path is differentially tested against, and as the working
/// fallback on platforms without epoll.
pub fn run_probes_with_sink_legacy<F: FnMut(probenet_stream::StreamRecord)>(
    server: SocketAddr,
    config: &ExperimentConfig,
    drain: Duration,
    mut sink: F,
) -> io::Result<(RttSeries, ProbeRunStats)> {
    assert_eq!(
        config.payload_bytes as usize, PROBE_PAYLOAD_BYTES,
        "the wire format carries exactly the 32-byte NetDyn payload"
    );
    let socket = UdpSocket::bind(("0.0.0.0", 0))?;
    socket.connect(server)?;
    socket.set_nonblocking(true)?;

    let epoch = Instant::now(); // probenet-lint: allow(wall-clock-in-sim) real probe epoch for RTT timestamps
    let interval = Duration::from_nanos(config.interval.as_nanos());
    let mut rtts: Vec<Option<u64>> = vec![None; config.count];
    let mut echoes: Vec<Option<u64>> = vec![None; config.count];
    let mut stats = ProbeRunStats::default();
    let mut buf = [0u8; 2048];

    let mut receive = |rtts: &mut Vec<Option<u64>>,
                       echoes: &mut Vec<Option<u64>>,
                       stats: &mut ProbeRunStats| loop {
        match socket.recv(&mut buf) {
            Ok(len) => match ProbePacket::decode(&buf[..len]) {
                Ok(mut probe) => {
                    probe.dest_ts = monotonic_micros(epoch);
                    let n = probe.seq as usize;
                    if n >= rtts.len() {
                        stats.decode_errors += 1;
                        continue;
                    }
                    if rtts[n].is_some() {
                        stats.duplicates += 1;
                        continue;
                    }
                    rtts[n] = Some(probe.rtt_micros() * 1_000); // µs -> ns
                                                                // Echo-host clock reading; comparable to sent_at only
                                                                // under synchronized clocks (see RttRecord::echoed_at).
                    echoes[n] = Some(probe.echo_ts.as_micros() * 1_000);
                }
                Err(_) => stats.decode_errors += 1,
            },
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) => {
                // Treat transient errors (e.g. ICMP-induced ECONNREFUSED on
                // some platforms) as "nothing received".
                let _ = e;
                break;
            }
        }
    };

    let start = Instant::now(); // probenet-lint: allow(wall-clock-in-sim) real pacing clock
    for n in 0..config.count {
        let target = start + interval * n as u32;
        // Service the receive queue while waiting for the send slot.
        loop {
            let now = Instant::now(); // probenet-lint: allow(wall-clock-in-sim) real pacing clock
            if now >= target {
                break;
            }
            receive(&mut rtts, &mut echoes, &mut stats);
            let remaining = target - now;
            std::thread::sleep(remaining.min(Duration::from_micros(200)));
        }
        let probe = ProbePacket::outgoing(n as u32, monotonic_micros(epoch));
        let _ = socket.send(&probe.to_bytes());
    }
    // Drain stragglers.
    let deadline = Instant::now() + drain; // probenet-lint: allow(wall-clock-in-sim) straggler drain timeout on the real socket
    while Instant::now() < deadline {
        receive(&mut rtts, &mut echoes, &mut stats);
        std::thread::sleep(Duration::from_micros(500));
    }

    let resolution = config.clock_resolution;
    let records: Vec<RttRecord> = rtts
        .into_iter()
        .enumerate()
        .map(|(n, rtt)| RttRecord {
            seq: n as u64,
            sent_at: config.interval.as_nanos() * n as u64,
            echoed_at: echoes[n],
            rtt: rtt.map(|ns| quantize_ns(ns, resolution)),
        })
        .collect();
    for record in &records {
        sink(record.to_stream());
    }
    Ok((
        RttSeries::new(config.interval, config.wire_bytes(), resolution, records),
        stats,
    ))
}

fn quantize_ns(ns: u64, resolution: SimDuration) -> u64 {
    match resolution.as_nanos() {
        0 => ns,
        r => ns / r * r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probenet_sim::SimDuration;

    fn quick(count: usize, interval_ms: u64) -> ExperimentConfig {
        ExperimentConfig::quick(SimDuration::from_millis(interval_ms), count)
    }

    #[test]
    fn loopback_probes_all_return() {
        let server = EchoServer::spawn("127.0.0.1:0").expect("bind echo server");
        let cfg = quick(30, 2);
        let (series, stats) =
            run_probes(server.local_addr(), &cfg, Duration::from_millis(300)).expect("probe run");
        assert_eq!(series.len(), 30);
        assert_eq!(
            series.lost(),
            0,
            "lost {} probes on loopback",
            series.lost()
        );
        assert_eq!(stats.decode_errors, 0);
        // Loopback RTTs are far below a second.
        assert!(series.delivered_rtts_ms().iter().all(|&r| r < 1000.0));
        assert!(server.stats().echoed >= 30);
        server.shutdown();
    }

    #[test]
    fn full_fault_injection_loses_everything() {
        let server = EchoServer::spawn_with_loss("127.0.0.1:0", 1.0, 7).expect("bind echo server");
        let cfg = quick(10, 2);
        let (series, _) =
            run_probes(server.local_addr(), &cfg, Duration::from_millis(100)).expect("probe run");
        assert_eq!(series.lost(), 10);
        assert_eq!(server.stats().dropped, 10);
    }

    #[test]
    fn partial_fault_injection_loses_roughly_the_configured_fraction() {
        let server = EchoServer::spawn_with_loss("127.0.0.1:0", 0.5, 11).expect("bind echo server");
        let cfg = quick(200, 1);
        let (series, _) =
            run_probes(server.local_addr(), &cfg, Duration::from_millis(300)).expect("probe run");
        let ulp = series.loss_probability();
        assert!((0.3..0.7).contains(&ulp), "ulp {ulp}");
    }

    #[test]
    fn malformed_datagrams_are_counted_not_echoed() {
        let server = EchoServer::spawn("127.0.0.1:0").expect("bind echo server");
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.send_to(b"not a probe", server.local_addr()).unwrap();
        sock.send_to(&[0u8; 32], server.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let stats = server.stats();
        assert_eq!(stats.decode_errors, 2);
        assert_eq!(stats.echoed, 0);
    }

    #[test]
    fn three_host_topology_forwards_to_the_destination() {
        // source --(probes)--> echo --(stamped)--> destination, all on
        // loopback: the paper's §2 arrangement with distinct sockets.
        let destination = DestinationCollector::spawn("127.0.0.1:0").expect("bind destination");
        let echo = EchoServer::spawn_forwarding("127.0.0.1:0", destination.local_addr())
            .expect("bind echo");
        let sent =
            send_probes_via(echo.local_addr(), 25, Duration::from_millis(2)).expect("send probes");
        assert_eq!(sent, 25);
        std::thread::sleep(Duration::from_millis(200));
        let got = destination.shutdown();
        assert!(got.len() >= 23, "destination got only {} probes", got.len());
        // Every probe carries all three stamps; on one machine the clocks
        // are per-process epochs, so only ordering is asserted.
        for p in &got {
            assert!(p.echo_ts.as_micros() > 0, "echo stamp missing");
            assert!(p.dest_ts.as_micros() > 0, "dest stamp missing");
        }
        // Sequence numbers arrive without duplication.
        let mut seqs: Vec<u32> = got.iter().map(|p| p.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), got.len(), "duplicated probes at destination");
        assert!(echo.stats().echoed >= 23);
        echo.shutdown();
    }

    #[test]
    fn forwarding_server_does_not_reflect_to_the_sender() {
        let destination = DestinationCollector::spawn("127.0.0.1:0").expect("bind destination");
        let echo = EchoServer::spawn_forwarding("127.0.0.1:0", destination.local_addr())
            .expect("bind echo");
        // A probing client pointed at a forwarding echo gets nothing back.
        let cfg = ExperimentConfig::quick(SimDuration::from_millis(2), 10);
        let (series, _) =
            run_probes(echo.local_addr(), &cfg, Duration::from_millis(150)).expect("probe run");
        assert_eq!(series.received(), 0, "forwarding server must not reflect");
        std::thread::sleep(Duration::from_millis(100));
        assert!(destination.received().len() >= 9);
    }

    #[test]
    fn clock_resolution_applies_to_real_measurements() {
        let server = EchoServer::spawn("127.0.0.1:0").expect("bind echo server");
        let cfg = quick(20, 2).with_clock(SimDuration::from_millis(3));
        let (series, _) =
            run_probes(server.local_addr(), &cfg, Duration::from_millis(200)).expect("probe run");
        for r in series.records.iter().filter_map(|r| r.rtt) {
            assert_eq!(r % 3_000_000, 0);
        }
    }
}
