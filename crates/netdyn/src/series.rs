//! The measurement record: a round-trip-time series.
//!
//! One [`RttSeries`] is the output of one probing experiment — the paper's
//! `rtt_n` sequence, with `rtt_n = 0` standing for a lost probe (§3).

use probenet_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One probe's fate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RttRecord {
    /// Probe sequence number `n`.
    pub seq: u64,
    /// Nominal send instant (`n · δ`).
    pub sent_at: SimTimeRepr,
    /// Instant the echo host stamped the packet, on the **echo host's
    /// clock** (ns). In simulation all clocks are one, so one-way delays
    /// are directly meaningful; on real paths this is only comparable to
    /// `sent_at` when the hosts are synchronized — the very caveat that
    /// made the paper restrict itself to round trips (§2).
    pub echoed_at: Option<SimTimeRepr>,
    /// Measured round trip, `None` if the probe never returned.
    pub rtt: Option<SimDurationRepr>,
}

impl RttRecord {
    /// The streaming-ingest projection of this record — what the online
    /// estimators in `probenet-stream` consume.
    pub fn to_stream(&self) -> probenet_stream::StreamRecord {
        probenet_stream::StreamRecord {
            seq: self.seq,
            sent_at_ns: self.sent_at,
            rtt_ns: self.rtt,
        }
    }
}

/// Serializable nanosecond instant (mirror of `SimTime` for serde).
pub type SimTimeRepr = u64;
/// Serializable nanosecond duration (mirror of `SimDuration` for serde).
pub type SimDurationRepr = u64;

/// The result of one probing experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RttSeries {
    /// Probe interval δ in nanoseconds.
    pub interval_ns: u64,
    /// Probe wire size in bytes.
    pub wire_bytes: u32,
    /// Clock resolution applied to the measurements (ns; 0 = perfect).
    pub clock_resolution_ns: u64,
    /// Per-probe records, ordered by sequence number, one per probe sent.
    pub records: Vec<RttRecord>,
}

impl RttSeries {
    /// Assemble a series; records are sorted by sequence number.
    pub fn new(
        interval: SimDuration,
        wire_bytes: u32,
        clock_resolution: SimDuration,
        mut records: Vec<RttRecord>,
    ) -> Self {
        records.sort_by_key(|r| r.seq);
        RttSeries {
            interval_ns: interval.as_nanos(),
            wire_bytes,
            clock_resolution_ns: clock_resolution.as_nanos(),
            records,
        }
    }

    /// Probe interval δ.
    pub fn interval(&self) -> SimDuration {
        SimDuration::from_nanos(self.interval_ns)
    }

    /// Number of probes sent.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no probes were sent.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of probes that returned.
    pub fn received(&self) -> usize {
        self.records.iter().filter(|r| r.rtt.is_some()).count()
    }

    /// Number of probes lost.
    pub fn lost(&self) -> usize {
        self.len() - self.received()
    }

    /// The paper's `rtt_n` convention: round-trip in **milliseconds**, with
    /// `0.0` for lost probes.
    pub fn rtt_or_zero_ms(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| match r.rtt {
                Some(ns) => ns as f64 / 1e6,
                None => 0.0,
            })
            .collect()
    }

    /// Round-trip times of delivered probes only, in milliseconds.
    pub fn delivered_rtts_ms(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter_map(|r| r.rtt.map(|ns| ns as f64 / 1e6))
            .collect()
    }

    /// Loss indicator per probe (`true` = lost), the paper's
    /// `rtt_n = 0` events.
    pub fn loss_flags(&self) -> Vec<bool> {
        self.records.iter().map(|r| r.rtt.is_none()).collect()
    }

    /// Unconditional loss probability `ulp = P(rtt_n = 0)`.
    pub fn loss_probability(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.lost() as f64 / self.len() as f64
    }

    /// Smallest delivered RTT in ms — the estimator for the fixed component
    /// `D + P/μ` (`None` if everything was lost).
    pub fn min_rtt_ms(&self) -> Option<f64> {
        self.delivered_rtts_ms()
            .into_iter()
            .min_by(|a, b| a.partial_cmp(b).expect("finite RTTs"))
    }

    /// Nominal send instant of probe `n`.
    pub fn sent_at(&self, n: usize) -> SimTime {
        SimTime::from_nanos(self.records[n].sent_at)
    }

    /// Count of reordered probe pairs: inversions in arrival order among
    /// delivered probes (probe `j > i` arriving before probe `i`). The
    /// NetDyn packet number exists precisely "to detect packet losses" and
    /// reorderings (§2; the paper's ref \[19\] correlates reorderings with
    /// delay). FIFO paths yield zero; route changes can overtake in-flight
    /// packets and produce inversions. Exact count via merge-sort, O(n log n).
    pub fn reordering_count(&self) -> u64 {
        let mut arrivals: Vec<u64> = self
            .records
            .iter()
            .filter_map(|r| r.rtt.map(|rtt| r.sent_at + rtt))
            .collect();
        count_inversions(&mut arrivals)
    }

    /// One-way delay pairs `(outbound_ms, inbound_ms)` for probes with an
    /// echo timestamp. **Requires source and echo clocks to be
    /// synchronized** (always true in simulation; rarely on real paths —
    /// the paper avoided one-way delays for exactly this reason).
    pub fn one_way_delays_ms(&self) -> Vec<(f64, f64)> {
        self.records
            .iter()
            .filter_map(|r| match (r.echoed_at, r.rtt) {
                (Some(echo), Some(rtt)) => {
                    let out = echo.saturating_sub(r.sent_at);
                    let back = rtt.saturating_sub(out);
                    Some((out as f64 / 1e6, back as f64 / 1e6))
                }
                _ => None,
            })
            .collect()
    }
}

/// Exact inversion count of a sequence by bottom-up merge sort (the slice
/// is sorted in place as a side effect).
fn count_inversions(xs: &mut [u64]) -> u64 {
    let n = xs.len();
    if n < 2 {
        return 0;
    }
    let mut buf = xs.to_vec();
    let mut inversions = 0u64;
    let mut width = 1;
    while width < n {
        let mut lo = 0;
        while lo < n {
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            if mid < hi {
                // Merge xs[lo..mid] and xs[mid..hi] into buf[lo..hi].
                let (mut i, mut j, mut k) = (lo, mid, lo);
                while i < mid && j < hi {
                    if xs[i] <= xs[j] {
                        buf[k] = xs[i];
                        i += 1;
                    } else {
                        // xs[j] jumps ahead of everything left in [i, mid).
                        inversions += (mid - i) as u64;
                        buf[k] = xs[j];
                        j += 1;
                    }
                    k += 1;
                }
                buf[k..hi].copy_from_slice(if i < mid { &xs[i..mid] } else { &xs[j..hi] });
                xs[lo..hi].copy_from_slice(&buf[lo..hi]);
            }
            lo += 2 * width;
        }
        width *= 2;
    }
    inversions
}

/// Quantize an instant to a clock of the given resolution (floor), the way
/// a host reads a coarse hardware clock. Zero resolution = identity.
pub fn quantize(t: SimTime, resolution: SimDuration) -> SimTime {
    if resolution.is_zero() {
        return t;
    }
    let r = resolution.as_nanos();
    SimTime::from_nanos(t.as_nanos() / r * r)
}

/// The RTT a host with quantized clocks measures: the difference of the two
/// clock readings (which can differ from the true RTT by up to one tick in
/// either direction).
pub fn quantized_rtt(sent: SimTime, received: SimTime, resolution: SimDuration) -> SimDuration {
    quantize(received, resolution).saturating_since(quantize(sent, resolution))
}

/// What a clock with a frequency error of `ppb` parts per billion reads at
/// true instant `t`: `t + t·ppb/10⁹`, in exact integer arithmetic. Positive
/// `ppb` is a fast clock, negative a slow one (clamped at zero).
pub fn skew(t: SimTime, ppb: i64) -> SimTime {
    if ppb == 0 {
        return t;
    }
    let nanos = t.as_nanos() as i128;
    let skewed = nanos + nanos * ppb as i128 / 1_000_000_000;
    SimTime::from_nanos(skewed.clamp(0, u64::MAX as i128) as u64)
}

/// The RTT measured by a host whose clock both drifts (`ppb`) and ticks at
/// `resolution`: the difference of the two quantized, drifted clock reads.
pub fn measured_rtt(
    sent: SimTime,
    received: SimTime,
    resolution: SimDuration,
    ppb: i64,
) -> SimDuration {
    quantize(skew(received, ppb), resolution)
        .saturating_since(quantize(skew(sent, ppb), resolution))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> RttSeries {
        RttSeries::new(
            SimDuration::from_millis(50),
            72,
            SimDuration::ZERO,
            vec![
                RttRecord {
                    seq: 2,
                    sent_at: 100_000_000,
                    echoed_at: None,
                    rtt: None,
                },
                RttRecord {
                    seq: 0,
                    sent_at: 0,
                    echoed_at: Some(70_000_000),
                    rtt: Some(142_000_000),
                },
                RttRecord {
                    seq: 1,
                    sent_at: 50_000_000,
                    echoed_at: None,
                    rtt: Some(150_500_000),
                },
            ],
        )
    }

    #[test]
    fn records_are_sorted_and_counted() {
        let s = series();
        assert_eq!(s.len(), 3);
        assert_eq!(s.received(), 2);
        assert_eq!(s.lost(), 1);
        assert_eq!(s.records[0].seq, 0);
        assert_eq!(s.records[2].seq, 2);
    }

    #[test]
    fn paper_zero_convention() {
        let s = series();
        assert_eq!(s.rtt_or_zero_ms(), vec![142.0, 150.5, 0.0]);
        assert_eq!(s.loss_flags(), vec![false, false, true]);
        assert!((s.loss_probability() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min_rtt_ms(), Some(142.0));
    }

    #[test]
    fn delivered_only_view() {
        let s = series();
        assert_eq!(s.delivered_rtts_ms(), vec![142.0, 150.5]);
    }

    #[test]
    fn empty_series_is_safe() {
        let s = RttSeries::new(SimDuration::from_millis(10), 72, SimDuration::ZERO, vec![]);
        assert!(s.is_empty());
        assert_eq!(s.loss_probability(), 0.0);
        assert_eq!(s.min_rtt_ms(), None);
    }

    #[test]
    fn quantization_floors_to_ticks() {
        let res = SimDuration::from_millis(3);
        assert_eq!(
            quantize(SimTime::from_micros(7_400), res),
            SimTime::from_millis(6)
        );
        assert_eq!(
            quantize(SimTime::from_millis(6), res),
            SimTime::from_millis(6)
        );
        // Perfect clock: identity.
        assert_eq!(
            quantize(SimTime::from_micros(7_400), SimDuration::ZERO),
            SimTime::from_micros(7_400)
        );
    }

    #[test]
    fn quantized_rtt_is_multiple_of_resolution() {
        let res = SimDuration::from_nanos(3_906_250); // DECstation
        for (s, r) in [(0u64, 142_300_000u64), (7_000_000, 151_111_111)] {
            let q = quantized_rtt(SimTime::from_nanos(s), SimTime::from_nanos(s + r), res);
            assert_eq!(q.as_nanos() % res.as_nanos(), 0);
            // Error bounded by one tick.
            let err = q.as_nanos() as i128 - r as i128;
            assert!(err.unsigned_abs() <= res.as_nanos() as u128);
        }
    }

    #[test]
    fn reordering_count_on_fifo_series_is_zero() {
        let s = series();
        assert_eq!(s.reordering_count(), 0);
    }

    #[test]
    fn reordering_count_detects_inversions() {
        // Probe 0 sent at 0 arrives at 100; probe 1 sent at 50 arrives at
        // 90 (overtook); probe 2 sent at 100 arrives at 150.
        let mk = |seq: u64, sent: u64, arrive: u64| RttRecord {
            seq,
            sent_at: sent,
            echoed_at: None,
            rtt: Some(arrive - sent),
        };
        let s = RttSeries::new(
            SimDuration::from_millis(50),
            72,
            SimDuration::ZERO,
            vec![mk(0, 0, 100), mk(1, 50, 90), mk(2, 100, 150)],
        );
        assert_eq!(s.reordering_count(), 1);
        // Fully reversed arrivals: 3 inversions of 3 elements.
        let s = RttSeries::new(
            SimDuration::from_millis(50),
            72,
            SimDuration::ZERO,
            vec![mk(0, 0, 300), mk(1, 50, 250), mk(2, 100, 200)],
        );
        assert_eq!(s.reordering_count(), 3);
    }

    #[test]
    fn one_way_delays_require_echo_stamp() {
        let s = series();
        let owd = s.one_way_delays_ms();
        assert_eq!(owd.len(), 1);
        assert!((owd[0].0 - 70.0).abs() < 1e-9);
        assert!((owd[0].1 - 72.0).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let s = series();
        let json = serde_json::to_string(&s).unwrap();
        let back: RttSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back.records, s.records);
        assert_eq!(back.interval_ns, s.interval_ns);
    }
}
