//! # probenet-netdyn
//!
//! The measurement tool of Bolot's SIGCOMM '93 study, reimplemented: send
//! small UDP probe packets at a fixed interval δ, echo them back, and record
//! the round-trip series `rtt_n` (with `rtt_n` undefined — here `None` —
//! for lost probes).
//!
//! Two interchangeable drivers produce the same [`RttSeries`]:
//!
//! * [`sim_driver`] — runs the experiment inside the `probenet-sim`
//!   discrete-event simulator against calibrated paths and cross traffic
//!   (how the paper's figures are regenerated);
//! * [`udp`] — a real UDP echo server and probing client over `std::net`
//!   sockets, usable on actual networks, with Bernoulli fault injection for
//!   testing.
//!
//! [`config`] holds the experiment parameters (the paper's §2: 32-byte
//! probes, δ ∈ {8, 20, 50, 100, 200, 500} ms, 10-minute runs, DECstation
//! clock resolution of 3.906 ms), and [`series`] the measurement record.
//!
//! ```
//! use probenet_netdyn::{ExperimentConfig, SimExperiment};
//! use probenet_sim::{Path, SimDuration};
//!
//! let cfg = ExperimentConfig::quick(SimDuration::from_millis(50), 100);
//! let (series, _engine) =
//!     SimExperiment::new(cfg, Path::inria_umd_1992(), 42).run();
//! assert_eq!(series.len(), 100);
//! ```

pub mod config;
pub mod csv;
pub mod series;
pub mod sim_driver;
pub mod udp;

pub use config::{
    paper_intervals, ExperimentConfig, DECSTATION_CLOCK, PROBE_PAYLOAD_BYTES, UMD_CLOCK,
    WIRE_OVERHEAD_BYTES,
};
pub use csv::{from_csv, to_csv, CsvError};
pub use series::{measured_rtt, quantize, quantized_rtt, skew, RttRecord, RttSeries};
pub use sim_driver::{recycle_engine, recycle_run, CrossTrafficBinding, SimExperiment, SimRun};
pub use udp::{
    run_probes, run_probes_with_sink, run_probes_with_sink_legacy, send_probes_via,
    DestinationCollector, EchoServer, EchoServerStats, ProbeRunStats,
};
