//! Run a probing experiment against the discrete-event simulator.
//!
//! This is the simulated counterpart of the real UDP driver: probes are
//! injected at `n·δ`, cross traffic competes for the configured queues, and
//! the delivered round trips — quantized to the host clock resolution —
//! are assembled into an [`RttSeries`].

use std::cell::RefCell;

use probenet_sim::{Direction, Engine, Path, SimTime};
use probenet_traffic::Arrival;

use crate::config::ExperimentConfig;
use crate::series::{measured_rtt, skew, RttRecord, RttSeries};

thread_local! {
    /// One recycled engine per worker thread (see [`recycle_engine`]).
    static ENGINE_CACHE: RefCell<Option<Engine>> = const { RefCell::new(None) };
}

/// Offer `engine` for reuse by the next [`SimExperiment::run`] on this
/// thread. If that run probes the same path, the engine is
/// [`Engine::reset`] instead of rebuilt, so its queues, buffers and maps
/// keep their allocations across runs — the sweep/campaign hot path. A
/// reset engine replays bit-identically to a fresh one, so results never
/// depend on whether a run recycled.
pub fn recycle_engine(engine: Engine) {
    ENGINE_CACHE.with(|cache| *cache.borrow_mut() = Some(engine));
}

/// A cached engine for `path` (reset to `seed`), or a fresh one.
fn checkout_engine(path: &Path, seed: u64) -> Engine {
    let cached = ENGINE_CACHE.with(|cache| cache.borrow_mut().take());
    match cached {
        Some(mut engine) if engine.path() == path => {
            engine.reset(seed);
            engine
        }
        _ => Engine::new(path.clone(), seed),
    }
}

/// Cross traffic bound for one queue of the path.
#[derive(Debug, Clone)]
pub struct CrossTrafficBinding {
    /// Link index on the path.
    pub link: usize,
    /// Queue direction on that link.
    pub direction: Direction,
    /// The arrival stream.
    pub arrivals: Vec<Arrival>,
}

/// A fully specified simulated experiment.
#[derive(Debug, Clone)]
pub struct SimExperiment {
    /// Probing parameters.
    pub config: ExperimentConfig,
    /// The path to probe.
    pub path: Path,
    /// Cross traffic per queue.
    pub cross_traffic: Vec<CrossTrafficBinding>,
    /// Seed for the simulator's randomness (link loss).
    pub seed: u64,
}

impl SimExperiment {
    /// An experiment over `path` with no cross traffic.
    pub fn new(config: ExperimentConfig, path: Path, seed: u64) -> Self {
        SimExperiment {
            config,
            path,
            cross_traffic: Vec::new(),
            seed,
        }
    }

    /// Attach a cross-traffic stream to one queue.
    pub fn with_cross_traffic(
        mut self,
        link: usize,
        direction: Direction,
        arrivals: Vec<Arrival>,
    ) -> Self {
        self.cross_traffic.push(CrossTrafficBinding {
            link,
            direction,
            arrivals,
        });
        self
    }

    /// Run to completion and collect the RTT series. Also returns the
    /// engine for callers that want queue statistics or drop records.
    pub fn run(self) -> (RttSeries, Engine) {
        self.run_with_sink(|_| {})
    }

    /// [`SimExperiment::run`], additionally feeding every finished record —
    /// in sequence order, losses included — to `sink` before the series is
    /// returned. This is the simulator-side tap for streaming ingest
    /// (`probenet-stream`): the sink sees exactly the records the series
    /// will contain, so a streaming fold over the sink matches a batch
    /// analysis of the returned series byte-for-byte.
    pub fn run_with_sink<F: FnMut(&RttRecord)>(self, mut sink: F) -> (RttSeries, Engine) {
        let mut engine = checkout_engine(&self.path, self.seed);
        let cross_total: usize = self.cross_traffic.iter().map(|b| b.arrivals.len()).sum();
        engine.reserve(self.config.count, cross_total);
        for binding in self.cross_traffic {
            engine.attach_cross_traffic(
                binding.link,
                binding.direction,
                binding.arrivals.iter().map(|a| a.into_pair()),
            );
        }
        let wire = self.config.wire_bytes();
        for n in 0..self.config.count as u64 {
            let at = SimTime::ZERO + self.config.interval * n;
            engine.inject_probe(at, wire, n);
        }
        engine.run();

        let mut records: Vec<RttRecord> = (0..self.config.count as u64)
            .map(|n| RttRecord {
                seq: n,
                sent_at: (SimTime::ZERO + self.config.interval * n).as_nanos(),
                echoed_at: None,
                rtt: None,
            })
            .collect();
        for d in engine.probe_deliveries() {
            // Impairments can duplicate probes; the receiver keeps the first
            // copy of each sequence number. Deliveries are in completion
            // order, so first-seen means earliest-delivered.
            if records[d.seq as usize].rtt.is_some() {
                continue;
            }
            let rtt = measured_rtt(
                d.injected_at,
                d.delivered_at,
                self.config.clock_resolution,
                self.config.clock_drift_ppb,
            );
            records[d.seq as usize].rtt = Some(rtt.as_nanos());
            records[d.seq as usize].echoed_at = d.echoed_at.map(|e| {
                crate::series::quantize(
                    skew(e, self.config.clock_drift_ppb),
                    self.config.clock_resolution,
                )
                .as_nanos()
            });
        }
        for record in &records {
            sink(record);
        }
        let series = RttSeries::new(
            self.config.interval,
            wire,
            self.config.clock_resolution,
            records,
        );
        (series, engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probenet_sim::{BufferLimit, LinkSpec, SimDuration};
    use probenet_traffic::{InternetMix, PacketSize, PeriodicStream};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn flat_path(bw: u64) -> Path {
        Path::new(
            vec!["src".into(), "echo".into()],
            vec![LinkSpec::new(bw, SimDuration::from_millis(10))
                .with_buffer(BufferLimit::Packets(20))],
        )
    }

    #[test]
    fn unloaded_experiment_has_constant_rtt_no_loss() {
        let cfg = ExperimentConfig::quick(SimDuration::from_millis(50), 200);
        let (series, _) = SimExperiment::new(cfg, flat_path(128_000), 1).run();
        assert_eq!(series.len(), 200);
        assert_eq!(series.lost(), 0);
        let rtts = series.delivered_rtts_ms();
        // 72 B at 128 kb/s = 4.5 ms per direction + 20 ms propagation.
        assert!(
            rtts.iter().all(|&r| (r - 29.0).abs() < 1e-9),
            "{:?}",
            &rtts[..3]
        );
    }

    #[test]
    fn cross_traffic_inflates_rtts() {
        let cfg = ExperimentConfig::quick(SimDuration::from_millis(50), 200);
        let mix = InternetMix::calibrated(128_000, 0.5, 0.2, 3.0);
        let arrivals = mix.generate(&mut StdRng::seed_from_u64(3), SimDuration::from_secs(12));
        let loaded = SimExperiment::new(cfg.clone(), flat_path(128_000), 1)
            .with_cross_traffic(0, Direction::Outbound, arrivals)
            .run()
            .0;
        let unloaded = SimExperiment::new(cfg, flat_path(128_000), 1).run().0;
        let mean = |s: &RttSeries| {
            let v = s.delivered_rtts_ms();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean(&loaded) > mean(&unloaded) + 5.0,
            "loaded {} unloaded {}",
            mean(&loaded),
            mean(&unloaded)
        );
    }

    #[test]
    fn saturating_cross_traffic_causes_losses() {
        let cfg = ExperimentConfig::quick(SimDuration::from_millis(20), 400);
        // Offered cross load alone ≈ 1.3 µ: the finite buffer must drop.
        let cross = PeriodicStream::every(SimDuration::from_millis(24), PacketSize::Constant(512))
            .generate(&mut StdRng::seed_from_u64(5), SimDuration::from_secs(10));
        let (series, engine) = SimExperiment::new(cfg, flat_path(128_000), 1)
            .with_cross_traffic(0, Direction::Outbound, cross)
            .run();
        assert!(
            series.loss_probability() > 0.05,
            "ulp {}",
            series.loss_probability()
        );
        assert!(!engine.drops().is_empty());
    }

    #[test]
    fn clock_quantization_bands_the_rtts() {
        let res = SimDuration::from_millis(3);
        let cfg = ExperimentConfig::quick(SimDuration::from_millis(50), 100).with_clock(res);
        let (series, _) = SimExperiment::new(cfg, flat_path(10_000_000), 1).run();
        for r in series.delivered_rtts_ms() {
            let ns = (r * 1e6).round() as u64;
            assert_eq!(ns % 3_000_000, 0, "rtt {r} not on a 3 ms grid");
        }
    }

    #[test]
    fn deliveries_map_back_to_correct_sequence_numbers() {
        let cfg = ExperimentConfig::quick(SimDuration::from_millis(10), 50);
        let (series, _) = SimExperiment::new(cfg, flat_path(1_000_000), 1).run();
        for (i, rec) in series.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.sent_at, (i as u64) * 10_000_000);
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let run = || {
            let cfg = ExperimentConfig::quick(SimDuration::from_millis(20), 300);
            let mix = InternetMix::calibrated(128_000, 0.6, 0.2, 3.0);
            let arr = mix.generate(&mut StdRng::seed_from_u64(9), SimDuration::from_secs(7));
            SimExperiment::new(cfg, flat_path(128_000), 4)
                .with_cross_traffic(0, Direction::Outbound, arr)
                .run()
                .0
        };
        let a = run();
        let b = run();
        assert_eq!(a.records, b.records);
    }
}
