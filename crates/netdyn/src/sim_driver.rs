//! Run a probing experiment against the discrete-event simulator.
//!
//! This is the simulated counterpart of the real UDP driver: probes are
//! injected at `n·δ`, cross traffic competes for the configured queues, and
//! the delivered round trips — quantized to the host clock resolution —
//! are assembled into an [`RttSeries`].

use std::cell::RefCell;

use probenet_sim::{
    run_partitioned, CrossAttachment, Delivery, Direction, Engine, EngineStats, FlowClass,
    InjectionPlan, Path, PortStats, ProbeInjection, SimTime,
};
use probenet_traffic::Arrival;

use crate::config::ExperimentConfig;
use crate::series::{measured_rtt, skew, RttRecord, RttSeries};

thread_local! {
    /// One recycled engine per worker thread (see [`recycle_engine`]).
    static ENGINE_CACHE: RefCell<Option<Engine>> = const { RefCell::new(None) };
}

/// Offer `engine` for reuse by the next [`SimExperiment::run`] on this
/// thread. If that run probes the same path, the engine is
/// [`Engine::reset`] instead of rebuilt, so its queues, buffers and maps
/// keep their allocations across runs — the sweep/campaign hot path. A
/// reset engine replays bit-identically to a fresh one, so results never
/// depend on whether a run recycled.
pub fn recycle_engine(engine: Engine) {
    ENGINE_CACHE.with(|cache| *cache.borrow_mut() = Some(engine));
}

/// Network-side outcome of a simulated experiment: what happened inside
/// the path, independent of whether the run was serial or partitioned.
#[derive(Debug)]
pub struct SimRun {
    /// Final simulated time.
    pub now: SimTime,
    /// Engine work counters (summed over partitions).
    pub stats: EngineStats,
    /// Every drop, probes and cross traffic alike.
    pub drops: Vec<probenet_sim::DropRecord>,
    /// Per-port statistics in global port order (outbound `0..links`, then
    /// inbound `0..links`).
    pub port_stats: Vec<PortStats>,
    /// Number of links on the path.
    pub links: usize,
    /// How many partitions the run actually used.
    pub partitions: usize,
    /// The serial engine, when one was used (kept so it can be recycled).
    engine: Option<Engine>,
}

impl SimRun {
    /// Statistics of one port.
    pub fn port(&self, link: usize, direction: Direction) -> &PortStats {
        let idx = match direction {
            Direction::Outbound => link,
            Direction::Inbound => self.links + link,
        };
        &self.port_stats[idx]
    }
}

/// Recycle the engine behind `run`, if it was a serial run (see
/// [`recycle_engine`]). Partitioned runs have nothing to cache.
pub fn recycle_run(run: SimRun) {
    if let Some(engine) = run.engine {
        recycle_engine(engine);
    }
}

/// A cached engine for `path` (reset to `seed`), or a fresh one.
fn checkout_engine(path: &Path, seed: u64) -> Engine {
    let cached = ENGINE_CACHE.with(|cache| cache.borrow_mut().take());
    match cached {
        Some(mut engine) if engine.path() == path => {
            engine.reset(seed);
            engine
        }
        _ => Engine::new(path.clone(), seed),
    }
}

/// Cross traffic bound for one queue of the path.
#[derive(Debug, Clone)]
pub struct CrossTrafficBinding {
    /// Link index on the path.
    pub link: usize,
    /// Queue direction on that link.
    pub direction: Direction,
    /// The arrival stream.
    pub arrivals: Vec<Arrival>,
}

/// A fully specified simulated experiment.
#[derive(Debug, Clone)]
pub struct SimExperiment {
    /// Probing parameters.
    pub config: ExperimentConfig,
    /// The path to probe.
    pub path: Path,
    /// Cross traffic per queue.
    pub cross_traffic: Vec<CrossTrafficBinding>,
    /// Seed for the simulator's randomness (link loss).
    pub seed: u64,
    /// Partition count for the conservative-parallel engine. `None` (the
    /// default) defers to [`probenet_sim::effective_threads`] —
    /// `PROBENET_THREADS` or the host's parallelism; `Some(n)` pins it,
    /// which tests use to compare widths without touching the environment.
    /// Results are bit-identical at every width.
    pub partitions: Option<usize>,
}

impl SimExperiment {
    /// An experiment over `path` with no cross traffic.
    pub fn new(config: ExperimentConfig, path: Path, seed: u64) -> Self {
        SimExperiment {
            config,
            path,
            cross_traffic: Vec::new(),
            seed,
            partitions: None,
        }
    }

    /// Pin the partition count (see [`SimExperiment::partitions`]).
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = Some(partitions);
        self
    }

    /// Attach a cross-traffic stream to one queue.
    pub fn with_cross_traffic(
        mut self,
        link: usize,
        direction: Direction,
        arrivals: Vec<Arrival>,
    ) -> Self {
        self.cross_traffic.push(CrossTrafficBinding {
            link,
            direction,
            arrivals,
        });
        self
    }

    /// Run to completion and collect the RTT series. Also returns the
    /// network-side outcome for callers that want queue statistics or drop
    /// records.
    pub fn run(self) -> (RttSeries, SimRun) {
        self.run_with_sink(|_| {})
    }

    /// [`SimExperiment::run`], additionally feeding every finished record —
    /// in sequence order, losses included — to `sink` before the series is
    /// returned. This is the simulator-side tap for streaming ingest
    /// (`probenet-stream`): the sink sees exactly the records the series
    /// will contain, so a streaming fold over the sink matches a batch
    /// analysis of the returned series byte-for-byte.
    pub fn run_with_sink<F: FnMut(&RttRecord)>(self, mut sink: F) -> (RttSeries, SimRun) {
        let width = self
            .partitions
            .unwrap_or_else(probenet_sim::effective_threads)
            .max(1);
        let wire = self.config.wire_bytes();
        let mut records: Vec<RttRecord> = (0..self.config.count as u64)
            .map(|n| RttRecord {
                seq: n,
                sent_at: (SimTime::ZERO + self.config.interval * n).as_nanos(),
                echoed_at: None,
                rtt: None,
            })
            .collect();
        // Impairments can duplicate probes; the receiver keeps the
        // earliest-delivered copy of each sequence number (ties broken by
        // packet id). This selection is order-independent, so serial and
        // partitioned runs fill identical records no matter how their
        // delivery logs happen to be ordered.
        let mut best: Vec<Option<(u64, u64)>> = vec![None; self.config.count];
        let mut fill = |records: &mut Vec<RttRecord>, d: &Delivery| {
            let key = (d.delivered_at.as_nanos(), d.id.0);
            let slot = &mut best[d.seq as usize];
            if slot.is_some_and(|prev| prev <= key) {
                return;
            }
            *slot = Some(key);
            let rtt = measured_rtt(
                d.injected_at,
                d.delivered_at,
                self.config.clock_resolution,
                self.config.clock_drift_ppb,
            );
            records[d.seq as usize].rtt = Some(rtt.as_nanos());
            records[d.seq as usize].echoed_at = d.echoed_at.map(|e| {
                crate::series::quantize(
                    skew(e, self.config.clock_drift_ppb),
                    self.config.clock_resolution,
                )
                .as_nanos()
            });
        };

        let run = if width <= 1 {
            let mut engine = checkout_engine(&self.path, self.seed);
            let cross_total: usize = self.cross_traffic.iter().map(|b| b.arrivals.len()).sum();
            engine.reserve(self.config.count, cross_total);
            for binding in &self.cross_traffic {
                engine.attach_cross_traffic(
                    binding.link,
                    binding.direction,
                    binding.arrivals.iter().map(|a| a.into_pair()),
                );
            }
            for n in 0..self.config.count as u64 {
                let at = SimTime::ZERO + self.config.interval * n;
                engine.inject_probe(at, wire, n);
            }
            engine.run();
            for d in engine.probe_deliveries() {
                fill(&mut records, d);
            }
            let links = self.path.links.len();
            let port_stats = (0..links)
                .map(|l| engine.port(l, Direction::Outbound).stats.clone())
                .chain((0..links).map(|l| engine.port(l, Direction::Inbound).stats.clone()))
                .collect();
            SimRun {
                now: engine.now(),
                stats: engine.stats(),
                drops: engine.drops().to_vec(),
                port_stats,
                links,
                partitions: 1,
                engine: Some(engine),
            }
        } else {
            // The plan mirrors the serial injection order exactly (cross
            // bindings first, then probes), so `with_serial_ids` reproduces
            // the serial engine's packet ids.
            let plan = InjectionPlan {
                cross: self
                    .cross_traffic
                    .iter()
                    .map(|b| CrossAttachment {
                        link: b.link,
                        direction: b.direction,
                        arrivals: b.arrivals.iter().map(|a| a.into_pair()).collect(),
                        base_id: 0,
                    })
                    .collect(),
                probes: (0..self.config.count as u64)
                    .map(|n| ProbeInjection {
                        at: SimTime::ZERO + self.config.interval * n,
                        size: wire,
                        seq: n,
                        ttl: probenet_sim::DEFAULT_TTL,
                        id: 0,
                    })
                    .collect(),
            }
            .with_serial_ids();
            let out = run_partitioned(&self.path, self.seed, &plan, width);
            for d in out
                .deliveries
                .iter()
                .filter(|d| d.class == FlowClass::Probe)
            {
                fill(&mut records, d);
            }
            SimRun {
                now: out.now,
                stats: out.stats,
                drops: out.drops,
                port_stats: out.port_stats,
                links: self.path.links.len(),
                partitions: out.partitions,
                engine: None,
            }
        };

        for record in &records {
            sink(record);
        }
        let series = RttSeries::new(
            self.config.interval,
            wire,
            self.config.clock_resolution,
            records,
        );
        (series, run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probenet_sim::{BufferLimit, LinkSpec, SimDuration};
    use probenet_traffic::{InternetMix, PacketSize, PeriodicStream};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn flat_path(bw: u64) -> Path {
        Path::new(
            vec!["src".into(), "echo".into()],
            vec![LinkSpec::new(bw, SimDuration::from_millis(10))
                .with_buffer(BufferLimit::Packets(20))],
        )
    }

    #[test]
    fn unloaded_experiment_has_constant_rtt_no_loss() {
        let cfg = ExperimentConfig::quick(SimDuration::from_millis(50), 200);
        let (series, _) = SimExperiment::new(cfg, flat_path(128_000), 1).run();
        assert_eq!(series.len(), 200);
        assert_eq!(series.lost(), 0);
        let rtts = series.delivered_rtts_ms();
        // 72 B at 128 kb/s = 4.5 ms per direction + 20 ms propagation.
        assert!(
            rtts.iter().all(|&r| (r - 29.0).abs() < 1e-9),
            "{:?}",
            &rtts[..3]
        );
    }

    #[test]
    fn cross_traffic_inflates_rtts() {
        let cfg = ExperimentConfig::quick(SimDuration::from_millis(50), 200);
        let mix = InternetMix::calibrated(128_000, 0.5, 0.2, 3.0);
        let arrivals = mix.generate(&mut StdRng::seed_from_u64(3), SimDuration::from_secs(12));
        let loaded = SimExperiment::new(cfg.clone(), flat_path(128_000), 1)
            .with_cross_traffic(0, Direction::Outbound, arrivals)
            .run()
            .0;
        let unloaded = SimExperiment::new(cfg, flat_path(128_000), 1).run().0;
        let mean = |s: &RttSeries| {
            let v = s.delivered_rtts_ms();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean(&loaded) > mean(&unloaded) + 5.0,
            "loaded {} unloaded {}",
            mean(&loaded),
            mean(&unloaded)
        );
    }

    #[test]
    fn saturating_cross_traffic_causes_losses() {
        let cfg = ExperimentConfig::quick(SimDuration::from_millis(20), 400);
        // Offered cross load alone ≈ 1.3 µ: the finite buffer must drop.
        let cross = PeriodicStream::every(SimDuration::from_millis(24), PacketSize::Constant(512))
            .generate(&mut StdRng::seed_from_u64(5), SimDuration::from_secs(10));
        let (series, run) = SimExperiment::new(cfg, flat_path(128_000), 1)
            .with_cross_traffic(0, Direction::Outbound, cross)
            .run();
        assert!(
            series.loss_probability() > 0.05,
            "ulp {}",
            series.loss_probability()
        );
        assert!(!run.drops.is_empty());
    }

    #[test]
    fn clock_quantization_bands_the_rtts() {
        let res = SimDuration::from_millis(3);
        let cfg = ExperimentConfig::quick(SimDuration::from_millis(50), 100).with_clock(res);
        let (series, _) = SimExperiment::new(cfg, flat_path(10_000_000), 1).run();
        for r in series.delivered_rtts_ms() {
            let ns = (r * 1e6).round() as u64;
            assert_eq!(ns % 3_000_000, 0, "rtt {r} not on a 3 ms grid");
        }
    }

    #[test]
    fn deliveries_map_back_to_correct_sequence_numbers() {
        let cfg = ExperimentConfig::quick(SimDuration::from_millis(10), 50);
        let (series, _) = SimExperiment::new(cfg, flat_path(1_000_000), 1).run();
        for (i, rec) in series.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.sent_at, (i as u64) * 10_000_000);
        }
    }

    #[test]
    fn partitioned_driver_matches_serial_byte_for_byte() {
        let run_at = |width: usize| {
            let cfg = ExperimentConfig::quick(SimDuration::from_millis(20), 250);
            let mix = InternetMix::calibrated(128_000, 0.6, 0.2, 3.0);
            let out = mix.generate(&mut StdRng::seed_from_u64(9), SimDuration::from_secs(6));
            let back = mix.generate(&mut StdRng::seed_from_u64(10), SimDuration::from_secs(6));
            SimExperiment::new(cfg, probenet_sim::Path::inria_umd_1992(), 4)
                .with_cross_traffic(5, Direction::Outbound, out)
                .with_cross_traffic(5, Direction::Inbound, back)
                .with_partitions(width)
                .run()
        };
        let (serial_series, serial_run) = run_at(1);
        for width in [2usize, 4, 8] {
            let (series, run) = run_at(width);
            assert!(run.partitions > 1, "width {width} did not partition");
            assert_eq!(series.records, serial_series.records, "width {width}");
            assert_eq!(run.now, serial_run.now, "width {width}");
            let stats = |r: &SimRun| {
                r.port_stats
                    .iter()
                    .map(|s| (s.arrivals, s.served, s.overflow_drops, s.busy_time))
                    .collect::<Vec<_>>()
            };
            assert_eq!(stats(&run), stats(&serial_run), "width {width}");
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let run = || {
            let cfg = ExperimentConfig::quick(SimDuration::from_millis(20), 300);
            let mix = InternetMix::calibrated(128_000, 0.6, 0.2, 3.0);
            let arr = mix.generate(&mut StdRng::seed_from_u64(9), SimDuration::from_secs(7));
            SimExperiment::new(cfg, flat_path(128_000), 4)
                .with_cross_traffic(0, Direction::Outbound, arr)
                .run()
                .0
        };
        let a = run();
        let b = run();
        assert_eq!(a.records, b.records);
    }
}
