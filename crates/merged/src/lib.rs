//! # probenet-merged
//!
//! The fleet merge service: N collectors each stream their sessions'
//! [`SessionFrame`]s (the versioned binary snapshot format in
//! `probenet_wire::snapshot`) over a byte-stream transport — an in-process
//! channel, a file, a Unix socket or TCP — and the service folds them into
//! one fleet-wide [`CollectorReport`].
//!
//! ## Determinism contract
//!
//! The folded report is **byte-identical to a single-process
//! [`Collector`](probenet_stream::Collector)** over the same records
//! whenever each session's records lived wholly on one collector (the
//! whole-session sharding the differential suite `tests/merge_equiv.rs`
//! and the CI golden check pin): the service only *unions* sessions, in
//! ascending key order — the same `BTreeMap` order the collector's report
//! uses — and every per-session bank round-trips bit-for-bit through the
//! frame codec.
//!
//! When one session's records were split *across* collectors, the shards
//! are folded via [`EstimatorBank::merge`](probenet_stream::EstimatorBank::merge)
//! in ascending `first_seq` order. Integer state (loss metrics, histogram
//! and sketch counts) still matches the single-process fold exactly; the
//! float accumulators reassociate, so those agree to the documented ε
//! (DESIGN.md §11) — and the fold is bit-identical to merging the same
//! banks in memory, which the property suite pins.
//!
//! Ingest order never matters: frames are grouped by key into a sorted
//! map, and same-key shards are sorted by `first_seq` before folding, so
//! any arrival interleaving (file order, socket accept order) produces
//! the same report.
//!
//! ## Shard disjointness
//!
//! Same-key shards must cover *disjoint* sequence ranges
//! `[first_seq, first_seq + records)`: the fold sums loss and transition
//! counters, so a record folded by two shards would be double-counted
//! silently. [`MergeService::into_report`] rejects both duplicate starts
//! ([`MergeError::AmbiguousShardOrder`]) and any overlap between
//! consecutive ranges ([`MergeError::OverlappingShards`]); see DESIGN.md
//! §14 for the contract.
//!
//! ## Bounded ingest
//!
//! [`MergeService::ingest_reader`] decodes streams *incrementally*, frame
//! by frame: the staging buffer holds at most one partially-received
//! frame (plus one read chunk), never a whole connection. A slow or huge
//! collector therefore costs the daemon memory proportional to its
//! largest single frame — not its stream length — and frames fold as
//! they arrive instead of after EOF. Frames claiming more than
//! [`MAX_FRAME_BYTES`] are rejected with [`MergeError::FrameTooLarge`]
//! before any buffering.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Read;
use std::net::TcpListener;
use std::path::Path;
use std::sync::mpsc::Receiver;

use probenet_stream::{CollectorReport, SessionKey, SessionReport};
use probenet_wire::snapshot::{frame_len, SessionFrame, FRAME_HEADER_BYTES};
use probenet_wire::WireError;

/// Bytes pulled from a transport per read in the incremental ingest loop.
pub const INGEST_CHUNK: usize = 8 * 1024;

/// Upper bound on a single frame's on-wire size. A frame holds one
/// session's fixed-size estimator state (a few tens of KiB), so anything
/// near this limit is a corrupt or hostile length field — reject it
/// before buffering rather than allocating what the header claims.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Errors raised while ingesting or folding collector frames.
#[derive(Debug)]
pub enum MergeError {
    /// A frame stream failed to decode.
    Wire(WireError),
    /// A transport failed (file, socket).
    Io(std::io::Error),
    /// Two shards of one session disagree on the bank layout, so their
    /// estimators cannot be folded.
    ConfigMismatch {
        /// The session whose shards disagree.
        key: String,
    },
    /// Two shards of one session claim the same `first_seq`, which would
    /// make the fold order depend on arrival order.
    AmbiguousShardOrder {
        /// The session with ambiguous shards.
        key: String,
        /// The duplicated first sequence number.
        first_seq: u64,
    },
    /// Summed per-shard counters overflowed `u64`.
    CountOverflow {
        /// The session whose counters overflowed.
        key: String,
    },
    /// Two shards of one session cover overlapping sequence ranges, so
    /// the overlapped records would be double-counted by the fold (see
    /// the shard-disjointness contract, DESIGN.md §14).
    OverlappingShards {
        /// The session with overlapping shards.
        key: String,
        /// First sequence of the later-starting shard.
        first_seq: u64,
        /// One past the last sequence claimed by the earlier shard.
        prev_end: u64,
    },
    /// A frame header claims a payload larger than [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// On-wire frame size claimed by the header.
        bytes: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Wire(e) => write!(f, "frame decode failed: {e}"),
            MergeError::Io(e) => write!(f, "transport failed: {e}"),
            MergeError::ConfigMismatch { key } => {
                write!(f, "session {key}: shards disagree on bank config")
            }
            MergeError::AmbiguousShardOrder { key, first_seq } => {
                write!(f, "session {key}: two shards claim first_seq {first_seq}")
            }
            MergeError::CountOverflow { key } => {
                write!(f, "session {key}: record counters overflow")
            }
            MergeError::OverlappingShards {
                key,
                first_seq,
                prev_end,
            } => {
                write!(
                    f,
                    "session {key}: shard starting at seq {first_seq} overlaps \
                     the previous shard (which runs to seq {prev_end})"
                )
            }
            MergeError::FrameTooLarge { bytes } => {
                write!(
                    f,
                    "frame claims {bytes} bytes, over the {MAX_FRAME_BYTES}-byte limit"
                )
            }
        }
    }
}

impl std::error::Error for MergeError {}

impl From<WireError> for MergeError {
    fn from(e: WireError) -> Self {
        MergeError::Wire(e)
    }
}

impl From<std::io::Error> for MergeError {
    fn from(e: std::io::Error) -> Self {
        MergeError::Io(e)
    }
}

/// Accumulates frames from any number of collectors and folds them into
/// one deterministic fleet-wide report.
#[derive(Default)]
pub struct MergeService {
    sessions: BTreeMap<SessionKey, Vec<SessionFrame>>,
    frames: u64,
    peak_buffer: usize,
}

impl MergeService {
    /// An empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Frames ingested so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// High-water mark, in bytes, of the incremental ingest staging
    /// buffer across every [`ingest_reader`](Self::ingest_reader) call so
    /// far. Bounded by the largest single frame on any stream plus one
    /// read chunk ([`INGEST_CHUNK`]) — the regression suite pins this.
    pub fn peak_buffer_bytes(&self) -> usize {
        self.peak_buffer
    }

    /// Add one already-decoded frame.
    pub fn ingest_frame(&mut self, frame: SessionFrame) {
        self.frames += 1;
        self.sessions
            .entry(frame.key.clone())
            .or_default()
            .push(frame);
    }

    /// Decode and add a back-to-back frame stream (one collector's whole
    /// output). Returns the number of frames ingested.
    pub fn ingest_bytes(&mut self, data: &[u8]) -> Result<usize, MergeError> {
        let frames = probenet_wire::snapshot::decode_frames(data)?;
        let n = frames.len();
        for f in frames {
            self.ingest_frame(f);
        }
        Ok(n)
    }

    /// Read a transport to EOF, decoding and folding frames *as they
    /// arrive*: the staging buffer never holds more than one complete
    /// frame plus a partial read ([`INGEST_CHUNK`] granularity), so a
    /// slow or huge collector cannot pin a whole connection in memory.
    /// A stream ending mid-frame is a typed decode error, and a header
    /// claiming more than [`MAX_FRAME_BYTES`] is rejected before the
    /// payload is buffered.
    pub fn ingest_reader<R: Read>(&mut self, reader: &mut R) -> Result<usize, MergeError> {
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; INGEST_CHUNK];
        let mut ingested = 0usize;
        loop {
            let got = reader.read(&mut chunk)?;
            if got == 0 {
                // EOF. Anything left over is a frame the sender never
                // finished — surface it as a truncation, not silence.
                if !buf.is_empty() {
                    let needed = match frame_len(&buf)? {
                        Some(total) => total,
                        None => FRAME_HEADER_BYTES,
                    };
                    return Err(MergeError::Wire(WireError::Truncated {
                        needed,
                        got: buf.len(),
                    }));
                }
                return Ok(ingested);
            }
            buf.extend_from_slice(&chunk[..got]);
            self.peak_buffer = self.peak_buffer.max(buf.len());
            // Drain every complete frame before reading more, so the
            // buffer shrinks back to the (possibly partial) tail.
            while let Some(total) = frame_len(&buf)? {
                if total > MAX_FRAME_BYTES {
                    return Err(MergeError::FrameTooLarge { bytes: total });
                }
                if buf.len() < total {
                    break;
                }
                let (frame, used) = SessionFrame::decode(&buf)?;
                self.ingest_frame(frame);
                ingested += 1;
                buf.drain(..used);
            }
        }
    }

    /// Fold everything into the fleet-wide report: sessions in ascending
    /// key order (the collector's own report order), same-key shards by
    /// ascending `first_seq`.
    pub fn into_report(self) -> Result<CollectorReport, MergeError> {
        let mut sessions = Vec::with_capacity(self.sessions.len());
        for (key, mut shards) in self.sessions {
            shards.sort_by_key(|f| f.first_seq);
            for pair in shards.windows(2) {
                if pair[0].first_seq == pair[1].first_seq {
                    return Err(MergeError::AmbiguousShardOrder {
                        key: key.to_string(),
                        first_seq: pair[0].first_seq,
                    });
                }
                // Disjointness: the earlier shard's range must end at or
                // before the later one starts, else its tail records are
                // folded twice (DESIGN.md §14).
                let prev_end = pair[0].first_seq.saturating_add(pair[0].records);
                if pair[1].first_seq < prev_end {
                    return Err(MergeError::OverlappingShards {
                        key: key.to_string(),
                        first_seq: pair[1].first_seq,
                        prev_end,
                    });
                }
            }
            let mut shards = shards.into_iter();
            let head = shards.next().expect("every keyed entry holds a shard");
            let mut bank = head.bank;
            let mut records = head.records;
            let mut dropped = head.dropped;
            let mut interim = head.interim;
            for shard in shards {
                if shard.bank.config() != bank.config() {
                    return Err(MergeError::ConfigMismatch {
                        key: key.to_string(),
                    });
                }
                bank.merge(&shard.bank);
                records = records
                    .checked_add(shard.records)
                    .ok_or(MergeError::CountOverflow {
                        key: key.to_string(),
                    })?;
                dropped = dropped
                    .checked_add(shard.dropped)
                    .ok_or(MergeError::CountOverflow {
                        key: key.to_string(),
                    })?;
                // Interim snapshots keep shard-local record offsets; they
                // concatenate in fold order.
                interim.extend(shard.interim);
            }
            sessions.push(SessionReport {
                snapshot: bank.snapshot(),
                key,
                records,
                dropped,
                interim,
                bank,
            });
        }
        Ok(CollectorReport { sessions })
    }
}

/// Fold frame files (one per collector) into a report.
pub fn merge_files<P: AsRef<Path>>(paths: &[P]) -> Result<CollectorReport, MergeError> {
    let mut service = MergeService::new();
    for p in paths {
        let bytes = std::fs::read(p)?;
        service.ingest_bytes(&bytes)?;
    }
    service.into_report()
}

/// In-process transport: drain byte-stream chunks (each one collector's
/// complete frame stream) from a channel until every sender is dropped,
/// then fold.
pub fn serve_channel(rx: Receiver<Vec<u8>>) -> Result<CollectorReport, MergeError> {
    let mut service = MergeService::new();
    while let Ok(chunk) = rx.recv() {
        service.ingest_bytes(&chunk)?;
    }
    service.into_report()
}

/// TCP transport: accept exactly `expect` connections, read each to EOF,
/// fold. Connection accept order does not affect the report (see the
/// determinism contract in the crate docs).
pub fn serve_tcp(listener: &TcpListener, expect: usize) -> Result<CollectorReport, MergeError> {
    let mut service = MergeService::new();
    for _ in 0..expect {
        let (mut conn, _) = listener.accept()?;
        service.ingest_reader(&mut conn)?;
    }
    service.into_report()
}

/// Unix-socket transport: accept exactly `expect` connections, read each
/// to EOF, fold.
#[cfg(unix)]
pub fn serve_unix(
    listener: &std::os::unix::net::UnixListener,
    expect: usize,
) -> Result<CollectorReport, MergeError> {
    let mut service = MergeService::new();
    for _ in 0..expect {
        let (mut conn, _) = listener.accept()?;
        service.ingest_reader(&mut conn)?;
    }
    service.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use probenet_stream::{BankConfig, EstimatorBank, StreamRecord};

    fn bank_over(range: std::ops::Range<u64>, seed: u64) -> EstimatorBank {
        let mut bank = EstimatorBank::new(BankConfig::bolot(20.0, 72, 1_000_000));
        for i in range {
            let mix = i.wrapping_add(seed).wrapping_mul(0x9e3779b97f4a7c15);
            bank.push(&StreamRecord {
                seq: i,
                sent_at_ns: i * 20_000_000,
                rtt_ns: if mix % 8 == 0 {
                    None
                } else {
                    Some(100_000_000 + mix % 50_000_000)
                },
            });
        }
        bank
    }

    fn frame(name: &str, seed: u64, range: std::ops::Range<u64>) -> SessionFrame {
        SessionFrame {
            key: SessionKey::new(name, 20, seed),
            first_seq: range.start,
            records: range.end - range.start,
            dropped: 0,
            bank: bank_over(range, seed),
            interim: Vec::new(),
            hops: Vec::new(),
            extensions: Vec::new(),
        }
    }

    #[test]
    fn whole_session_union_is_key_sorted() {
        let mut svc = MergeService::new();
        // Ingest out of key order, via the byte-stream path.
        let mut stream = frame("zeta", 2, 0..50).encode();
        stream.extend_from_slice(&frame("alpha", 1, 0..50).encode());
        svc.ingest_bytes(&stream).expect("ingest");
        let report = svc.into_report().expect("fold");
        assert_eq!(report.sessions.len(), 2);
        assert_eq!(report.sessions[0].key.path, "alpha");
        assert_eq!(report.sessions[1].key.path, "zeta");
    }

    #[test]
    fn split_session_folds_in_first_seq_order() {
        // Shards arrive tail-first; the fold must still equal the in-memory
        // merge in sequence order.
        let mut svc = MergeService::new();
        svc.ingest_frame(frame("split", 9, 120..300));
        svc.ingest_frame(frame("split", 9, 0..120));
        let report = svc.into_report().expect("fold");
        assert_eq!(report.sessions.len(), 1);
        assert_eq!(report.sessions[0].records, 300);

        let mut expected = bank_over(0..120, 9);
        expected.merge(&bank_over(120..300, 9));
        assert_eq!(
            report.sessions[0].bank.wire_state(),
            expected.wire_state(),
            "fold must be bit-identical to the in-memory merge"
        );
    }

    #[test]
    fn ambiguous_shard_order_is_rejected() {
        let mut svc = MergeService::new();
        svc.ingest_frame(frame("dup", 1, 0..50));
        svc.ingest_frame(frame("dup", 1, 0..60));
        assert!(matches!(
            svc.into_report(),
            Err(MergeError::AmbiguousShardOrder { .. })
        ));
    }

    #[test]
    fn config_mismatch_is_a_typed_error_not_a_panic() {
        let mut svc = MergeService::new();
        svc.ingest_frame(frame("mix", 1, 0..50));
        let mut other = frame("mix", 1, 50..90);
        other.bank = {
            let mut b = EstimatorBank::new(BankConfig::bolot(20.0, 72, 0));
            for i in 50..90u64 {
                b.push(&StreamRecord {
                    seq: i,
                    sent_at_ns: i * 20_000_000,
                    rtt_ns: Some(100_000_000),
                });
            }
            b
        };
        svc.ingest_frame(other);
        assert!(matches!(
            svc.into_report(),
            Err(MergeError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn overlapping_shard_ranges_are_rejected() {
        // [0, 120) and [100, 200) share seqs 100..120 — folding both
        // would double-count those records.
        let mut svc = MergeService::new();
        svc.ingest_frame(frame("overlap", 5, 0..120));
        svc.ingest_frame(frame("overlap", 5, 100..200));
        match svc.into_report() {
            Err(MergeError::OverlappingShards {
                key,
                first_seq,
                prev_end,
            }) => {
                assert!(key.contains("overlap"));
                assert_eq!(first_seq, 100);
                assert_eq!(prev_end, 120);
            }
            Err(other) => panic!("expected OverlappingShards, got {other}"),
            Ok(_) => panic!("expected OverlappingShards, fold succeeded"),
        }
    }

    #[test]
    fn adjacent_shard_ranges_are_accepted() {
        // [0, 120) then [120, 200): touching but disjoint — the common
        // case for a session split across collectors.
        let mut svc = MergeService::new();
        svc.ingest_frame(frame("adjacent", 5, 0..120));
        svc.ingest_frame(frame("adjacent", 5, 120..200));
        let report = svc.into_report().expect("disjoint shards fold");
        assert_eq!(report.sessions[0].records, 200);
    }

    /// The ingest_reader regression: a writer trickling frames over TCP
    /// in tiny flushed chunks must (a) produce the same report as a
    /// one-shot ingest and (b) never grow the staging buffer past the
    /// largest single frame plus one read chunk — the bounded-memory
    /// guarantee the incremental decode loop exists for.
    #[test]
    fn trickled_tcp_stream_folds_with_bounded_buffer() {
        use std::io::Write;
        use std::net::TcpStream;

        let frames = [
            frame("trickle", 1, 0..150),
            frame("trickle", 1, 150..400),
            frame("trickle2", 2, 0..300),
        ];
        let mut stream_bytes = Vec::new();
        let mut max_frame = 0usize;
        for f in &frames {
            let enc = f.encode();
            max_frame = max_frame.max(enc.len());
            stream_bytes.extend_from_slice(&enc);
        }

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let to_send = stream_bytes.clone();
        let writer = std::thread::spawn(move || {
            let mut conn = TcpStream::connect(addr).expect("connect");
            // 7-byte chunks: every frame arrives split across many reads,
            // and most reads end mid-frame.
            for piece in to_send.chunks(7) {
                conn.write_all(piece).expect("write");
                conn.flush().expect("flush");
                std::thread::yield_now();
            }
        });

        let mut svc = MergeService::new();
        let (mut conn, _) = listener.accept().expect("accept");
        let n = svc.ingest_reader(&mut conn).expect("incremental ingest");
        writer.join().expect("writer");
        assert_eq!(n, frames.len());
        assert!(
            svc.peak_buffer_bytes() <= max_frame + INGEST_CHUNK,
            "peak buffer {} exceeds one frame ({max_frame}) + one chunk ({INGEST_CHUNK})",
            svc.peak_buffer_bytes()
        );

        let incremental = svc.into_report().expect("fold");
        let mut direct = MergeService::new();
        direct.ingest_bytes(&stream_bytes).expect("one-shot ingest");
        assert_eq!(
            incremental.to_json(),
            direct.into_report().expect("fold").to_json(),
            "incremental and one-shot ingest must agree byte-for-byte"
        );
    }

    #[test]
    fn stream_ending_mid_frame_is_a_typed_truncation() {
        let enc = frame("cut", 3, 0..80).encode();
        // Cut inside the payload, past the header.
        let mut cursor = std::io::Cursor::new(enc[..enc.len() - 5].to_vec());
        let mut svc = MergeService::new();
        match svc.ingest_reader(&mut cursor) {
            Err(MergeError::Wire(WireError::Truncated { needed, got })) => {
                assert_eq!(needed, enc.len());
                assert_eq!(got, enc.len() - 5);
            }
            Err(other) => panic!("expected Truncated, got {other}"),
            Ok(_) => panic!("expected Truncated, ingest succeeded"),
        }
    }

    #[test]
    fn oversized_frame_header_is_rejected_before_buffering() {
        // A valid header whose length field claims > MAX_FRAME_BYTES.
        let mut bytes = frame("huge", 4, 0..10).encode();
        let claimed = u32::try_from(MAX_FRAME_BYTES + 1).expect("fits");
        bytes[6..10].copy_from_slice(&claimed.to_be_bytes());
        let mut cursor = std::io::Cursor::new(bytes);
        let mut svc = MergeService::new();
        assert!(matches!(
            svc.ingest_reader(&mut cursor),
            Err(MergeError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn channel_transport_matches_direct_ingest() {
        let (tx, rx) = std::sync::mpsc::channel();
        let streams: Vec<Vec<u8>> = vec![
            frame("chan", 1, 0..40).encode(),
            frame("chan2", 2, 0..40).encode(),
        ];
        let handle = std::thread::spawn(move || serve_channel(rx));
        for s in streams.clone() {
            tx.send(s).expect("send");
        }
        drop(tx);
        let via_channel = handle.join().expect("join").expect("fold");

        let mut svc = MergeService::new();
        for s in &streams {
            svc.ingest_bytes(s).expect("ingest");
        }
        let direct = svc.into_report().expect("fold");
        assert_eq!(via_channel.to_json(), direct.to_json());
    }
}
