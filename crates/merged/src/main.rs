//! `probenet-merged` — the fleet merge daemon CLI.
//!
//! Ingests snapshot-frame streams from N collectors (files, TCP, or a Unix
//! socket), folds them with [`probenet_merged::MergeService`], and emits
//! the fleet-wide report. `--check` compares the folded report against a
//! golden JSON byte-for-byte (the CI smoke job feeds it the blessed
//! per-collector frame shards and the single-process stream golden).

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

use probenet_merged::{merge_files, serve_tcp, MergeError};
use probenet_stream::CollectorReport;

const USAGE: &str = "\
probenet-merged: fold collectors' snapshot frames into one fleet report

USAGE:
    probenet-merged --files <frames.bin>... [--check <golden.json> | --bless <out.json>]
    probenet-merged --listen <addr> --expect <n> [--check <golden.json> | --bless <out.json>]
    probenet-merged --unix <path> --expect <n> [--check <golden.json> | --bless <out.json>]

OPTIONS:
    --files <f>...     read each file as one collector's frame stream
    --listen <addr>    accept TCP connections, one per collector
    --unix <path>      accept Unix-socket connections, one per collector
    --expect <n>       number of collector connections to accept (sockets only)
    --check <golden>   compare the folded report to a golden JSON; exit 1 on drift
    --bless <out>      write the folded report JSON to <out>
    --help             print this help
";

enum Source {
    Files(Vec<PathBuf>),
    Tcp { addr: String, expect: usize },
    Unix { path: PathBuf, expect: usize },
}

enum Sink {
    Print,
    Check(PathBuf),
    Bless(PathBuf),
}

struct Args {
    source: Source,
    sink: Sink,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut listen: Option<String> = None;
    let mut unix: Option<PathBuf> = None;
    let mut expect: Option<usize> = None;
    let mut check: Option<PathBuf> = None;
    let mut bless: Option<PathBuf> = None;

    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--files" => {
                // Consume every following operand up to the next flag.
                while argv.get(i + 1).is_some_and(|v| !v.starts_with("--")) {
                    i += 1;
                    files.push(PathBuf::from(&argv[i]));
                }
                if files.is_empty() {
                    return Err("--files needs at least one path".into());
                }
            }
            "--listen" => listen = Some(value(&mut i, "--listen")?),
            "--unix" => unix = Some(PathBuf::from(value(&mut i, "--unix")?)),
            "--expect" => {
                let v = value(&mut i, "--expect")?;
                expect = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--expect: not a count: {v}"))?,
                );
            }
            "--check" => check = Some(PathBuf::from(value(&mut i, "--check")?)),
            "--bless" => bless = Some(PathBuf::from(value(&mut i, "--bless")?)),
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }

    let source = match (files.is_empty(), listen, unix) {
        (false, None, None) => Source::Files(files),
        (true, Some(addr), None) => Source::Tcp {
            addr,
            expect: expect.ok_or_else(|| "--listen requires --expect".to_string())?,
        },
        (true, None, Some(path)) => Source::Unix {
            path,
            expect: expect.ok_or_else(|| "--unix requires --expect".to_string())?,
        },
        (true, None, None) => return Err("pick a source: --files, --listen, or --unix".into()),
        _ => return Err("pick exactly one source: --files, --listen, or --unix".into()),
    };
    let sink = match (check, bless) {
        (None, None) => Sink::Print,
        (Some(p), None) => Sink::Check(p),
        (None, Some(p)) => Sink::Bless(p),
        (Some(_), Some(_)) => return Err("--check and --bless are mutually exclusive".into()),
    };
    Ok(Args { source, sink })
}

fn fold(source: Source) -> Result<CollectorReport, MergeError> {
    match source {
        Source::Files(paths) => merge_files(&paths),
        Source::Tcp { addr, expect } => {
            let listener = TcpListener::bind(&addr)?;
            eprintln!(
                "probenet-merged: listening on {}, expecting {expect} collector(s)",
                listener.local_addr()?
            );
            serve_tcp(&listener, expect)
        }
        Source::Unix { path, expect } => serve_unix_source(&path, expect),
    }
}

#[cfg(unix)]
fn serve_unix_source(path: &std::path::Path, expect: usize) -> Result<CollectorReport, MergeError> {
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    eprintln!(
        "probenet-merged: listening on {}, expecting {expect} collector(s)",
        path.display()
    );
    let report = probenet_merged::serve_unix(&listener, expect);
    let _ = std::fs::remove_file(path);
    report
}

#[cfg(not(unix))]
fn serve_unix_source(
    _path: &std::path::Path,
    _expect: usize,
) -> Result<CollectorReport, MergeError> {
    Err(MergeError::Io(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "unix sockets are not available on this platform",
    )))
}

fn run(args: Args) -> Result<ExitCode, String> {
    let report = fold(args.source).map_err(|e| e.to_string())?;
    let rendered = format!("{}\n", report.to_json());
    match args.sink {
        Sink::Print => {
            print!("{rendered}");
            Ok(ExitCode::SUCCESS)
        }
        Sink::Check(golden) => {
            let want = std::fs::read_to_string(&golden)
                .map_err(|e| format!("read {}: {e}", golden.display()))?;
            if want == rendered {
                eprintln!("probenet-merged: report matches {}", golden.display());
                Ok(ExitCode::SUCCESS)
            } else {
                eprintln!(
                    "probenet-merged: folded report drifts from {} ({} vs {} bytes); \
                     re-bless with `repro --stream --bless` if the change is intended",
                    golden.display(),
                    rendered.len(),
                    want.len()
                );
                Ok(ExitCode::FAILURE)
            }
        }
        Sink::Bless(out) => {
            std::fs::write(&out, rendered).map_err(|e| format!("write {}: {e}", out.display()))?;
            eprintln!("probenet-merged: wrote {}", out.display());
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv) {
        Ok(args) => match run(args) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("probenet-merged: {msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("probenet-merged: {msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
        }
    }
}
