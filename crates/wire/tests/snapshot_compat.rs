//! Forward-compatibility proof for the snapshot wire format.
//!
//! DESIGN.md §14 promises that a version-1 reader, faced with a frame
//! written by a newer collector, skips the sections it does not know and
//! carries them through a re-encode byte-exactly. Until the mesh layer
//! added its per-hop annotation section (`TAG_HOPS`, tag 11) that path
//! had never seen a *real* newer frame — these tests exercise it from
//! both directions:
//!
//! * a synthetic unknown section spliced into a valid frame survives a
//!   decode → re-encode round trip untouched, and
//! * a genuine v2 frame (with hop annotations) read through the
//!   reconstructed v1 reader (`decode_with_max_tag(MAX_TAG_V1)`) yields
//!   the same estimator state as the v1 view of the frame, with the hop
//!   section preserved verbatim in `extensions`.

use probenet_stream::{BankConfig, EstimatorBank, SessionKey, StreamRecord};
use probenet_wire::snapshot::{
    frame_len, HopAnnotation, SessionFrame, FRAME_HEADER_BYTES, MAX_TAG_V1, TAG_HOPS,
};

fn bank_with(records: u64, seed: u64) -> EstimatorBank {
    let mut bank = EstimatorBank::new(BankConfig::bolot(20.0, 72, 1_000_000));
    let mut state = seed;
    for i in 0..records {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        bank.push(&StreamRecord {
            seq: i,
            sent_at_ns: i * 20_000_000,
            rtt_ns: (!state.is_multiple_of(7)).then_some(90_000_000 + state % 60_000_000),
        });
    }
    bank
}

fn frame_with(records: u64, seed: u64) -> SessionFrame {
    SessionFrame {
        key: SessionKey::new("compat", 20, seed),
        first_seq: 0,
        records,
        dropped: 2,
        bank: bank_with(records, seed),
        interim: Vec::new(),
        hops: Vec::new(),
        extensions: Vec::new(),
    }
}

/// Splice an unknown section (tag + u32 length + body) onto the end of a
/// frame's payload, patching the header's payload-length field.
fn splice_section(frame: &[u8], tag: u8, body: &[u8]) -> Vec<u8> {
    let mut out = frame.to_vec();
    out.push(tag);
    out.extend_from_slice(
        &u32::try_from(body.len())
            .expect("test body fits in u32")
            .to_be_bytes(),
    );
    out.extend_from_slice(body);
    let payload_len = u32::try_from(out.len() - FRAME_HEADER_BYTES).expect("payload fits in u32");
    out[6..10].copy_from_slice(&payload_len.to_be_bytes());
    out
}

#[test]
fn unknown_section_is_skipped_and_carried_through_byte_exactly() {
    let original = frame_with(400, 11);
    let baseline = original.encode();
    let body = [0xde, 0xad, 0xbe, 0xef, 0x42];
    let spliced = splice_section(&baseline, 42, &body);

    let (decoded, used) = SessionFrame::decode(&spliced).expect("unknown section decodes");
    assert_eq!(used, spliced.len(), "decode consumes the whole frame");

    // Every v1 field is untouched by the foreign section...
    assert_eq!(decoded.key, original.key);
    assert_eq!(decoded.records, original.records);
    assert_eq!(decoded.dropped, original.dropped);
    assert_eq!(decoded.bank.wire_state(), original.bank.wire_state());
    // ...and the section itself lands in `extensions`, verbatim.
    assert_eq!(decoded.extensions, vec![(42u8, body.to_vec())]);

    // Re-encode reproduces the spliced stream byte-for-byte: a relay that
    // decodes and re-emits does not strip what it does not understand.
    assert_eq!(decoded.encode(), spliced);
}

#[test]
fn v1_reader_skips_a_real_v2_hops_frame_byte_exactly() {
    let mut v2 = frame_with(250, 3);
    v2.hops = vec![
        HopAnnotation {
            link: 0,
            name: "access:h00".into(),
            probe_drops: 3,
        },
        HopAnnotation {
            link: 7,
            name: "backbone:r1-r2".into(),
            probe_drops: 11,
        },
    ];
    let v2_bytes = v2.encode();

    // The same frame as the v1 writer would have produced it.
    let mut v1_view = v2.clone();
    v1_view.hops.clear();
    let v1_bytes = v1_view.encode();
    assert_ne!(
        v1_bytes, v2_bytes,
        "the hop section is actually on the wire"
    );

    // A reconstructed v1 reader (max tag 10) takes the unknown-section
    // path for tag 11 and must see exactly what it would have seen from
    // the v1 writer.
    let (skipped, used) =
        SessionFrame::decode_with_max_tag(&v2_bytes, MAX_TAG_V1).expect("v1 reader decodes v2");
    assert_eq!(used, v2_bytes.len());
    assert_eq!(skipped.key, v2.key);
    assert_eq!(skipped.records, v2.records);
    assert_eq!(skipped.dropped, v2.dropped);
    assert_eq!(skipped.bank.wire_state(), v2.bank.wire_state());
    assert!(skipped.hops.is_empty(), "v1 reader has no hops field");

    // The skipped section is the byte-exact TAG_HOPS body...
    assert_eq!(skipped.extensions.len(), 1);
    assert_eq!(skipped.extensions[0].0, TAG_HOPS);
    // ...so the v1 reader's re-encode reproduces the v2 stream verbatim
    // (carry-through), while dropping the extension reproduces v1.
    assert_eq!(skipped.encode(), v2_bytes);
    let mut stripped = skipped.clone();
    stripped.extensions.clear();
    assert_eq!(stripped.encode(), v1_bytes);
}

#[test]
fn v2_reader_round_trips_hops_natively() {
    let mut v2 = frame_with(120, 9);
    v2.hops = vec![HopAnnotation {
        link: 3,
        name: "backbone:r0-r1".into(),
        probe_drops: 5,
    }];
    let bytes = v2.encode();
    let (decoded, used) = SessionFrame::decode(&bytes).expect("v2 reader decodes");
    assert_eq!(used, bytes.len());
    assert_eq!(decoded.hops, v2.hops);
    assert!(decoded.extensions.is_empty());
    assert_eq!(decoded.encode(), bytes);
}

#[test]
fn frame_len_reports_extended_frames_and_rejects_garbage() {
    let mut v2 = frame_with(60, 4);
    v2.hops = vec![HopAnnotation {
        link: 1,
        name: "access:h01".into(),
        probe_drops: 0,
    }];
    let bytes = v2.encode();
    assert_eq!(
        frame_len(&bytes).expect("valid header"),
        Some(bytes.len()),
        "frame_len spans the v2 sections"
    );
    assert_eq!(
        frame_len(&bytes[..FRAME_HEADER_BYTES - 1]).expect("short"),
        None
    );
    assert!(
        frame_len(&[0u8; FRAME_HEADER_BYTES]).is_err(),
        "bad magic is eager"
    );
}
