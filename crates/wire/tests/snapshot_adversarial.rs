//! Adversarial corpus for the snapshot frame decoder: deterministic
//! fuzz-style coverage proving the decoder is *total* — truncations at
//! every byte boundary, single-bit flips at every position, corrupted
//! magic/version, and inflated/deflated length prefixes all produce a
//! typed [`WireError`] (or a still-valid `Ok`), never a panic and never a
//! read past the input.
//!
//! The exhaustive sweeps run on a frame built from a deliberately tiny
//! [`BankConfig`] (small histograms, small phase grid) so every byte
//! boundary and every bit is covered in milliseconds; a realistic
//! Bolot-config frame is swept at a coarse stride on top.

use probenet_stream::{BankConfig, EstimatorBank, SessionKey, StreamRecord};
use probenet_wire::snapshot::SessionFrame;
use probenet_wire::{WireError, FRAME_HEADER_BYTES, SNAPSHOT_VERSION};

/// A config chosen for a compact wire image, not realism.
fn tiny_config() -> BankConfig {
    BankConfig {
        delta_ms: 20.0,
        wire_bytes: 72,
        clock_resolution_ns: 1_000_000,
        mu_bps: 128_000.0,
        workload_max_ms: 10.0,
        rtt_lo_ms: 0.0,
        rtt_hi_ms: 500.0,
        rtt_bins: 16,
        acf_window: 8,
        acf_max_lag: 4,
        phase_lo_ms: 0.0,
        phase_hi_ms: 500.0,
        phase_bins: 4,
    }
}

fn frame_with(config: BankConfig, records: u64) -> SessionFrame {
    let mut bank = EstimatorBank::new(config);
    let mut state = 0x243f_6a88_85a3_08d3u64;
    for i in 0..records {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        bank.push(&StreamRecord {
            seq: i,
            sent_at_ns: i * 20_000_000,
            rtt_ns: (!state.is_multiple_of(5)).then_some(80_000_000 + state % 90_000_000),
        });
    }
    SessionFrame {
        key: SessionKey::new("adversarial", 20, 7),
        first_seq: 0,
        records,
        dropped: 1,
        bank,
        interim: Vec::new(),
        hops: Vec::new(),
        extensions: Vec::new(),
    }
}

/// Decode must be total: `Ok` or a typed error, never a panic — and on
/// `Ok` it must not have read past the input, and the decoded bank must be
/// safe to summarize (the validators' whole point).
fn assert_total(bytes: &[u8]) {
    if let Ok((frame, used)) = SessionFrame::decode(bytes) {
        assert!(
            used <= bytes.len(),
            "decoder over-read: {used} > {}",
            bytes.len()
        );
        let _ = frame.bank.snapshot();
    }
}

#[test]
fn truncation_at_every_byte_boundary_is_a_typed_error() {
    let bytes = frame_with(tiny_config(), 64).encode();
    for n in 0..bytes.len() {
        match SessionFrame::decode(&bytes[..n]) {
            Err(_) => {}
            Ok(_) => panic!("truncated frame ({n} of {} bytes) decoded Ok", bytes.len()),
        }
    }
    // The untruncated frame consumes itself exactly.
    let (_, used) = SessionFrame::decode(&bytes).expect("whole frame decodes");
    assert_eq!(used, bytes.len());
}

#[test]
fn single_bit_flips_never_panic_or_over_read() {
    let bytes = frame_with(tiny_config(), 48).encode();
    let mut corrupt = bytes.clone();
    for i in 0..bytes.len() {
        for bit in 0..8 {
            corrupt[i] ^= 1 << bit;
            assert_total(&corrupt);
            corrupt[i] ^= 1 << bit;
        }
    }
    assert_eq!(corrupt, bytes, "sweep must restore the original");
}

#[test]
fn realistic_frame_survives_strided_corruption() {
    // The full Bolot layout (64×64 phase grid, 400-bin RTT histogram) at a
    // coarse deterministic stride: cheap enough for every CI run, still
    // covering every section of the much larger image.
    let bytes = frame_with(BankConfig::bolot(20.0, 72, 1_000_000), 256).encode();
    let mut corrupt = bytes.clone();
    for i in (0..bytes.len()).step_by(211) {
        for bit in 0..8 {
            corrupt[i] ^= 1 << bit;
            assert_total(&corrupt);
            corrupt[i] ^= 1 << bit;
        }
    }
    for n in (0..bytes.len()).step_by(97) {
        assert!(
            SessionFrame::decode(&bytes[..n]).is_err(),
            "truncated realistic frame ({n} bytes) decoded Ok"
        );
    }
}

#[test]
fn wrong_magic_and_version_are_typed_errors() {
    let bytes = frame_with(tiny_config(), 8).encode();

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 0xff;
    assert!(matches!(
        SessionFrame::decode(&wrong_magic),
        Err(WireError::BadMagic { .. })
    ));

    let mut wrong_version = bytes.clone();
    wrong_version[4] = SNAPSHOT_VERSION + 1;
    assert!(matches!(
        SessionFrame::decode(&wrong_version),
        Err(WireError::BadVersion { .. })
    ));

    let mut wrong_type = bytes;
    wrong_type[5] = 0xee;
    assert!(SessionFrame::decode(&wrong_type).is_err());
}

#[test]
fn tampered_payload_length_prefix_is_a_typed_error() {
    let bytes = frame_with(tiny_config(), 8).encode();
    let payload_len = u32::from_be_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
    assert_eq!(FRAME_HEADER_BYTES + payload_len, bytes.len());

    // Inflated: claims more payload than the input holds.
    for extra in [1u32, 255, u32::MAX - payload_len as u32] {
        let mut inflated = bytes.clone();
        let claimed = (payload_len as u32 + extra).to_be_bytes();
        inflated[6..10].copy_from_slice(&claimed);
        assert!(
            matches!(
                SessionFrame::decode(&inflated),
                Err(WireError::Truncated { .. })
            ),
            "inflated payload length (+{extra}) must read as truncation"
        );
    }

    // Deflated: cuts known sections short mid-stream.
    for missing in [1usize, 7, payload_len / 2, payload_len] {
        let mut deflated = bytes.clone();
        let claimed = (payload_len - missing) as u32;
        deflated[6..10].copy_from_slice(&claimed.to_be_bytes());
        assert!(
            SessionFrame::decode(&deflated).is_err(),
            "deflated payload length (-{missing}) must be a typed error"
        );
    }
}

/// Walk the encoded payload's `(tag, len, body)` sections, returning
/// `(offset_of_len_field, len)` for each — the test's own independent
/// reading of the grammar.
fn section_length_fields(bytes: &[u8]) -> Vec<(usize, u32)> {
    let mut out = Vec::new();
    let mut at = FRAME_HEADER_BYTES;
    while at < bytes.len() {
        let len = u32::from_be_bytes([bytes[at + 1], bytes[at + 2], bytes[at + 3], bytes[at + 4]]);
        out.push((at + 1, len));
        at += 5 + len as usize;
    }
    assert_eq!(at, bytes.len(), "section walk must consume the frame");
    out
}

#[test]
fn tampered_section_length_prefixes_are_typed_errors() {
    let bytes = frame_with(tiny_config(), 8).encode();
    let sections = section_length_fields(&bytes);
    assert!(sections.len() >= 9, "expected every estimator section");
    for (off, len) in sections {
        // Inflating a section's claimed length either overruns the payload
        // (truncation) or steals the next section's bytes (BadLength from
        // the section's exact-consumption check, or a missing-section
        // error) — all typed, never a panic.
        for delta in [1i64, 8, 1024, i64::from(u32::MAX - len)] {
            let claimed = (i64::from(len) + delta) as u32;
            let mut tampered = bytes.clone();
            tampered[off..off + 4].copy_from_slice(&claimed.to_be_bytes());
            assert!(
                SessionFrame::decode(&tampered).is_err(),
                "inflated section length at {off} (+{delta}) must be a typed error"
            );
        }
        if len > 0 {
            let mut tampered = bytes.clone();
            tampered[off..off + 4].copy_from_slice(&(len - 1).to_be_bytes());
            assert!(
                SessionFrame::decode(&tampered).is_err(),
                "deflated section length at {off} must be a typed error"
            );
        }
    }
}

#[test]
fn arbitrary_prefixes_of_noise_never_panic() {
    // Deterministic xorshift noise, decoded at every length up to 4 KiB.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let noise: Vec<u8> = (0..4096)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 0xff) as u8
        })
        .collect();
    for n in 0..noise.len() {
        assert_total(&noise[..n]);
    }
}
