//! Wire-format error type.

use core::fmt;

/// Errors raised while parsing or building packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header requires.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A magic/version field did not match.
    BadMagic {
        /// Value found on the wire.
        found: u32,
    },
    /// An unsupported protocol version.
    BadVersion {
        /// Version found on the wire.
        found: u8,
    },
    /// A checksum did not verify.
    BadChecksum,
    /// A length field disagrees with the buffer.
    BadLength {
        /// Length claimed by the header.
        claimed: usize,
        /// Actual bytes available.
        actual: usize,
    },
    /// A field held an invalid value.
    BadField(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated packet: need {needed} bytes, got {got}")
            }
            WireError::BadMagic { found } => write!(f, "bad magic: {found:#x}"),
            WireError::BadVersion { found } => write!(f, "unsupported version {found}"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::BadLength { claimed, actual } => {
                write!(f, "bad length field: claims {claimed}, buffer has {actual}")
            }
            WireError::BadField(name) => write!(f, "invalid field: {name}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::Truncated { needed: 32, got: 4 };
        assert!(e.to_string().contains("32"));
        assert!(e.to_string().contains("4"));
        assert!(WireError::BadChecksum.to_string().contains("checksum"));
        assert!(WireError::BadMagic { found: 0xdead }
            .to_string()
            .contains("0xdead"));
    }
}
