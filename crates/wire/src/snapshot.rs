//! Versioned snapshot frames: the serialized form of one collector
//! session's complete estimator state, built so fleet-wide merge daemons
//! can fold shards produced on different hosts (DESIGN.md §14).
//!
//! A frame carries everything [`probenet_stream::SessionReport`] knows
//! except the final [`BankSnapshot`] — that
//! is recomputed from the decoded bank, which round-trips bit-for-bit, so
//! a merged report renders byte-identically to a single-process collector.
//!
//! Layout (big-endian throughout, like every codec in this crate):
//!
//! ```text
//!  0        4    5     6         10
//!  +--------+----+-----+---------+----------------------------+
//!  | magic  |ver |type | pay_len |   payload (pay_len bytes)  |
//!  | "PNSF" |u8  |u8   |  u32    |   tagged sections          |
//!  +--------+----+-----+---------+----------------------------+
//! ```
//!
//! The payload is a sequence of tagged sections — `tag u8`, `len u32`,
//! `len` bytes — in ascending tag order. Decoders **skip unknown tags**
//! (forward compatibility: a newer writer may append sections), reject
//! duplicate or truncated known sections, and require every section a
//! version-1 bank needs. Skipped sections are not dropped: they are kept
//! verbatim, in encounter order, in [`SessionFrame::extensions`] and
//! re-emitted by [`SessionFrame::encode`] after every known section —
//! since writers append sections in ascending tag order, an
//! unknown-section frame re-encodes byte-identically, so an older relay
//! can forward newer frames without destroying data it cannot parse.
//! Floats travel as IEEE-754 bit patterns
//! (`f64::to_bits`), so encode∘decode is bit-exact, `±∞` included.
//!
//! The version byte is reserved for *incompatible* layout changes (a v1
//! reader rejects any other version outright); additive evolution happens
//! on the tag axis. The first such addition is the per-hop annotation
//! section ([`TAG_HOPS`], carrying [`HopAnnotation`] rows from the mesh
//! campaign), which a reader predating it skips via the unknown-tag path
//! — `crates/wire/tests/snapshot_compat.rs` proves that skip byte-exact.
//!
//! All decoders are total: arbitrary bytes produce `Ok` or a typed
//! [`WireError`], never a panic — and stronger, any frame that decodes
//! `Ok` yields a bank whose `snapshot()`/`to_json()` path cannot panic
//! (the per-estimator invariants are re-validated by
//! [`EstimatorBank::from_wire_state`], and interim snapshots must be
//! canonical JSON).

use crate::error::WireError;
use probenet_stats::MomentsState;
use probenet_stream::bank::BankWireState;
use probenet_stream::lindley::WorkloadWireState;
use probenet_stream::loss::LossWireState;
use probenet_stream::phase::PhaseWireState;
use probenet_stream::{
    BankConfig, BankSnapshot, EstimatorBank, InterimSnapshot, SessionKey, SessionReport,
};

/// Identifies probenet snapshot frames on the wire ("PNSF").
pub const SNAPSHOT_MAGIC: u32 = 0x504e_5346;
/// Current snapshot frame format version.
pub const SNAPSHOT_VERSION: u8 = 1;
/// Frame type: one session's complete estimator state.
pub const FRAME_SESSION: u8 = 1;
/// Fixed frame header size: magic, version, type, payload length.
pub const FRAME_HEADER_BYTES: usize = 10;

/// Per-hop annotation section: one [`HopAnnotation`] row per link of the
/// probed path. The newest tag — readers predating it treat it as an
/// unknown section and carry it through untouched.
pub const TAG_HOPS: u8 = 11;

/// Highest section tag the original version-1 reader parsed. Passing this
/// to [`SessionFrame::decode_with_max_tag`] reproduces that reader
/// exactly: every later tag takes the unknown-section path.
pub const MAX_TAG_V1: u8 = 10;

const TAG_SESSION_META: u8 = 1;
const TAG_CONFIG: u8 = 2;
const TAG_LOSS: u8 = 3;
const TAG_MOMENTS: u8 = 4;
const TAG_RTT_HIST: u8 = 5;
const TAG_SKETCH: u8 = 6;
const TAG_ACF: u8 = 7;
const TAG_WORKLOAD: u8 = 8;
const TAG_PHASE: u8 = 9;
const TAG_INTERIM: u8 = 10;

/// What one probe session observed at one hop of its path: the mesh
/// campaign's per-link ground truth, shipped next to the end-to-end bank
/// so the fleet fold can cross-check its tomography estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopAnnotation {
    /// Stable link id within the campaign's topology.
    pub link: u32,
    /// Human-readable link name (topology-assigned).
    pub name: String,
    /// Probe packets this session lost at this hop (either direction).
    pub probe_drops: u64,
}

/// One collector session's state, as shipped between hosts.
#[derive(Debug, Clone)]
pub struct SessionFrame {
    /// The session's identity.
    pub key: SessionKey,
    /// Sequence number of the first record this shard folded (orders
    /// same-key shards deterministically at the merge daemon; 0 for a
    /// whole-session frame).
    pub first_seq: u64,
    /// Records folded into the bank.
    pub records: u64,
    /// Records the producer's `offer` dropped.
    pub dropped: u64,
    /// The full estimator bank.
    pub bank: EstimatorBank,
    /// Interim snapshots taken mid-stream (cannot be recomputed).
    pub interim: Vec<InterimSnapshot>,
    /// Per-hop annotations ([`TAG_HOPS`]); empty for single-path
    /// collectors, so their frames encode exactly as version-1 readers
    /// expect.
    pub hops: Vec<HopAnnotation>,
    /// Sections this reader did not recognize, verbatim `(tag, body)` in
    /// encounter order. [`SessionFrame::encode`] re-emits them after every
    /// known section, so decode∘encode preserves a newer writer's frame
    /// byte-for-byte.
    pub extensions: Vec<(u8, Vec<u8>)>,
}

impl SessionFrame {
    /// A frame carrying everything of `report` (`first_seq` = 0: the frame
    /// represents the session from its first record).
    pub fn from_report(report: &SessionReport) -> Self {
        SessionFrame {
            key: report.key.clone(),
            first_seq: 0,
            records: report.records,
            dropped: report.dropped,
            bank: report.bank.clone(),
            interim: report.interim.clone(),
            hops: Vec::new(),
            extensions: Vec::new(),
        }
    }

    /// Rebuild the collector-report view: the final snapshot is recomputed
    /// from the bank, which round-trips bit-exactly through the codec.
    pub fn into_report(self) -> SessionReport {
        SessionReport {
            snapshot: self.bank.snapshot(),
            key: self.key,
            records: self.records,
            dropped: self.dropped,
            interim: self.interim,
            bank: self.bank,
        }
    }

    /// Encode into a fresh vector.
    ///
    /// # Panics
    /// Panics if a variable-length field exceeds `u32::MAX` entries — not
    /// reachable from any in-memory bank (the largest, the sketch, caps at
    /// 7 424 buckets).
    pub fn encode(&self) -> Vec<u8> {
        let state = self.bank.wire_state();
        let mut payload = Vec::with_capacity(4096);

        section(&mut payload, TAG_SESSION_META, |out| {
            put_bytes(out, self.key.path.as_bytes());
            put_u64(out, self.key.delta_ns);
            put_u64(out, self.key.seed);
            put_u64(out, self.first_seq);
            put_u64(out, self.records);
            put_u64(out, self.dropped);
        });
        section(&mut payload, TAG_CONFIG, |out| {
            let c = &state.config;
            put_f64(out, c.delta_ms);
            put_u32(out, c.wire_bytes);
            put_u64(out, c.clock_resolution_ns);
            put_f64(out, c.mu_bps);
            put_f64(out, c.workload_max_ms);
            put_f64(out, c.rtt_lo_ms);
            put_f64(out, c.rtt_hi_ms);
            put_len(out, c.rtt_bins);
            put_len(out, c.acf_window);
            put_len(out, c.acf_max_lag);
            put_f64(out, c.phase_lo_ms);
            put_f64(out, c.phase_hi_ms);
            put_len(out, c.phase_bins);
        });
        section(&mut payload, TAG_LOSS, |out| {
            let l = &state.loss;
            put_u64(out, l.sent);
            put_u64(out, l.lost);
            put_u64(out, l.n00);
            put_u64(out, l.n01);
            put_u64(out, l.n10);
            put_u64(out, l.n11);
            put_opt_bool(out, l.first);
            put_opt_bool(out, l.last);
            put_u64(out, l.head_run);
            put_u64(out, l.tail_run);
            put_u64s(out, &l.closed);
        });
        section(&mut payload, TAG_MOMENTS, |out| {
            let m = &state.moments;
            put_u64(out, m.n);
            put_f64(out, m.mean);
            put_f64(out, m.m2);
            put_f64(out, m.min);
            put_f64(out, m.max);
        });
        section(&mut payload, TAG_RTT_HIST, |out| {
            put_u64(out, state.rtt_underflow);
            put_u64(out, state.rtt_overflow);
            put_u64s(out, &state.rtt_counts);
        });
        section(&mut payload, TAG_SKETCH, |out| {
            put_u64s(out, &state.sketch_counts);
        });
        section(&mut payload, TAG_ACF, |out| {
            put_u64(out, state.acf_evicted);
            put_f64s(out, &state.acf_samples);
        });
        section(&mut payload, TAG_WORKLOAD, |out| {
            let w = &state.workload;
            put_f64(out, w.b_sum);
            put_u64(out, w.pairs);
            put_opt_rtt(out, w.first);
            put_opt_rtt(out, w.last);
            put_u64(out, w.hist_underflow);
            put_u64(out, w.hist_overflow);
            put_u64s(out, &w.hist_counts);
        });
        section(&mut payload, TAG_PHASE, |out| {
            put_u64(out, state.phase.pairs);
            put_u64(out, state.phase.out_of_range);
            put_u64s(out, &state.phase.grid);
        });
        section(&mut payload, TAG_INTERIM, |out| {
            put_len(out, self.interim.len());
            for i in &self.interim {
                put_u64(out, i.at_records);
                let json =
                    serde_json::to_string(&i.snapshot).expect("interim snapshot is JSON-safe");
                put_bytes(out, json.as_bytes());
            }
        });
        // Emitted only when present, so a hop-less frame is byte-identical
        // to what the original version-1 writer produced (pinned by the
        // checked-in frame shards).
        if !self.hops.is_empty() {
            section(&mut payload, TAG_HOPS, |out| {
                put_len(out, self.hops.len());
                for h in &self.hops {
                    put_u32(out, h.link);
                    put_bytes(out, h.name.as_bytes());
                    put_u64(out, h.probe_drops);
                }
            });
        }
        // Carry-through: sections from a newer writer, re-emitted verbatim.
        // Writers append new sections in ascending tag order, so replaying
        // them after the known sections reproduces the original payload.
        for (tag, body) in &self.extensions {
            payload.push(*tag);
            put_bytes(&mut payload, body);
        }

        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        put_u32(&mut frame, SNAPSHOT_MAGIC);
        frame.push(SNAPSHOT_VERSION);
        frame.push(FRAME_SESSION);
        put_len(&mut frame, payload.len());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decode one frame from the head of `data`; returns the frame and the
    /// bytes consumed (trailing bytes are the next frame of a stream).
    pub fn decode(data: &[u8]) -> Result<(Self, usize), WireError> {
        Self::decode_with_max_tag(data, TAG_HOPS)
    }

    /// [`SessionFrame::decode`] as a reader that only knows section tags
    /// `<= max_tag` would perform it: later tags take the unknown-section
    /// path into [`SessionFrame::extensions`]. `decode(..)` is
    /// `decode_with_max_tag(.., TAG_HOPS)`; passing [`MAX_TAG_V1`]
    /// reproduces the original version-1 reader exactly — the
    /// forward-compat proof suite uses this to show an old reader skips a
    /// newer frame's sections byte-exactly.
    pub fn decode_with_max_tag(data: &[u8], max_tag: u8) -> Result<(Self, usize), WireError> {
        let mut r = Reader::new(data);
        let magic = r.u32()?;
        if magic != SNAPSHOT_MAGIC {
            return Err(WireError::BadMagic { found: magic });
        }
        let version = r.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(WireError::BadVersion { found: version });
        }
        let frame_type = r.u8()?;
        if frame_type != FRAME_SESSION {
            return Err(WireError::BadField("frame: unknown frame type"));
        }
        let payload_len = r.len()?;
        let payload = r.take(payload_len)?;
        let frame = decode_payload(payload, max_tag)?;
        Ok((frame, FRAME_HEADER_BYTES + payload_len))
    }
}

/// On-wire length of the frame starting at `data[0]`, if the fixed header
/// is complete: `Ok(None)` with fewer than [`FRAME_HEADER_BYTES`] bytes
/// buffered, otherwise header bytes plus the payload length. Magic,
/// version and frame type are validated eagerly, so an incremental reader
/// (the merge daemon's bounded ingest loop) rejects a garbage stream on
/// its first 10 bytes instead of buffering it to EOF.
pub fn frame_len(data: &[u8]) -> Result<Option<usize>, WireError> {
    if data.len() < FRAME_HEADER_BYTES {
        return Ok(None);
    }
    let mut r = Reader::new(data);
    let magic = r.u32()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = r.u8()?;
    if version != SNAPSHOT_VERSION {
        return Err(WireError::BadVersion { found: version });
    }
    let frame_type = r.u8()?;
    if frame_type != FRAME_SESSION {
        return Err(WireError::BadField("frame: unknown frame type"));
    }
    let payload_len = r.len()?;
    Ok(Some(FRAME_HEADER_BYTES + payload_len))
}

/// Decode a back-to-back stream of frames (the merge daemon's input: one
/// file or socket stream per collector). Empty input is an empty fleet.
pub fn decode_frames(data: &[u8]) -> Result<Vec<SessionFrame>, WireError> {
    let mut frames = Vec::new();
    let mut rest = data;
    while !rest.is_empty() {
        let (frame, used) = SessionFrame::decode(rest)?;
        frames.push(frame);
        rest = &rest[used..];
    }
    Ok(frames)
}

struct Sections<'a> {
    meta: Option<&'a [u8]>,
    config: Option<&'a [u8]>,
    loss: Option<&'a [u8]>,
    moments: Option<&'a [u8]>,
    rtt: Option<&'a [u8]>,
    sketch: Option<&'a [u8]>,
    acf: Option<&'a [u8]>,
    workload: Option<&'a [u8]>,
    phase: Option<&'a [u8]>,
    interim: Option<&'a [u8]>,
    hops: Option<&'a [u8]>,
    extensions: Vec<(u8, Vec<u8>)>,
}

fn decode_payload(payload: &[u8], max_tag: u8) -> Result<SessionFrame, WireError> {
    let mut s = Sections {
        meta: None,
        config: None,
        loss: None,
        moments: None,
        rtt: None,
        sketch: None,
        acf: None,
        workload: None,
        phase: None,
        interim: None,
        hops: None,
        extensions: Vec::new(),
    };
    let mut r = Reader::new(payload);
    while r.remaining() > 0 {
        let tag = r.u8()?;
        let len = r.len()?;
        let body = r.take(len)?;
        let known = tag <= max_tag;
        let slot = match tag {
            TAG_SESSION_META if known => &mut s.meta,
            TAG_CONFIG if known => &mut s.config,
            TAG_LOSS if known => &mut s.loss,
            TAG_MOMENTS if known => &mut s.moments,
            TAG_RTT_HIST if known => &mut s.rtt,
            TAG_SKETCH if known => &mut s.sketch,
            TAG_ACF if known => &mut s.acf,
            TAG_WORKLOAD if known => &mut s.workload,
            TAG_PHASE if known => &mut s.phase,
            TAG_INTERIM if known => &mut s.interim,
            TAG_HOPS if known => &mut s.hops,
            // Forward compatibility: a newer writer appended a section this
            // reader does not know. Skip it — but keep the bytes, so the
            // frame re-encodes without losing the newer writer's data.
            _ => {
                s.extensions.push((tag, body.to_vec()));
                continue;
            }
        };
        if slot.is_some() {
            return Err(WireError::BadField("frame: duplicate section"));
        }
        *slot = Some(body);
    }

    fn need<'a>(sec: Option<&'a [u8]>, what: &'static str) -> Result<&'a [u8], WireError> {
        sec.ok_or(WireError::BadField(what))
    }

    // Session identity and counters.
    let mut m = Reader::new(need(s.meta, "frame: missing session section")?);
    let path_bytes = m.bytes()?;
    let path = String::from_utf8(path_bytes.to_vec())
        .map_err(|_| WireError::BadField("session: path is not UTF-8"))?;
    let key = SessionKey {
        path,
        delta_ns: m.u64()?,
        seed: m.u64()?,
    };
    let first_seq = m.u64()?;
    let records = m.u64()?;
    let dropped = m.u64()?;
    m.finish()?;

    // Bank config (drives every derived layout below).
    let mut c = Reader::new(need(s.config, "frame: missing config section")?);
    let config = BankConfig {
        delta_ms: c.f64()?,
        wire_bytes: c.u32()?,
        clock_resolution_ns: c.u64()?,
        mu_bps: c.f64()?,
        workload_max_ms: c.f64()?,
        rtt_lo_ms: c.f64()?,
        rtt_hi_ms: c.f64()?,
        rtt_bins: c.len()?,
        acf_window: c.len()?,
        acf_max_lag: c.len()?,
        phase_lo_ms: c.f64()?,
        phase_hi_ms: c.f64()?,
        phase_bins: c.len()?,
    };
    c.finish()?;

    let mut l = Reader::new(need(s.loss, "frame: missing loss section")?);
    let loss = LossWireState {
        sent: l.u64()?,
        lost: l.u64()?,
        n00: l.u64()?,
        n01: l.u64()?,
        n10: l.u64()?,
        n11: l.u64()?,
        first: l.opt_bool()?,
        last: l.opt_bool()?,
        head_run: l.u64()?,
        tail_run: l.u64()?,
        closed: l.u64s()?,
    };
    l.finish()?;

    let mut mo = Reader::new(need(s.moments, "frame: missing moments section")?);
    let moments = MomentsState {
        n: mo.u64()?,
        mean: mo.f64()?,
        m2: mo.f64()?,
        min: mo.f64()?,
        max: mo.f64()?,
    };
    mo.finish()?;

    let mut h = Reader::new(need(s.rtt, "frame: missing rtt histogram section")?);
    let rtt_underflow = h.u64()?;
    let rtt_overflow = h.u64()?;
    let rtt_counts = h.u64s()?;
    h.finish()?;

    let mut q = Reader::new(need(s.sketch, "frame: missing sketch section")?);
    let sketch_counts = q.u64s()?;
    q.finish()?;

    let mut a = Reader::new(need(s.acf, "frame: missing acf section")?);
    let acf_evicted = a.u64()?;
    let acf_samples = a.f64s()?;
    a.finish()?;

    let mut w = Reader::new(need(s.workload, "frame: missing workload section")?);
    let b_sum = w.f64()?;
    let pairs = w.u64()?;
    let first = w.opt_rtt()?;
    let last = w.opt_rtt()?;
    let hist_underflow = w.u64()?;
    let hist_overflow = w.u64()?;
    let hist_counts = w.u64s()?;
    w.finish()?;
    // Workload parameters are fully derived from the config; the boundary
    // records are shared with the phase grid (the bank validator re-checks
    // that real banks agree on them).
    let workload = WorkloadWireState {
        delta_ms: config.delta_ms,
        mu_bps: config.mu_bps,
        p_bits: f64::from(config.wire_bytes) * 8.0,
        hist_hi: config.workload_max_ms,
        hist_counts,
        hist_underflow,
        hist_overflow,
        b_sum,
        pairs,
        first,
        last,
    };

    let mut p = Reader::new(need(s.phase, "frame: missing phase section")?);
    let phase_pairs = p.u64()?;
    let phase_oor = p.u64()?;
    let phase_grid = p.u64s()?;
    p.finish()?;
    let phase = PhaseWireState {
        lo: config.phase_lo_ms,
        hi: config.phase_hi_ms,
        bins: config.phase_bins,
        grid: phase_grid,
        pairs: phase_pairs,
        out_of_range: phase_oor,
        first,
        last,
    };

    let bank = EstimatorBank::from_wire_state(BankWireState {
        config,
        loss,
        moments,
        rtt_counts,
        rtt_underflow,
        rtt_overflow,
        sketch_counts,
        acf_evicted,
        acf_samples,
        workload,
        phase,
    })
    .map_err(WireError::BadField)?;

    // Per-hop annotations: optional — frames from single-path collectors
    // (and every frame predating the section) simply omit it.
    let mut hops = Vec::new();
    if let Some(body) = s.hops {
        let mut hr = Reader::new(body);
        let count = hr.len()?;
        for _ in 0..count {
            let link = hr.u32()?;
            let name_bytes = hr.bytes()?;
            let name = String::from_utf8(name_bytes.to_vec())
                .map_err(|_| WireError::BadField("hops: link name is not UTF-8"))?;
            let probe_drops = hr.u64()?;
            hops.push(HopAnnotation {
                link,
                name,
                probe_drops,
            });
        }
        hr.finish()?;
    }

    let mut i = Reader::new(need(s.interim, "frame: missing interim section")?);
    let count = i.len()?;
    let mut interim = Vec::new();
    for _ in 0..count {
        let at_records = i.u64()?;
        let json_bytes = i.bytes()?;
        let json = std::str::from_utf8(json_bytes)
            .map_err(|_| WireError::BadField("interim: snapshot is not UTF-8"))?;
        let snapshot: BankSnapshot = serde_json::from_str(json)
            .map_err(|_| WireError::BadField("interim: snapshot is not valid JSON"))?;
        // Canonicality: the embedded text must be exactly what this
        // workspace's writer emits for the parsed value. This both pins the
        // byte-identical report guarantee and rejects values the writer
        // could never have produced (e.g. an overflowed-to-∞ float, which
        // would panic a later `to_json`).
        let reserialized = serde_json::to_string(&snapshot)
            .map_err(|_| WireError::BadField("interim: snapshot is not JSON-safe"))?;
        if reserialized != json {
            return Err(WireError::BadField("interim: snapshot is not canonical"));
        }
        interim.push(InterimSnapshot {
            at_records,
            snapshot,
        });
    }
    i.finish()?;

    Ok(SessionFrame {
        key,
        first_seq,
        records,
        dropped,
        bank,
        interim,
        hops,
        extensions: s.extensions,
    })
}

// ---------------------------------------------------------------------------
// Writer helpers. Lengths are u32 on the wire; every conversion is checked.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_len(out: &mut Vec<u8>, v: usize) {
    put_u32(out, u32::try_from(v).expect("length fits in u32"));
}

fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_len(out, v.len());
    out.extend_from_slice(v);
}

fn put_u64s(out: &mut Vec<u8>, v: &[u64]) {
    put_len(out, v.len());
    for &x in v {
        put_u64(out, x);
    }
}

fn put_f64s(out: &mut Vec<u8>, v: &[f64]) {
    put_len(out, v.len());
    for &x in v {
        put_f64(out, x);
    }
}

fn put_opt_bool(out: &mut Vec<u8>, v: Option<bool>) {
    out.push(match v {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    });
}

fn put_opt_rtt(out: &mut Vec<u8>, v: Option<Option<u64>>) {
    match v {
        None => out.push(0),
        Some(None) => out.push(1),
        Some(Some(ns)) => {
            out.push(2);
            put_u64(out, ns);
        }
    }
}

/// A section: tag, length prefix, body.
fn section(out: &mut Vec<u8>, tag: u8, write: impl FnOnce(&mut Vec<u8>)) {
    let mut body = Vec::new();
    write(&mut body);
    out.push(tag);
    put_bytes(out, &body);
}

// ---------------------------------------------------------------------------
// Reader: a bounds-checked cursor. Every read validates remaining bytes
// first — no `bytes::Buf` here, whose getters panic on underflow.

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::Truncated {
                needed: n,
                got: self.remaining(),
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Sections must be fully consumed: a known section with trailing bytes
    /// means its length prefix was inflated.
    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::BadLength {
                claimed: self.data.len(),
                actual: self.pos,
            });
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn len(&mut self) -> Result<usize, WireError> {
        Ok(self.u32()? as usize)
    }

    /// A length-prefixed byte string, validated against the remaining
    /// buffer before any allocation.
    fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.len()?;
        if n > self.remaining() {
            return Err(WireError::BadLength {
                claimed: n,
                actual: self.remaining(),
            });
        }
        self.take(n)
    }

    /// A length-prefixed `u64` vector. The claimed element count is
    /// validated against the remaining bytes before the vector is
    /// allocated, so a hostile length prefix cannot force a huge
    /// reservation.
    fn u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.len()?;
        let needed = n
            .checked_mul(8)
            .ok_or(WireError::BadField("length overflow"))?;
        if needed > self.remaining() {
            return Err(WireError::BadLength {
                claimed: needed,
                actual: self.remaining(),
            });
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    /// A length-prefixed `f64` vector (bit patterns), same validation as
    /// [`Reader::u64s`].
    fn f64s(&mut self) -> Result<Vec<f64>, WireError> {
        Ok(self.u64s()?.into_iter().map(f64::from_bits).collect())
    }

    fn opt_bool(&mut self) -> Result<Option<bool>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(false)),
            2 => Ok(Some(true)),
            _ => Err(WireError::BadField("bad optional-flag tag")),
        }
    }

    fn opt_rtt(&mut self) -> Result<Option<Option<u64>>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(None)),
            2 => Ok(Some(Some(self.u64()?))),
            _ => Err(WireError::BadField("bad optional-rtt tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probenet_stream::StreamRecord;

    fn bank_with(records: u64, seed: u64) -> EstimatorBank {
        let mut bank = EstimatorBank::new(BankConfig::bolot(20.0, 72, 1_000_000));
        let mut state = seed;
        for i in 0..records {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            bank.push(&StreamRecord {
                seq: i,
                sent_at_ns: i * 20_000_000,
                rtt_ns: if u < 0.15 {
                    None
                } else {
                    Some((100.0e6 + u * 50.0e6) as u64)
                },
            });
        }
        bank
    }

    fn frame_with(records: u64, seed: u64) -> SessionFrame {
        SessionFrame {
            key: SessionKey::new("codec-test", 20, seed),
            first_seq: 0,
            records,
            dropped: 0,
            bank: bank_with(records, seed),
            interim: Vec::new(),
            hops: Vec::new(),
            extensions: Vec::new(),
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        for records in [0u64, 1, 2, 500] {
            let frame = frame_with(records, 7 + records);
            let bytes = frame.encode();
            let (decoded, used) = SessionFrame::decode(&bytes).expect("decode");
            assert_eq!(used, bytes.len());
            assert_eq!(decoded.key, frame.key);
            assert_eq!(decoded.records, frame.records);
            assert_eq!(decoded.bank.wire_state(), frame.bank.wire_state());
            // Recomputed snapshots render identically.
            assert_eq!(
                serde_json::to_string(&decoded.bank.snapshot()).unwrap(),
                serde_json::to_string(&frame.bank.snapshot()).unwrap()
            );
        }
    }

    #[test]
    fn interim_snapshots_round_trip() {
        let bank = bank_with(300, 3);
        let frame = SessionFrame {
            key: SessionKey::new("interim", 8, 1993),
            first_seq: 0,
            records: 300,
            dropped: 2,
            interim: vec![InterimSnapshot {
                at_records: 100,
                snapshot: bank_with(100, 3).snapshot(),
            }],
            bank,
            hops: Vec::new(),
            extensions: Vec::new(),
        };
        let (decoded, _) = SessionFrame::decode(&frame.encode()).expect("decode");
        assert_eq!(decoded.interim.len(), 1);
        assert_eq!(decoded.interim[0].at_records, 100);
        assert_eq!(decoded.dropped, 2);
        assert_eq!(
            serde_json::to_string(&decoded.interim[0].snapshot).unwrap(),
            serde_json::to_string(&frame.interim[0].snapshot).unwrap()
        );
    }

    #[test]
    fn hop_annotations_round_trip() {
        let mut frame = frame_with(40, 5);
        frame.hops = vec![
            HopAnnotation {
                link: 0,
                name: "access:h00".into(),
                probe_drops: 3,
            },
            HopAnnotation {
                link: 7,
                name: "backbone:b2".into(),
                probe_drops: 11,
            },
        ];
        let bytes = frame.encode();
        let (decoded, used) = SessionFrame::decode(&bytes).expect("decode");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded.hops, frame.hops);
        assert!(decoded.extensions.is_empty());
        assert_eq!(decoded.encode(), bytes, "re-encode is byte-identical");
    }

    #[test]
    fn hopless_frames_encode_without_the_hops_section() {
        // A hop-less frame must stay byte-identical to the pre-TAG_HOPS
        // writer: no tag-11 section, nothing appended.
        let frame = frame_with(25, 9);
        let bytes = frame.encode();
        let (decoded, _) = SessionFrame::decode(&bytes).expect("decode");
        assert!(decoded.hops.is_empty());
        assert_eq!(decoded.encode(), bytes);
        // Same frame decoded by the v1 reader: identical in every v1 field.
        let (v1, v1_used) =
            SessionFrame::decode_with_max_tag(&bytes, MAX_TAG_V1).expect("v1 decode");
        assert_eq!(v1_used, bytes.len());
        assert_eq!(v1.bank.wire_state(), frame.bank.wire_state());
        assert!(v1.extensions.is_empty());
    }

    #[test]
    fn frame_streams_concatenate() {
        let a = frame_with(50, 1).encode();
        let b = frame_with(80, 2).encode();
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let frames = decode_frames(&stream).expect("stream decode");
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].records, 50);
        assert_eq!(frames[1].records, 80);
        assert!(decode_frames(&[]).expect("empty fleet").is_empty());
    }
}
