//! UDP header codec with pseudo-header checksum.

use bytes::{Buf, BufMut};

use crate::error::WireError;
use crate::ipv4::{internet_checksum, protocol};

/// Length of a UDP header.
pub const UDP_HEADER_BYTES: usize = 8;

/// A UDP header (ports and length; the checksum is computed on encode and
/// verified on decode when non-zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub source_port: u16,
    /// Destination port.
    pub destination_port: u16,
    /// Header + payload length in bytes.
    pub length: u16,
}

impl UdpHeader {
    /// Header for a datagram with `payload_len` bytes of payload.
    ///
    /// # Panics
    /// Panics if the datagram would exceed 65 535 bytes.
    pub fn new(source_port: u16, destination_port: u16, payload_len: usize) -> Self {
        let length = UDP_HEADER_BYTES + payload_len;
        UdpHeader {
            source_port,
            destination_port,
            length: u16::try_from(length).expect("UDP datagram too large"),
        }
    }

    /// Encode header + payload with the RFC 768 checksum over the
    /// IPv4 pseudo-header, header and payload.
    pub fn encode<B: BufMut>(&self, src: [u8; 4], dst: [u8; 4], payload: &[u8], buf: &mut B) {
        let csum = self.checksum(src, dst, payload);
        buf.put_u16(self.source_port);
        buf.put_u16(self.destination_port);
        buf.put_u16(self.length);
        buf.put_u16(csum);
        buf.put_slice(payload);
    }

    fn checksum(&self, src: [u8; 4], dst: [u8; 4], payload: &[u8]) -> u16 {
        let mut pseudo = Vec::with_capacity(12 + UDP_HEADER_BYTES + payload.len());
        pseudo.extend_from_slice(&src);
        pseudo.extend_from_slice(&dst);
        pseudo.push(0);
        pseudo.push(protocol::UDP);
        pseudo.extend_from_slice(&self.length.to_be_bytes());
        pseudo.extend_from_slice(&self.source_port.to_be_bytes());
        pseudo.extend_from_slice(&self.destination_port.to_be_bytes());
        pseudo.extend_from_slice(&self.length.to_be_bytes());
        pseudo.extend_from_slice(&[0, 0]); // checksum field as zero
        pseudo.extend_from_slice(payload);
        match internet_checksum(&pseudo) {
            // An all-zero checksum is transmitted as 0xffff (RFC 768).
            0 => 0xffff,
            c => c,
        }
    }

    /// Decode a UDP datagram; verifies the checksum (unless the wire value
    /// is zero, meaning "no checksum") and the length field. Returns the
    /// header and payload.
    pub fn decode(
        src: [u8; 4],
        dst: [u8; 4],
        data: &[u8],
    ) -> Result<(UdpHeader, &[u8]), WireError> {
        if data.len() < UDP_HEADER_BYTES {
            return Err(WireError::Truncated {
                needed: UDP_HEADER_BYTES,
                got: data.len(),
            });
        }
        let mut r = data;
        let source_port = r.get_u16();
        let destination_port = r.get_u16();
        let length = r.get_u16();
        let wire_csum = r.get_u16();
        let len = length as usize;
        if len < UDP_HEADER_BYTES || len > data.len() {
            return Err(WireError::BadLength {
                claimed: len,
                actual: data.len(),
            });
        }
        let header = UdpHeader {
            source_port,
            destination_port,
            length,
        };
        let payload = &data[UDP_HEADER_BYTES..len];
        if wire_csum != 0 {
            let expect = header.checksum(src, dst, payload);
            if expect != wire_csum {
                return Err(WireError::BadChecksum);
            }
        }
        Ok((header, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SRC: [u8; 4] = [10, 0, 0, 1];
    const DST: [u8; 4] = [10, 0, 0, 2];

    #[test]
    fn round_trip() {
        let h = UdpHeader::new(5000, 7, b"probe".len());
        let mut buf = Vec::new();
        h.encode(SRC, DST, b"probe", &mut buf);
        let (decoded, payload) = UdpHeader::decode(SRC, DST, &buf).unwrap();
        assert_eq!(decoded, h);
        assert_eq!(payload, b"probe");
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let h = UdpHeader::new(1, 2, 4);
        let mut buf = Vec::new();
        h.encode(SRC, DST, &[1, 2, 3, 4], &mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0x80;
        assert_eq!(
            UdpHeader::decode(SRC, DST, &buf),
            Err(WireError::BadChecksum)
        );
    }

    #[test]
    fn checksum_binds_addresses() {
        // The pseudo-header makes the checksum depend on the IP addresses:
        // the same bytes decoded under different addresses must fail.
        let h = UdpHeader::new(1, 2, 4);
        let mut buf = Vec::new();
        h.encode(SRC, DST, &[9, 9, 9, 9], &mut buf);
        assert!(UdpHeader::decode(SRC, DST, &buf).is_ok());
        assert_eq!(
            UdpHeader::decode([1, 1, 1, 1], DST, &buf),
            Err(WireError::BadChecksum)
        );
    }

    #[test]
    fn zero_checksum_means_unchecked() {
        let h = UdpHeader::new(1, 2, 2);
        let mut buf = Vec::new();
        h.encode(SRC, DST, &[7, 7], &mut buf);
        buf[6] = 0;
        buf[7] = 0; // checksum disabled
        let (decoded, payload) = UdpHeader::decode(SRC, DST, &buf).unwrap();
        assert_eq!(decoded.length, 10);
        assert_eq!(payload, &[7, 7]);
    }

    #[test]
    fn bad_length_rejected() {
        let h = UdpHeader::new(1, 2, 100);
        let mut buf = Vec::new();
        h.encode(SRC, DST, &[0u8; 100], &mut buf);
        assert!(matches!(
            UdpHeader::decode(SRC, DST, &buf[..20]),
            Err(WireError::BadLength { .. })
        ));
    }

    proptest! {
        #[test]
        fn prop_round_trip(sp: u16, dp: u16, src: [u8; 4], dst: [u8; 4],
                           payload in proptest::collection::vec(any::<u8>(), 0..256)) {
            let h = UdpHeader::new(sp, dp, payload.len());
            let mut buf = Vec::new();
            h.encode(src, dst, &payload, &mut buf);
            let (decoded, body) = UdpHeader::decode(src, dst, &buf).unwrap();
            prop_assert_eq!(decoded, h);
            prop_assert_eq!(body, &payload[..]);
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = UdpHeader::decode(SRC, DST, &data);
        }
    }
}
