//! ICMP codec: echo request/reply (ping) and time-exceeded (traceroute).
//!
//! The paper obtains its routes "either with the route record option of
//! ping, or with traceroute" (§2); these two message types are what those
//! tools exchange.

use bytes::{Buf, BufMut};

use crate::error::WireError;
use crate::ipv4::internet_checksum;

/// ICMP message types handled here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpMessage {
    /// Echo request (type 8): id, sequence, payload.
    EchoRequest {
        /// Identifier (usually the sender's pid).
        id: u16,
        /// Sequence number.
        seq: u16,
        /// Echoed payload.
        payload: Vec<u8>,
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Identifier copied from the request.
        id: u16,
        /// Sequence copied from the request.
        seq: u16,
        /// Payload copied from the request.
        payload: Vec<u8>,
    },
    /// Time exceeded in transit (type 11, code 0): carries the leading
    /// bytes of the expired datagram.
    TimeExceeded {
        /// IP header + first 8 payload bytes of the datagram that died.
        original: Vec<u8>,
    },
}

const TYPE_ECHO_REPLY: u8 = 0;
const TYPE_ECHO_REQUEST: u8 = 8;
const TYPE_TIME_EXCEEDED: u8 = 11;

impl IcmpMessage {
    /// Encode with a valid ICMP checksum.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        let mut body = Vec::new();
        match self {
            IcmpMessage::EchoRequest { id, seq, payload } => {
                body.push(TYPE_ECHO_REQUEST);
                body.push(0);
                body.extend_from_slice(&[0, 0]); // checksum placeholder
                body.extend_from_slice(&id.to_be_bytes());
                body.extend_from_slice(&seq.to_be_bytes());
                body.extend_from_slice(payload);
            }
            IcmpMessage::EchoReply { id, seq, payload } => {
                body.push(TYPE_ECHO_REPLY);
                body.push(0);
                body.extend_from_slice(&[0, 0]);
                body.extend_from_slice(&id.to_be_bytes());
                body.extend_from_slice(&seq.to_be_bytes());
                body.extend_from_slice(payload);
            }
            IcmpMessage::TimeExceeded { original } => {
                body.push(TYPE_TIME_EXCEEDED);
                body.push(0);
                body.extend_from_slice(&[0, 0]);
                body.extend_from_slice(&[0, 0, 0, 0]); // unused field
                body.extend_from_slice(original);
            }
        }
        let csum = internet_checksum(&body);
        body[2..4].copy_from_slice(&csum.to_be_bytes());
        buf.put_slice(&body);
    }

    /// Encode into a fresh vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::new();
        self.encode(&mut v);
        v
    }

    /// Decode and verify the checksum.
    pub fn decode(data: &[u8]) -> Result<IcmpMessage, WireError> {
        if data.len() < 8 {
            return Err(WireError::Truncated {
                needed: 8,
                got: data.len(),
            });
        }
        if internet_checksum(data) != 0 {
            return Err(WireError::BadChecksum);
        }
        let mut r = data;
        let ty = r.get_u8();
        let code = r.get_u8();
        r.get_u16(); // checksum (verified)
        match ty {
            TYPE_ECHO_REQUEST | TYPE_ECHO_REPLY => {
                let id = r.get_u16();
                let seq = r.get_u16();
                let payload = r.to_vec();
                Ok(if ty == TYPE_ECHO_REQUEST {
                    IcmpMessage::EchoRequest { id, seq, payload }
                } else {
                    IcmpMessage::EchoReply { id, seq, payload }
                })
            }
            TYPE_TIME_EXCEEDED => {
                if code != 0 {
                    return Err(WireError::BadField("time-exceeded code"));
                }
                r.get_u32(); // unused
                Ok(IcmpMessage::TimeExceeded {
                    original: r.to_vec(),
                })
            }
            _ => Err(WireError::BadField("icmp type")),
        }
    }

    /// Build the reply to an echo request; `None` for other messages.
    pub fn reply_to(&self) -> Option<IcmpMessage> {
        match self {
            IcmpMessage::EchoRequest { id, seq, payload } => Some(IcmpMessage::EchoReply {
                id: *id,
                seq: *seq,
                payload: payload.clone(),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn echo_round_trip() {
        let m = IcmpMessage::EchoRequest {
            id: 0x1234,
            seq: 7,
            payload: b"ping!".to_vec(),
        };
        assert_eq!(IcmpMessage::decode(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn time_exceeded_round_trip() {
        let m = IcmpMessage::TimeExceeded {
            original: vec![0x45, 0, 0, 28, 1, 2, 3, 4],
        };
        assert_eq!(IcmpMessage::decode(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn reply_mirrors_request() {
        let req = IcmpMessage::EchoRequest {
            id: 9,
            seq: 1,
            payload: vec![1, 2, 3],
        };
        match req.reply_to().unwrap() {
            IcmpMessage::EchoReply { id, seq, payload } => {
                assert_eq!((id, seq), (9, 1));
                assert_eq!(payload, vec![1, 2, 3]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(IcmpMessage::TimeExceeded { original: vec![] }
            .reply_to()
            .is_none());
    }

    #[test]
    fn corrupted_message_rejected() {
        let mut b = IcmpMessage::EchoRequest {
            id: 1,
            seq: 2,
            payload: vec![0; 8],
        }
        .to_bytes();
        b[6] ^= 0xff;
        assert_eq!(IcmpMessage::decode(&b), Err(WireError::BadChecksum));
    }

    #[test]
    fn unknown_type_rejected() {
        // Build a syntactically valid message of type 3 (dest unreachable,
        // unsupported here).
        let mut body = vec![3u8, 0, 0, 0, 0, 0, 0, 0];
        let csum = internet_checksum(&body);
        body[2..4].copy_from_slice(&csum.to_be_bytes());
        assert_eq!(
            IcmpMessage::decode(&body),
            Err(WireError::BadField("icmp type"))
        );
    }

    proptest! {
        #[test]
        fn prop_echo_round_trip(id: u16, seq: u16,
                                payload in proptest::collection::vec(any::<u8>(), 0..128)) {
            let m = IcmpMessage::EchoRequest { id, seq, payload };
            prop_assert_eq!(IcmpMessage::decode(&m.to_bytes()).unwrap(), m);
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = IcmpMessage::decode(&data);
        }
    }
}
