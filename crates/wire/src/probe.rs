//! The NetDyn probe packet.
//!
//! The paper's measurement tool (NetDyn, §2) sends UDP packets that carry a
//! unique sequence number and **three 6-byte timestamp fields**: written by
//! the source when the packet is sent, by the echo host when it bounces it,
//! and by the destination when it returns. The whole payload is 32 bytes —
//! the probe size used in every experiment.
//!
//! Layout (big-endian, 32 bytes total):
//!
//! ```text
//!  0      2   3   4        8              14             20             26    32
//!  +------+---+---+--------+--------------+--------------+--------------+-----+
//!  | magic|ver|flg|  seq   |  source ts   |   echo ts    |   dest ts    | pad |
//!  | u16  |u8 |u8 |  u32   |   48 bits    |   48 bits    |   48 bits    |  6B |
//!  +------+---+---+--------+--------------+--------------+--------------+-----+
//! ```
//!
//! Timestamps are microseconds modulo 2^48 (~8.9 years), enough for RTT
//! arithmetic with wrap-around handled by [`Timestamp48::delta`].

use bytes::{Buf, BufMut};

use crate::error::WireError;

/// Identifies probenet probe packets on the wire.
pub const PROBE_MAGIC: u16 = 0x4e44; // "ND" for NetDyn
/// Current probe format version.
pub const PROBE_VERSION: u8 = 1;
/// Payload size of a probe packet: 32 bytes, the paper's probe size.
pub const PROBE_PAYLOAD_BYTES: usize = 32;
/// Wire size the paper uses for the probe in its workload arithmetic
/// (its eq. 6 evaluates `P = 72 * 8` bits): 32 bytes of UDP payload plus
/// UDP (8), IP (20) and link-level (12) overhead.
pub const PROBE_WIRE_BYTES: u32 = 72;

/// A 48-bit microsecond timestamp with wrap-around arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Timestamp48(u64);

const TS_MASK: u64 = (1 << 48) - 1;

impl Timestamp48 {
    /// The zero timestamp, also used for "not stamped yet".
    pub const ZERO: Timestamp48 = Timestamp48(0);

    /// Construct from microseconds (truncated to 48 bits).
    pub const fn from_micros(us: u64) -> Self {
        Timestamp48(us & TS_MASK)
    }

    /// The stored microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Elapsed microseconds from `earlier` to `self`, modulo 2^48 — correct
    /// across a single wrap, as classic timestamp arithmetic requires.
    pub const fn delta(self, earlier: Timestamp48) -> u64 {
        (self.0.wrapping_sub(earlier.0)) & TS_MASK
    }
}

/// A decoded (or to-be-encoded) probe packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProbePacket {
    /// Unique packet number, used to detect losses and reorderings.
    pub seq: u32,
    /// Reserved flag bits (zero in version 1).
    pub flags: u8,
    /// Stamped by the source on transmission.
    pub source_ts: Timestamp48,
    /// Stamped by the echo host when it forwards the packet back.
    pub echo_ts: Timestamp48,
    /// Stamped by the destination (== source in the paper's setup) on
    /// receipt.
    pub dest_ts: Timestamp48,
}

impl ProbePacket {
    /// A fresh probe carrying only a sequence number and source timestamp.
    pub fn outgoing(seq: u32, source_ts: Timestamp48) -> Self {
        ProbePacket {
            seq,
            flags: 0,
            source_ts,
            echo_ts: Timestamp48::ZERO,
            dest_ts: Timestamp48::ZERO,
        }
    }

    /// Round-trip time in microseconds (destination minus source stamp,
    /// wrap-safe). Meaningful once `dest_ts` is stamped.
    pub fn rtt_micros(&self) -> u64 {
        self.dest_ts.delta(self.source_ts)
    }

    /// Encode into `buf` (exactly [`PROBE_PAYLOAD_BYTES`] bytes appended).
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(PROBE_MAGIC);
        buf.put_u8(PROBE_VERSION);
        buf.put_u8(self.flags);
        buf.put_u32(self.seq);
        put_u48(buf, self.source_ts);
        put_u48(buf, self.echo_ts);
        put_u48(buf, self.dest_ts);
        buf.put_slice(&[0u8; 6]); // pad to 32 bytes
    }

    /// Encode into a fresh vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(PROBE_PAYLOAD_BYTES);
        self.encode(&mut v);
        debug_assert_eq!(v.len(), PROBE_PAYLOAD_BYTES);
        v
    }

    /// Decode from `data`, validating magic and version. Trailing bytes
    /// beyond the 32-byte payload are ignored (a future version may extend
    /// the packet).
    pub fn decode(mut data: &[u8]) -> Result<Self, WireError> {
        if data.len() < PROBE_PAYLOAD_BYTES {
            return Err(WireError::Truncated {
                needed: PROBE_PAYLOAD_BYTES,
                got: data.len(),
            });
        }
        let magic = data.get_u16();
        if magic != PROBE_MAGIC {
            return Err(WireError::BadMagic {
                found: u32::from(magic),
            });
        }
        let version = data.get_u8();
        if version != PROBE_VERSION {
            return Err(WireError::BadVersion { found: version });
        }
        let flags = data.get_u8();
        let seq = data.get_u32();
        let source_ts = get_u48(&mut data);
        let echo_ts = get_u48(&mut data);
        let dest_ts = get_u48(&mut data);
        Ok(ProbePacket {
            seq,
            flags,
            source_ts,
            echo_ts,
            dest_ts,
        })
    }
}

fn put_u48<B: BufMut>(buf: &mut B, ts: Timestamp48) {
    let v = ts.as_micros();
    // probenet-lint: allow(truncating-cast-in-wire) u48 wire split: high 16 bits
    buf.put_u16((v >> 32) as u16);
    // probenet-lint: allow(truncating-cast-in-wire) u48 wire split: low 32 bits
    buf.put_u32(v as u32);
}

fn get_u48(data: &mut &[u8]) -> Timestamp48 {
    let hi = data.get_u16() as u64;
    let lo = data.get_u32() as u64;
    Timestamp48::from_micros((hi << 32) | lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn payload_is_exactly_32_bytes() {
        let p = ProbePacket::outgoing(7, Timestamp48::from_micros(123_456));
        assert_eq!(p.to_bytes().len(), PROBE_PAYLOAD_BYTES);
    }

    #[test]
    fn round_trip_preserves_fields() {
        let p = ProbePacket {
            seq: 0xdead_beef,
            flags: 0x5a,
            source_ts: Timestamp48::from_micros(1),
            echo_ts: Timestamp48::from_micros((1 << 48) - 1),
            dest_ts: Timestamp48::from_micros(999_999_999),
        };
        let decoded = ProbePacket::decode(&p.to_bytes()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn truncated_rejected() {
        let p = ProbePacket::outgoing(1, Timestamp48::ZERO).to_bytes();
        assert_eq!(
            ProbePacket::decode(&p[..31]),
            Err(WireError::Truncated {
                needed: 32,
                got: 31
            })
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = ProbePacket::outgoing(1, Timestamp48::ZERO).to_bytes();
        b[0] ^= 0xff;
        assert!(matches!(
            ProbePacket::decode(&b),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut b = ProbePacket::outgoing(1, Timestamp48::ZERO).to_bytes();
        b[2] = 99;
        assert_eq!(
            ProbePacket::decode(&b),
            Err(WireError::BadVersion { found: 99 })
        );
    }

    #[test]
    fn trailing_bytes_are_ignored() {
        let p = ProbePacket::outgoing(3, Timestamp48::from_micros(42));
        let mut b = p.to_bytes();
        b.extend_from_slice(&[1, 2, 3, 4]);
        assert_eq!(ProbePacket::decode(&b).unwrap(), p);
    }

    #[test]
    fn rtt_wraps_correctly() {
        // Source stamped just before the 48-bit wrap, destination just after.
        let src = Timestamp48::from_micros(TS_MASK - 100);
        let dst = Timestamp48::from_micros(50);
        let p = ProbePacket {
            seq: 0,
            flags: 0,
            source_ts: src,
            echo_ts: Timestamp48::ZERO,
            dest_ts: dst,
        };
        assert_eq!(p.rtt_micros(), 151);
    }

    #[test]
    fn timestamp_truncates_to_48_bits() {
        let t = Timestamp48::from_micros(u64::MAX);
        assert_eq!(t.as_micros(), TS_MASK);
    }

    proptest! {
        #[test]
        fn prop_round_trip(seq: u32, flags: u8,
                           s in 0u64..(1 << 48),
                           e in 0u64..(1 << 48),
                           d in 0u64..(1 << 48)) {
            let p = ProbePacket {
                seq,
                flags,
                source_ts: Timestamp48::from_micros(s),
                echo_ts: Timestamp48::from_micros(e),
                dest_ts: Timestamp48::from_micros(d),
            };
            let decoded = ProbePacket::decode(&p.to_bytes()).unwrap();
            prop_assert_eq!(decoded, p);
        }

        #[test]
        fn prop_delta_inverts_addition(base in 0u64..(1 << 48),
                                       step in 0u64..1_000_000_000u64) {
            let a = Timestamp48::from_micros(base);
            let b = Timestamp48::from_micros(base.wrapping_add(step));
            prop_assert_eq!(b.delta(a), step);
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = ProbePacket::decode(&data);
        }
    }
}
