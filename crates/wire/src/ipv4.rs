//! Minimal IPv4 header codec.
//!
//! Enough of IPv4 to frame probe datagrams and implement ping/traceroute
//! semantics: fixed 20-byte headers (no options), internet checksum, TTL.

use bytes::{Buf, BufMut};

use crate::error::WireError;

/// Length of an IPv4 header without options.
pub const IPV4_HEADER_BYTES: usize = 20;

/// IP protocol numbers used by this workspace.
pub mod protocol {
    /// ICMP.
    pub const ICMP: u8 = 1;
    /// UDP.
    pub const UDP: u8 = 17;
}

/// The RFC 1071 internet checksum over `data` (16-bit one's-complement sum).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(*last) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    // probenet-lint: allow(truncating-cast-in-wire) RFC 1071 fold: sum <= 0xffff here
    !(sum as u16)
}

/// A decoded IPv4 header (options unsupported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services / type of service byte.
    pub tos: u8,
    /// Total datagram length (header + payload), bytes.
    pub total_length: u16,
    /// Identification field.
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol number.
    pub protocol: u8,
    /// Source address.
    pub source: [u8; 4],
    /// Destination address.
    pub destination: [u8; 4],
}

impl Ipv4Header {
    /// A header for a datagram carrying `payload_len` bytes of `protocol`.
    ///
    /// # Panics
    /// Panics if the total length would exceed 65 535 bytes.
    pub fn new(
        protocol: u8,
        source: [u8; 4],
        destination: [u8; 4],
        ttl: u8,
        payload_len: usize,
    ) -> Self {
        let total = IPV4_HEADER_BYTES + payload_len;
        Ipv4Header {
            tos: 0,
            total_length: u16::try_from(total).expect("IPv4 datagram too large"),
            identification: 0,
            dont_fragment: true,
            ttl,
            protocol,
            source,
            destination,
        }
    }

    /// Encode with a freshly computed header checksum.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        let mut hdr = [0u8; IPV4_HEADER_BYTES];
        hdr[0] = 0x45; // version 4, IHL 5
        hdr[1] = self.tos;
        hdr[2..4].copy_from_slice(&self.total_length.to_be_bytes());
        hdr[4..6].copy_from_slice(&self.identification.to_be_bytes());
        let flags: u16 = if self.dont_fragment { 0x4000 } else { 0 };
        hdr[6..8].copy_from_slice(&flags.to_be_bytes());
        hdr[8] = self.ttl;
        hdr[9] = self.protocol;
        // hdr[10..12] checksum, zero for computation
        hdr[12..16].copy_from_slice(&self.source);
        hdr[16..20].copy_from_slice(&self.destination);
        let csum = internet_checksum(&hdr);
        hdr[10..12].copy_from_slice(&csum.to_be_bytes());
        buf.put_slice(&hdr);
    }

    /// Decode just the header, verifying version, IHL and checksum but
    /// **not** requiring the buffer to contain the full datagram — the
    /// situation when parsing the truncated quote inside an ICMP
    /// time-exceeded message, which carries only the offending header plus
    /// eight payload bytes.
    pub fn decode_header_only(data: &[u8]) -> Result<(Ipv4Header, &[u8]), WireError> {
        let (header, _) = Self::decode_inner(data, false)?;
        Ok((header, &data[IPV4_HEADER_BYTES..]))
    }

    /// Decode and verify checksum and basic fields; returns the header and
    /// the payload slice.
    pub fn decode(data: &[u8]) -> Result<(Ipv4Header, &[u8]), WireError> {
        Self::decode_inner(data, true)
    }

    fn decode_inner(data: &[u8], check_length: bool) -> Result<(Ipv4Header, &[u8]), WireError> {
        if data.len() < IPV4_HEADER_BYTES {
            return Err(WireError::Truncated {
                needed: IPV4_HEADER_BYTES,
                got: data.len(),
            });
        }
        let vihl = data[0];
        if vihl >> 4 != 4 {
            return Err(WireError::BadVersion { found: vihl >> 4 });
        }
        if vihl & 0x0f != 5 {
            return Err(WireError::BadField("ihl: options unsupported"));
        }
        if internet_checksum(&data[..IPV4_HEADER_BYTES]) != 0 {
            return Err(WireError::BadChecksum);
        }
        let mut r = &data[..IPV4_HEADER_BYTES];
        r.get_u8(); // vihl
        let tos = r.get_u8();
        let total_length = r.get_u16();
        let identification = r.get_u16();
        let flags = r.get_u16();
        let ttl = r.get_u8();
        let protocol = r.get_u8();
        r.get_u16(); // checksum (verified above)
        let mut source = [0u8; 4];
        let mut destination = [0u8; 4];
        source.copy_from_slice(&data[12..16]);
        destination.copy_from_slice(&data[16..20]);
        let total = total_length as usize;
        if total < IPV4_HEADER_BYTES || (check_length && total > data.len()) {
            return Err(WireError::BadLength {
                claimed: total,
                actual: data.len(),
            });
        }
        let header = Ipv4Header {
            tos,
            total_length,
            identification,
            dont_fragment: flags & 0x4000 != 0,
            ttl,
            protocol,
            source,
            destination,
        };
        Ok((header, &data[IPV4_HEADER_BYTES..total.min(data.len())]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn checksum_of_rfc1071_example() {
        // Classic example: the checksum of a buffer including its own
        // correct checksum folds to zero.
        let h = Ipv4Header::new(protocol::UDP, [10, 0, 0, 1], [10, 0, 0, 2], 64, 8);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(internet_checksum(&buf), 0);
    }

    #[test]
    fn checksum_odd_length() {
        // Odd-length buffers are padded with a zero byte per RFC 1071.
        let a = internet_checksum(&[0x12, 0x34, 0x56]);
        let b = internet_checksum(&[0x12, 0x34, 0x56, 0x00]);
        assert_eq!(a, b);
    }

    #[test]
    fn round_trip() {
        let h = Ipv4Header::new(protocol::ICMP, [192, 168, 1, 1], [8, 8, 8, 8], 3, 40);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf.extend_from_slice(&[0u8; 40]);
        let (decoded, payload) = Ipv4Header::decode(&buf).unwrap();
        assert_eq!(decoded, h);
        assert_eq!(payload.len(), 40);
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let h = Ipv4Header::new(protocol::UDP, [1, 2, 3, 4], [5, 6, 7, 8], 64, 0);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf[8] ^= 0x01; // flip a TTL bit
        assert_eq!(Ipv4Header::decode(&buf), Err(WireError::BadChecksum));
    }

    #[test]
    fn header_only_decode_accepts_truncated_quotes() {
        let h = Ipv4Header::new(protocol::UDP, [1, 2, 3, 4], [5, 6, 7, 8], 64, 100);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        buf.extend_from_slice(&[9u8; 8]); // only 8 of the 100 payload bytes
                                          // Full decode refuses; header-only parses and hands back the quote.
        assert!(Ipv4Header::decode(&buf).is_err());
        let (decoded, rest) = Ipv4Header::decode_header_only(&buf).unwrap();
        assert_eq!(decoded, h);
        assert_eq!(rest, &[9u8; 8]);
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(matches!(
            Ipv4Header::decode(&[0x45, 0]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn length_beyond_buffer_rejected() {
        let h = Ipv4Header::new(protocol::UDP, [1, 2, 3, 4], [5, 6, 7, 8], 64, 100);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        // Claims 120 bytes total but we only hand it the header.
        assert!(matches!(
            Ipv4Header::decode(&buf),
            Err(WireError::BadLength { .. })
        ));
    }

    proptest! {
        #[test]
        fn prop_round_trip(ttl: u8, proto: u8, src: [u8; 4], dst: [u8; 4],
                           payload in proptest::collection::vec(any::<u8>(), 0..128)) {
            let h = Ipv4Header::new(proto, src, dst, ttl, payload.len());
            let mut buf = Vec::new();
            h.encode(&mut buf);
            buf.extend_from_slice(&payload);
            let (decoded, body) = Ipv4Header::decode(&buf).unwrap();
            prop_assert_eq!(decoded, h);
            prop_assert_eq!(body, &payload[..]);
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = Ipv4Header::decode(&data);
        }
    }
}
