//! # probenet-wire
//!
//! Wire formats for the probenet measurement tools:
//!
//! * [`probe`] — the NetDyn probe packet of Bolot's SIGCOMM '93 study: a
//!   32-byte payload carrying a sequence number and three 6-byte timestamps
//!   (source, echo, destination).
//! * [`ipv4`] / [`udp`] — minimal IPv4 and UDP codecs with real checksums,
//!   enough to frame probe datagrams.
//! * [`icmp`] — echo request/reply and time-exceeded messages (ping and
//!   traceroute semantics).
//! * [`snapshot`] — versioned, length-prefixed frames carrying one
//!   collector session's complete estimator state between hosts, the
//!   transport under the fleet merge daemon (`probenet-merged`).
//!
//! All decoders are total: arbitrary input bytes produce `Ok` or a
//! [`WireError`], never a panic (property-tested).
//!
//! ```
//! use probenet_wire::{ProbePacket, Timestamp48};
//!
//! let probe = ProbePacket::outgoing(42, Timestamp48::from_micros(1_000_000));
//! let bytes = probe.to_bytes();
//! assert_eq!(bytes.len(), probenet_wire::PROBE_PAYLOAD_BYTES);
//! assert_eq!(ProbePacket::decode(&bytes).unwrap(), probe);
//! ```

pub mod error;
pub mod icmp;
pub mod ipv4;
pub mod probe;
pub mod snapshot;
pub mod udp;

pub use error::WireError;
pub use icmp::IcmpMessage;
pub use ipv4::{internet_checksum, Ipv4Header, IPV4_HEADER_BYTES};
pub use probe::{
    ProbePacket, Timestamp48, PROBE_MAGIC, PROBE_PAYLOAD_BYTES, PROBE_VERSION, PROBE_WIRE_BYTES,
};
pub use snapshot::{
    decode_frames, SessionFrame, FRAME_HEADER_BYTES, FRAME_SESSION, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use udp::{UdpHeader, UDP_HEADER_BYTES};
