//! Minimal Rust lexer for the deep lint tier.
//!
//! Runs over *scrubbed* source ([`crate::scrub`]), so string/char/comment
//! contents are already spaces and every remaining byte is program text.
//! The token set is exactly what the item/call extractor needs: identifiers
//! (with line numbers), numbers, the multi-byte puncts whose splitting
//! would confuse path/generics scanning (`::`, `->`, `=>`), and single
//! punct bytes. No allocation-free cleverness — the whole workspace is a
//! few hundred kLoC and lexes in milliseconds.

/// One token of scrubbed source.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are filtered by the consumer).
    Ident(String),
    /// Numeric literal (value irrelevant; kept for token boundaries).
    Num,
    /// `::`
    PathSep,
    /// `->`
    Arrow,
    /// `=>`
    FatArrow,
    /// A lifetime or loop label (`'a`, `'outer`). Kept distinct so the
    /// generics skipper can tell `<'a>` from a char literal remnant.
    Lifetime,
    /// Any other single punct byte (`{`, `}`, `(`, `.`, `<`, `!`, ...).
    Punct(u8),
}

/// A token plus the 0-based line it starts on.
#[derive(Debug, Clone)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 0-based line the token starts on.
    pub line: usize,
}

/// Lex scrubbed source into a token stream.
pub fn lex(code: &str) -> Vec<SpannedTok> {
    let bytes = code.as_bytes();
    let mut toks = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b.is_ascii_alphabetic() || b == b'_' || !b.is_ascii() {
            // Identifier (non-ASCII bytes are folded into idents: the
            // source is UTF-8 and rustc identifiers may be too).
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || !bytes[i].is_ascii())
            {
                i += 1;
            }
            toks.push(SpannedTok {
                tok: Tok::Ident(code[start..i].to_string()),
                line,
            });
            continue;
        }
        if b.is_ascii_digit() {
            // Numbers, including suffixed (`1u64`), float (`1.5e-3`) and
            // radix (`0xff`) forms. `1.` followed by an ident char is
            // tuple-field access, not a float — stop at the dot then.
            i += 1;
            while i < bytes.len() {
                let c = bytes[i];
                let float_dot = c == b'.' && bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit());
                let exponent_sign = (c == b'+' || c == b'-')
                    && matches!(bytes.get(i.wrapping_sub(1)), Some(b'e') | Some(b'E'))
                    && bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit());
                if c.is_ascii_alphanumeric() || c == b'_' || float_dot || exponent_sign {
                    i += 1;
                } else {
                    break;
                }
            }
            toks.push(SpannedTok {
                tok: Tok::Num,
                line,
            });
            continue;
        }
        if b == b':' && bytes.get(i + 1) == Some(&b':') {
            toks.push(SpannedTok {
                tok: Tok::PathSep,
                line,
            });
            i += 2;
            continue;
        }
        if b == b'-' && bytes.get(i + 1) == Some(&b'>') {
            toks.push(SpannedTok {
                tok: Tok::Arrow,
                line,
            });
            i += 2;
            continue;
        }
        if b == b'=' && bytes.get(i + 1) == Some(&b'>') {
            toks.push(SpannedTok {
                tok: Tok::FatArrow,
                line,
            });
            i += 2;
            continue;
        }
        if b == b'\'' {
            // After scrubbing, a surviving `'` is either a lifetime/label
            // (`'a`) or a blanked char literal's delimiters (`'  '`). Fold
            // a lifetime's ident into one token; leave bare quotes as
            // puncts (they never border a call site).
            if bytes
                .get(i + 1)
                .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
            {
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push(SpannedTok {
                    tok: Tok::Lifetime,
                    line,
                });
                continue;
            }
        }
        toks.push(SpannedTok {
            tok: Tok::Punct(b),
            line,
        });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(&scrub(src).code).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_paths_and_calls() {
        let toks = kinds("fn f() { a::b::c(x.y()); }");
        assert!(toks.contains(&Tok::Ident("f".into())));
        assert!(toks.contains(&Tok::PathSep));
        assert!(toks.contains(&Tok::Punct(b'.')));
    }

    #[test]
    fn numbers_do_not_merge_with_method_calls() {
        // `1.max(2)` — the dot starts a method call, not a float.
        let toks = kinds("let x = 1.max(2);");
        assert!(
            toks.windows(2)
                .any(|w| w[0] == Tok::Punct(b'.') && w[1] == Tok::Ident("max".into())),
            "{toks:?}"
        );
    }

    #[test]
    fn lifetimes_are_single_tokens() {
        let toks = kinds("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(
            toks.iter().filter(|t| **t == Tok::Lifetime).count(),
            3,
            "{toks:?}"
        );
    }

    #[test]
    fn arrows_and_fat_arrows() {
        let toks = kinds("fn f() -> u8 { match x { _ => 0 } }");
        assert!(toks.contains(&Tok::Arrow));
        assert!(toks.contains(&Tok::FatArrow));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex(&scrub("a\nb\nc\n").code);
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![0, 1, 2]);
    }
}
