//! Per-file context extracted before rule matching: the enclosing function
//! for every line, the set of identifiers with hash-ordered types, and the
//! `probenet-lint:` allow directives.

use crate::scrub::Scrubbed;
use std::collections::BTreeSet;

/// One `allow(...)`/`allow-file(...)` directive site, kept for the
/// `--stats` unused-allow report.
#[derive(Debug, Clone)]
pub struct AllowSite {
    /// 0-based line the directive comment sits on.
    pub line: usize,
    /// Rule id the directive names.
    pub rule: String,
    /// `allow-file` (whole file) vs `allow` (line + next line).
    pub file_level: bool,
}

/// Everything the rule matchers need to know about one file.
pub struct FileContext {
    /// Innermost enclosing function name per 0-based line (empty outside
    /// any function body).
    pub enclosing_fn: Vec<String>,
    /// Identifiers (locals, fields, params) whose declared or constructed
    /// type is `HashMap`/`HashSet` anywhere in this file.
    pub hash_idents: BTreeSet<String>,
    /// Every allow directive in the file, in line order.
    pub allow_sites: Vec<AllowSite>,
    /// `sanitize(<rule>)` directives: (0-based line, rule id). A sanitize
    /// directive marks the function declared on its line (or the line
    /// below) as a taint barrier for the deep pass.
    pub sanitize_sites: Vec<(usize, String)>,
    /// Per-line sets of rule ids silenced by `allow(...)` directives: a
    /// directive applies to its own line and the line directly below it.
    allowed: Vec<BTreeSet<String>>,
    /// Rule ids silenced for the whole file via `allow-file(...)`.
    allowed_file: BTreeSet<String>,
}

impl FileContext {
    /// Build the context from scrubbed source.
    pub fn build(s: &Scrubbed) -> FileContext {
        let lines: Vec<&str> = s.code.lines().collect();
        let mut allow_sites = Vec::new();
        let mut sanitize_sites = Vec::new();
        // Documentation that *discusses* directives writes placeholders like
        // `allow(<id>)`; only kebab-case names count as real sites (a typo'd
        // but kebab-shaped id still surfaces in the unused-allow report).
        let kebab = |r: &String| {
            r.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        };
        for (ln, text) in s.comments.iter().enumerate() {
            for rule in parse_directives(text, "allow(").into_iter().filter(kebab) {
                allow_sites.push(AllowSite {
                    line: ln,
                    rule,
                    file_level: false,
                });
            }
            for rule in parse_directives(text, "allow-file(")
                .into_iter()
                .filter(kebab)
            {
                allow_sites.push(AllowSite {
                    line: ln,
                    rule,
                    file_level: true,
                });
            }
            for rule in parse_directives(text, "sanitize(")
                .into_iter()
                .filter(kebab)
            {
                sanitize_sites.push((ln, rule));
            }
        }
        FileContext {
            enclosing_fn: enclosing_functions(&lines),
            hash_idents: hash_typed_idents(&s.code),
            allow_sites,
            sanitize_sites,
            allowed: line_allows(&s.comments, lines.len()),
            allowed_file: file_allows(&s.comments),
        }
    }

    /// Is `rule` silenced at 0-based `line`?
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        if self.allowed_file.contains(rule) {
            return true;
        }
        self.allowed.get(line).is_some_and(|set| set.contains(rule))
    }

    /// Is there a `sanitize(rule)` directive covering 0-based `line` (its
    /// own line or the line directly above, mirroring allow placement)?
    pub fn is_sanitized(&self, rule: &str, line: usize) -> bool {
        self.sanitize_sites
            .iter()
            .any(|(ln, r)| r == rule && (*ln == line || ln + 1 == line))
    }

    /// Enclosing function name for a 0-based line ("" outside functions).
    pub fn fn_at(&self, line: usize) -> &str {
        self.enclosing_fn.get(line).map_or("", |s| s.as_str())
    }
}

/// Track `fn name` headers and brace depth to map each line to its
/// innermost enclosing function.
fn enclosing_functions(lines: &[&str]) -> Vec<String> {
    let mut result = Vec::with_capacity(lines.len());
    // Stack of (fn name, brace depth at which its body opened).
    let mut stack: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    // A declared fn waiting for its opening brace (None after a `;`:
    // trait method signatures have no body).
    let mut pending: Option<String> = None;
    for line in lines {
        result.push(stack.last().map_or(String::new(), |(n, _)| n.clone()));
        let mut words = line.split_whitespace().peekable();
        while let Some(w) = words.next() {
            if w == "fn" || w.ends_with(")fn") {
                if let Some(next) = words.peek() {
                    let name: String = next
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        pending = Some(name);
                    }
                }
            }
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(name) = pending.take() {
                        stack.push((name, depth));
                        // The line that opens the body counts as inside it.
                        if let Some(last) = result.last_mut() {
                            *last = stack.last().map(|(n, _)| n.clone()).unwrap_or_default();
                        }
                    }
                }
                '}' => {
                    if stack.last().is_some_and(|&(_, d)| d == depth) {
                        stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' => {
                    // `fn f(...) -> T;` — a bodyless signature.
                    pending = None;
                }
                _ => {}
            }
        }
    }
    result
}

/// Collect identifiers declared with a hash-ordered type: struct fields
/// and `let` bindings annotated `: HashMap<`/`: HashSet<`, and bindings
/// initialised from `HashMap::`/`HashSet::` constructors.
fn hash_typed_idents(code: &str) -> BTreeSet<String> {
    let mut found = BTreeSet::new();
    for marker in ["HashMap", "HashSet"] {
        let mut from = 0usize;
        while let Some(pos) = code[from..].find(marker) {
            let at = from + pos;
            from = at + marker.len();
            // `NAME : HashMap<...>` (field, param or annotated let).
            let before = code[..at].trim_end();
            if let Some(head) = before.strip_suffix(':') {
                if let Some(name) = trailing_ident(head) {
                    found.insert(name);
                    continue;
                }
            }
            // `let [mut] NAME = HashMap::new()` and friends.
            if code[from..].trim_start().starts_with("::") {
                if let Some(head) = before.strip_suffix('=') {
                    let head = head.trim_end();
                    if let Some(name) = trailing_ident(head) {
                        found.insert(name);
                    }
                }
            }
        }
    }
    found
}

fn trailing_ident(s: &str) -> Option<String> {
    let s = s.trim_end();
    let tail: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if tail.is_empty() || tail.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(tail)
    }
}

fn line_allows(comments: &[String], lines: usize) -> Vec<BTreeSet<String>> {
    let mut allowed = vec![BTreeSet::new(); lines + 1];
    for (ln, text) in comments.iter().enumerate() {
        for rule in parse_directives(text, "allow(") {
            if ln < allowed.len() {
                allowed[ln].insert(rule.clone());
            }
            if ln + 1 < allowed.len() {
                allowed[ln + 1].insert(rule);
            }
        }
    }
    allowed
}

fn file_allows(comments: &[String]) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for text in comments {
        for rule in parse_directives(text, "allow-file(") {
            set.insert(rule);
        }
    }
    set
}

/// Parse `probenet-lint: <kind>rule-a, rule-b)` directives out of one
/// line's comment text.
fn parse_directives(comment: &str, kind: &str) -> Vec<String> {
    let mut rules = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("probenet-lint:") {
        rest = &rest[pos + "probenet-lint:".len()..];
        let trimmed = rest.trim_start();
        if let Some(args) = trimmed.strip_prefix(kind) {
            if let Some(end) = args.find(')') {
                for rule in args[..end].split(',') {
                    let rule = rule.trim();
                    if !rule.is_empty() {
                        rules.push(rule.to_string());
                    }
                }
            }
        }
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;

    #[test]
    fn tracks_enclosing_functions() {
        let src = "fn outer() {\n    let x = 1;\n    {\n        let y = 2;\n    }\n}\nfn next() {\n    let z = 3;\n}\n";
        let ctx = FileContext::build(&scrub(src));
        assert_eq!(ctx.fn_at(1), "outer");
        assert_eq!(ctx.fn_at(3), "outer");
        assert_eq!(ctx.fn_at(7), "next");
    }

    #[test]
    fn finds_hash_typed_idents() {
        let src = "struct S { pending: HashMap<u64, usize> }\nfn f() {\n    let mut seen = HashSet::new();\n    let other: HashSet<u32> = HashSet::new();\n}\n";
        let ctx = FileContext::build(&scrub(src));
        assert!(ctx.hash_idents.contains("pending"));
        assert!(ctx.hash_idents.contains("seen"));
        assert!(ctx.hash_idents.contains("other"));
    }

    #[test]
    fn allow_directives_cover_their_line_and_the_next() {
        let src = "// probenet-lint: allow(wall-clock-in-sim) timing stats only\nlet t = 1;\nlet u = 2;\n";
        let ctx = FileContext::build(&scrub(src));
        assert!(ctx.is_allowed("wall-clock-in-sim", 0));
        assert!(ctx.is_allowed("wall-clock-in-sim", 1));
        assert!(!ctx.is_allowed("wall-clock-in-sim", 2));
    }

    #[test]
    fn allow_file_covers_everything() {
        let src = "//! probenet-lint: allow-file(ambient-rng)\nfn f() {}\n";
        let ctx = FileContext::build(&scrub(src));
        assert!(ctx.is_allowed("ambient-rng", 40));
    }
}
