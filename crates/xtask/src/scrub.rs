//! Comment/string scrubbing: the first stage of `probenet-lint`.
//!
//! Rule matchers must never fire on text inside string literals, char
//! literals, or comments (the lint's own source mentions every banned
//! token in its rule tables, and doc comments legitimately discuss them).
//! [`scrub`] blanks those regions with spaces — preserving byte offsets
//! and line structure exactly — and returns the comment text per line so
//! the directive parser can find `probenet-lint: allow(...)` escapes.

/// Result of scrubbing one source file.
pub struct Scrubbed {
    /// The source with comment bodies and string/char literal contents
    /// replaced by spaces (delimiters kept). Same length and line breaks
    /// as the input.
    pub code: String,
    /// For each line (0-based), the concatenated comment text on it.
    /// Distinct comment segments on one line are separated by
    /// [`SEGMENT_BREAK`] so a directive can never be fabricated from two
    /// disjoint comments with code between them.
    pub comments: Vec<String>,
}

/// Separator inserted between distinct comment segments that land on the
/// same line. `\x01` is not whitespace, so `probenet-lint:` in one comment
/// followed by `allow(...)` in the next can never parse as one directive.
pub const SEGMENT_BREAK: char = '\u{1}';

#[derive(PartialEq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Does the `r` at byte `i` start a raw-string prefix token (`r"`, `r#"`,
/// `br"`, `br#"`)? rustc lexes identifiers greedily, so an `r` that is the
/// tail of an identifier (`var#"…"` in a macro token stream) is part of
/// that identifier, never a raw-string prefix. Without this check the
/// scrubber opens a bogus raw-string state there and blanks real code
/// until an unrelated `"#` appears — masking genuine rule matches.
fn raw_prefix_starts_token(bytes: &[u8], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = bytes[i - 1];
    if !is_ident_byte(prev) {
        return true;
    }
    // `br"…"` / `br#"…"`: the `b` may itself start the token.
    prev == b'b' && (i < 2 || !is_ident_byte(bytes[i - 2]))
}

/// Blank out comments and literal contents while preserving layout.
pub fn scrub(src: &str) -> Scrubbed {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let line_count = src.lines().count().max(1);
    let mut comments = vec![String::new(); line_count + 1];
    let mut line = 0usize;
    let mut state = State::Normal;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            if state == State::LineComment {
                state = State::Normal;
            }
            out.push(b'\n');
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    if line < comments.len() && !comments[line].is_empty() {
                        comments[line].push(SEGMENT_BREAK);
                    }
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    if line < comments.len() && !comments[line].is_empty() {
                        comments[line].push(SEGMENT_BREAK);
                    }
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if b == b'"' {
                    state = State::Str;
                    out.push(b'"');
                    i += 1;
                } else if b == b'r'
                    && matches!(bytes.get(i + 1), Some(b'"') | Some(b'#'))
                    && raw_prefix_starts_token(bytes, i)
                {
                    // Raw string: count hashes between r and the quote.
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        state = State::RawStr(hashes);
                        out.resize(out.len() + (j - i + 1), b' ');
                        i = j + 1;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                } else if b == b'\'' {
                    // Distinguish a char literal from a lifetime: a
                    // lifetime is 'ident not followed by a closing quote.
                    let is_lifetime = bytes
                        .get(i + 1)
                        .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
                        && bytes.get(i + 2) != Some(&b'\'');
                    if is_lifetime {
                        out.push(b);
                        i += 1;
                    } else {
                        state = State::Char;
                        out.push(b'\'');
                        i += 1;
                    }
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            State::LineComment => {
                if line < comments.len() {
                    comments[line].push(b as char);
                }
                out.push(b' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else {
                    if line < comments.len() {
                        comments[line].push(b as char);
                    }
                    out.push(b' ');
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' && i + 1 < bytes.len() {
                    out.push(b' ');
                    if bytes[i + 1] == b'\n' {
                        out.push(b'\n');
                        line += 1;
                    } else {
                        out.push(b' ');
                    }
                    i += 2;
                } else if b == b'"' {
                    state = State::Normal;
                    out.push(b'"');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' {
                    // Close only if followed by exactly `hashes` hashes.
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && bytes.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        state = State::Normal;
                        out.resize(out.len() + (j - i), b' ');
                        i = j;
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            State::Char => {
                if b == b'\\' && i + 1 < bytes.len() {
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if b == b'\'' {
                    state = State::Normal;
                    out.push(b'\'');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    Scrubbed {
        code: String::from_utf8(out).expect("scrubbed output is ASCII-safe by construction"),
        comments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_strings_and_comments_preserving_lines() {
        let src = "let x = \"Instant::now()\"; // Instant::now()\nlet y = 1;\n";
        let s = scrub(src);
        assert!(!s.code.contains("Instant"));
        assert_eq!(s.code.lines().count(), src.lines().count());
        assert!(s.comments[0].contains("Instant::now()"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let a = r#\"thread_rng()\"#; let c = 'x'; let lt: &'static str = \"\";";
        let s = scrub(src);
        assert!(!s.code.contains("thread_rng"));
        assert!(!s.code.contains('x'), "char literal content blanked");
        assert!(s.code.contains("'static"), "lifetime preserved");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        let s = scrub(src);
        assert!(!s.code.contains("outer"));
        assert!(s.code.contains("fn f"));
    }
}
