//! Workspace automation entry point. `cargo run -p xtask -- lint` runs the
//! `probenet-lint` determinism pass over the whole workspace and exits
//! nonzero on any violation; `lint --explain <rule>` documents a rule.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::rules::{rule_info, Violation, RULES};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- <command>\n\n\
         commands:\n  \
         lint                   run the shallow probenet-lint tier (exit 1 on violations)\n  \
         lint --deep            also run the interprocedural taint tier (call-graph dataflow)\n  \
         lint --format json     emit diagnostics as JSON on stdout (for CI upload)\n  \
         lint --stats           print corpus/call-graph/rule/allow statistics\n  \
         lint --list            list the rules with one-line summaries\n  \
         lint --explain <rule>  print a rule's rationale and an example fix"
    );
    ExitCode::from(2)
}

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/xtask at build time; fall back to
    // the current directory when running a relocated binary.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .filter(|p| p.join("Cargo.toml").is_file())
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        _ => usage(),
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut deep = false;
    let mut stats = false;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for r in RULES {
                    println!("{:28} {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(id) = args.get(i + 1) else {
                    eprintln!("lint --explain needs a rule id; try `lint --list`");
                    return ExitCode::from(2);
                };
                return match rule_info(id) {
                    Some(r) => {
                        println!("{}: {}\n\n{}", r.id, r.summary, r.explain);
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!("unknown rule `{id}`; known rules:");
                        for r in RULES {
                            eprintln!("  {}", r.id);
                        }
                        ExitCode::from(2)
                    }
                };
            }
            "--deep" => deep = true,
            "--stats" => stats = true,
            "--format" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("json") => json = true,
                    Some("text") => json = false,
                    _ => {
                        eprintln!("lint --format needs `json` or `text`");
                        return ExitCode::from(2);
                    }
                }
                i += 1;
            }
            other => {
                eprintln!("unknown lint option `{other}`");
                return usage();
            }
        }
        i += 1;
    }
    if stats {
        return run_stats();
    }
    run_lint(deep, json)
}

fn run_lint(deep: bool, json: bool) -> ExitCode {
    let root = workspace_root();
    let mut violations = match xtask::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("probenet-lint: failed to read workspace sources: {e}");
            return ExitCode::FAILURE;
        }
    };
    if deep {
        match xtask::lint_workspace_deep(&root) {
            Ok(v) => violations.extend(v),
            Err(e) => {
                eprintln!("probenet-lint: deep tier failed to read sources: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let tier = if deep { "deep" } else { "shallow" };
    if json {
        println!("{}", diagnostics_json(tier, &violations));
        return if violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if violations.is_empty() {
        println!(
            "probenet-lint: workspace clean ({} rules, {tier} tier)",
            RULES.len()
        );
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("error[{}]: {}:{}: {}", v.rule, v.file, v.line, v.message);
        for (n, hop) in v.chain.iter().enumerate() {
            let role = if n == 0 { "source in" } else { "called from" };
            eprintln!("    {role} `{}` at {}:{}", hop.function, hop.file, hop.line);
        }
    }
    eprintln!(
        "\nprobenet-lint: {} violation(s); run `cargo run -p xtask -- lint --explain <rule>` \
         for rationale and fixes, or annotate a justified site with \
         `// probenet-lint: allow(<rule>) <reason>`",
        violations.len()
    );
    ExitCode::FAILURE
}

fn run_stats() -> ExitCode {
    let root = workspace_root();
    let s = match xtask::workspace_stats(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("probenet-lint: failed to read workspace sources: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("probenet-lint --stats");
    println!("  files scanned        {}", s.files);
    println!("  source lines         {}", s.lines);
    println!("  call-graph functions {}", s.functions);
    println!("  call sites           {}", s.call_sites);
    println!("  resolved edges       {}", s.call_edges);
    println!("  deep sources         {}", s.deep_sources);
    println!("  deep sinks           {}", s.deep_sinks);
    println!("  rules fired:");
    for (rule, count) in &s.rules_fired {
        println!("    {rule:28} {count}");
    }
    println!(
        "  allows               {} total, {} consumed",
        s.allows_total, s.allows_consumed
    );
    if s.unused_allows.is_empty() {
        println!("  unused allows        none");
    } else {
        println!("  unused allows:");
        for (file, line, rule) in &s.unused_allows {
            println!("    {file}:{line}: allow({rule})");
        }
    }
    ExitCode::SUCCESS
}

/// Serialize diagnostics as JSON. Hand-rolled: xtask is dependency-free by
/// design (the vendored serde stand-ins live elsewhere), and the schema is
/// four flat fields plus the chain array.
fn diagnostics_json(tier: &str, violations: &[Violation]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"tier\":\"{}\",\"count\":{},\"violations\":[",
        esc(tier),
        violations.len()
    ));
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"chain\":[",
            esc(v.rule),
            esc(&v.file),
            v.line,
            esc(&v.message)
        ));
        for (j, hop) in v.chain.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"function\":\"{}\",\"file\":\"{}\",\"line\":{}}}",
                esc(&hop.function),
                esc(&hop.file),
                hop.line
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}
