//! Workspace automation entry point. `cargo run -p xtask -- lint` runs the
//! `probenet-lint` determinism pass over the whole workspace and exits
//! nonzero on any violation; `lint --explain <rule>` documents a rule.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::rules::{rule_info, RULES};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- <command>\n\n\
         commands:\n  \
         lint                   run probenet-lint over the workspace (exit 1 on violations)\n  \
         lint --list            list the rules with one-line summaries\n  \
         lint --explain <rule>  print a rule's rationale and an example fix"
    );
    ExitCode::from(2)
}

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/xtask at build time; fall back to
    // the current directory when running a relocated binary.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .filter(|p| p.join("Cargo.toml").is_file())
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        _ => usage(),
    }
}

fn lint(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        None => run_lint(),
        Some("--list") => {
            for r in RULES {
                println!("{:28} {}", r.id, r.summary);
            }
            ExitCode::SUCCESS
        }
        Some("--explain") => {
            let Some(id) = args.get(1) else {
                eprintln!("lint --explain needs a rule id; try `lint --list`");
                return ExitCode::from(2);
            };
            match rule_info(id) {
                Some(r) => {
                    println!("{}: {}\n\n{}", r.id, r.summary, r.explain);
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown rule `{id}`; known rules:");
                    for r in RULES {
                        eprintln!("  {}", r.id);
                    }
                    ExitCode::from(2)
                }
            }
        }
        Some(other) => {
            eprintln!("unknown lint option `{other}`");
            usage()
        }
    }
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let violations = match xtask::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("probenet-lint: failed to read workspace sources: {e}");
            return ExitCode::FAILURE;
        }
    };
    if violations.is_empty() {
        println!("probenet-lint: workspace clean ({} rules)", RULES.len());
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("error[{}]: {}:{}: {}", v.rule, v.file, v.line, v.message);
    }
    eprintln!(
        "\nprobenet-lint: {} violation(s); run `cargo run -p xtask -- lint --explain <rule>` \
         for rationale and fixes, or annotate a justified site with \
         `// probenet-lint: allow(<rule>) <reason>`",
        violations.len()
    );
    ExitCode::FAILURE
}
