//! The `probenet-lint` rules: six shallow line rules plus the deep
//! interprocedural `tainted-artifact-path` tier (see [`crate::taint`]).
//!
//! Each rule has a stable kebab-case id (used in diagnostics and in
//! `probenet-lint: allow(<id>)` escape comments), a one-line summary, and
//! a longer `--explain` text with the invariant it protects and an example
//! fix. Matching runs over scrubbed source (no strings/comments) with the
//! per-file context from [`crate::context`].

use crate::context::FileContext;
use crate::scrub::Scrubbed;

/// A single rule violation, ready to print as `file:line`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable rule id.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Why this site is a violation.
    pub message: String,
    /// Deep tier only: the witness call chain from the source's enclosing
    /// function up to the artifact sink. Empty for shallow line rules.
    pub chain: Vec<ChainHop>,
}

/// One hop of a deep-tier witness chain.
#[derive(Debug, Clone)]
pub struct ChainHop {
    /// Function display name (`Type::name` or `name`).
    pub function: String,
    /// Workspace-relative file holding the function.
    pub file: String,
    /// 1-based line: the source site for the first hop, the call site of
    /// the previous hop's function for every later hop.
    pub line: usize,
}

/// Description of one lint rule.
pub struct RuleInfo {
    /// Stable kebab-case id.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Long-form rationale + example fix, printed by `--explain`.
    pub explain: &'static str,
}

/// All rules, in diagnostic order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "nondeterministic-iteration",
        summary: "no HashMap/HashSet iteration in code that feeds serialization, digests, or golden artifacts",
        explain: "\
Golden traces, collector reports and FNV record digests are byte-compared
across runs and across PROBENET_THREADS settings, so any map iteration on
their data path must have a deterministic order. `HashMap`/`HashSet`
iteration order is randomized per process; one unordered loop feeding a
report silently breaks byte-identity the next time the hasher seed moves.

The rule fires on `.iter()/.keys()/.values()/.into_iter()/.drain()` (and
`for .. in &m`) over hash-typed bindings inside serialization contexts:
functions whose names look like serialization (`to_json`, `snapshot`,
`render`, `report`, `digest`, `write_*`, `fmt`, ...) or files on the
report/wire path.

Fix: use `BTreeMap`/`BTreeSet`, or collect and sort explicitly before
iterating:

    let mut keys: Vec<_> = map.keys().collect();
    keys.sort();
    for k in keys { ... }

If the iteration provably cannot affect ordering (e.g. it only sums a
commutative integer), annotate the line:

    // probenet-lint: allow(nondeterministic-iteration) <why it is safe>",
    },
    RuleInfo {
        id: "wall-clock-in-sim",
        summary: "no Instant::now/SystemTime outside the wall-clock allowlist",
        explain: "\
The simulator, the analysis pipeline and every artifact renderer must be a
pure function of (config, seed): DESIGN.md pins replay equality at
PROBENET_THREADS in {1,4,8} and byte-stable golden traces. A stray
`Instant::now()`/`SystemTime::now()` smuggles wall-clock time into that
function and the divergence only shows up when a golden test flakes.

Legitimate wall-clock sites exist: the real-UDP probe tool genuinely
timestamps packets (`crates/netdyn/src/udp.rs`), and the engine/bench
harness reports wall-time statistics that are observability, not data
(`crates/sim/src/engine.rs`, `crates/bench`). Those sites carry an
annotation naming their justification:

    // probenet-lint: allow(wall-clock-in-sim) real probe timestamps
    let epoch = Instant::now();

Fix for everything else: thread simulated time (`SimTime`) or an explicit
timestamp parameter through instead of reading the host clock.",
    },
    RuleInfo {
        id: "ambient-rng",
        summary: "no thread_rng/rand::random; randomness flows from seeded splitmix64 streams",
        explain: "\
Every random draw in probenet comes from a per-(port, purpose) splitmix64
stream derived from the experiment seed, so a campaign replays bit-for-bit
(DESIGN.md). `rand::thread_rng()`, `rand::random()` and `from_entropy()`
are ambient entropy: they cannot be replayed, and a single call anywhere
in a sim path destroys determinism for the whole artifact chain.

Fix: take an explicit `&mut` RNG (or a seed) as a parameter and derive it
from the experiment seed, e.g.

    let mut rng = SplitMix64::new(seed ^ PORT_SALT);

Tests that genuinely want ambient entropy (none today) must annotate:

    // probenet-lint: allow(ambient-rng) <why replay does not matter here>",
    },
    RuleInfo {
        id: "order-sensitive-float-fold",
        summary: "f64 sum/fold in merge/snapshot paths must declare reduction-order safety",
        explain: "\
`EstimatorBank::merge` must equal the serial fold bitwise (DESIGN.md
§11) — that is what lets multi-host shards combine exactly. Float addition
is not associative, so an `f64` `.sum()`/`.fold()` inside a merge or
snapshot path is only correct if its reduction order is fixed (a `Vec` in
stored order) — never if the order depends on thread completion or map
iteration.

The rule fires on `.sum()`/`.fold()` in functions whose name contains
`merge` or `snapshot` when the element type is floating (or not provably
integral). Make integer reductions explicit with a turbofish —
`.sum::<u64>()` — and annotate float reductions whose order is fixed:

    // probenet-lint: allow(order-sensitive-float-fold) Vec order is stored order
    let total: f64 = self.parts.iter().sum::<f64>();

If the order is NOT fixed, restructure: fold in key order (BTreeMap), or
keep per-shard partials and combine them in a canonical sequence.",
    },
    RuleInfo {
        id: "truncating-cast-in-wire",
        summary: "no lossy `as` casts in wire codecs or report serialization",
        explain: "\
Wire codecs round-trip and golden artifacts are byte-compared; a lossy
`value as u16` silently wraps out-of-range values instead of failing, and
the corruption ships in the encoded bytes. In `crates/wire`, the merge
daemon (`crates/merged`), the queueing/traffic model crates (their
outputs feed the reproduction's tables), and the report serialization
files the rule flags `as u8/u16/u32/i8/i16/i32`.

Fix: use the checked conversions —

    let len = u16::try_from(payload.len()).expect(\"datagram fits u16\");

— or, where truncation IS the specified wire behavior (checksum folding,
splitting a u48 into u16/u32 halves), annotate it:

    // probenet-lint: allow(truncating-cast-in-wire) checksum folds mod 2^16
    !(sum as u16)",
    },
    RuleInfo {
        id: "unordered-partition-merge",
        summary: "cross-partition merges must declare their fixed partition order",
        explain: "\
The parallel engine's contract is byte-identity with the serial run at any
`PROBENET_THREADS` (DESIGN.md §13): after the partitions quiesce, their
per-partition results are concatenated into one outcome, and that merge is
only reproducible if it iterates partitions in a fixed order independent
of thread completion. An `.extend(..)`/`.append(..)` that collects
per-partition data in whatever order workers finish silently reorders
deliveries and breaks every downstream golden artifact.

The rule fires on `.extend(`/`.extend_from_slice(`/`.append(` inside
partition-merge contexts: functions whose name mentions `partition`, or
merge functions in the parallel module.

Fix: iterate the partition results by ascending partition index (or
another order fixed at partition time), then declare it:

    // probenet-lint: allow(unordered-partition-merge) merged in fixed ascending partition-index order
    deliveries.extend(e.deliveries().iter().cloned());

The annotation is the declaration — an undeclared merge is assumed
scheduling-dependent until proven otherwise.",
    },
    RuleInfo {
        id: "tainted-artifact-path",
        summary: "deep tier: no call chain from a nondeterminism source to an artifact sink",
        explain: "\
This is the interprocedural tier (`cargo xtask lint --deep`): a from-
scratch lexer and call-graph walk over the whole workspace, classifying
nondeterminism *sources* (wall-clock reads, ambient RNG, HashMap/HashSet
iteration, thread-id/env reads, address-as-value casts) and artifact
*sinks* (report/JSON serializers, wire::snapshot encoders, golden writers,
--bench-json emitters), and reporting every source that can reach a sink
through the call graph — the laundered-through-a-helper case the shallow
line rules provably cannot see.

The diagnostic anchors at the source site and prints the full call chain
to the sink. Shallow per-rule allows do NOT silence this rule: a wall-
clock read justified as \"observability only\" is exactly the site whose
value must not flow into a byte-compared artifact, so the deep tier keeps
watching it.

Fix: thread the value through as an explicit parameter derived from
(config, seed), or cut the chain. If the flow is intentional (real probe
timestamps ARE the measurement; bench wall-times are deliberately
host-dependent output), justify it where it originates:

    // probenet-lint: allow(tainted-artifact-path) probe timestamps are the data
    let epoch = Instant::now();

or mark a function that consumes nondeterminism without leaking it into
its return value or output parameters as a barrier:

    // probenet-lint: sanitize(tainted-artifact-path) logs wall time to stderr only
    fn log_progress(...) { ... }

`allow-file(tainted-artifact-path)` scopes the justification to a whole
module (the pattern used by crates/live/src/clock.rs).",
    },
];

/// Rule id of the deep interprocedural tier.
pub const DEEP_RULE: &str = "tainted-artifact-path";

/// Look up a rule by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Function-name fragments that mark a serialization/digest context for
/// `nondeterministic-iteration`.
const SERIALIZATION_FNS: &[&str] = &[
    "to_json",
    "to_wire",
    "to_bytes",
    "serialize",
    "render",
    "report",
    "snapshot",
    "digest",
    "golden",
    "encode",
    "emit",
    "write",
    "fmt",
    "to_csv",
];

/// File stems that are always serialization context (the report/wire path).
const SERIALIZATION_FILES: &[&str] = &[
    "report.rs",
    "stream_report.rs",
    "trace.rs",
    "csv.rs",
    "collector.rs",
];

fn file_name(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn in_wire_crate(path: &str) -> bool {
    // The merge daemon folds decoded wire state and re-renders byte-compared
    // reports, so it is held to the same no-lossy-cast bar as the codecs.
    // The mesh crate encodes hop-annotated frames and renders the golden
    // mesh artifact, which puts it on the same byte-compared path.
    // The live reactor encodes probe packets onto real sockets and tags
    // sequence numbers into a packed lane/slot wire format — a lossy cast
    // there corrupts the probe stream itself.
    path.contains("crates/wire/src")
        || path.contains("crates/merged/src")
        || path.contains("crates/mesh/src")
        || path.contains("crates/live/src")
}

/// Queueing/traffic model crates: their outputs (workload estimates, batch
/// parameters, interarrival streams) feed the reproduction's tables and
/// golden artifacts, so the lossy-cast and partition-merge rules extend to
/// them even though they hold no wire codecs themselves.
fn in_model_crate(path: &str) -> bool {
    path.contains("crates/queueing/src") || path.contains("crates/traffic/src")
}

fn is_serialization_file(path: &str) -> bool {
    in_wire_crate(path) || SERIALIZATION_FILES.contains(&file_name(path))
}

fn is_serialization_fn(name: &str) -> bool {
    !name.is_empty() && SERIALIZATION_FNS.iter().any(|f| name.contains(f))
}

/// Artifact-sink predicate for the deep tier: functions whose output is (or
/// feeds) a byte-compared artifact — report/JSON serializers, wire/snapshot
/// encoders, golden writers, bench emitters. Name fragments are shared with
/// the shallow serialization-context rule; file scope is the report/wire
/// path only (NOT the whole live/mesh cast scope — a reactor poll loop is
/// not a sink just because its crate holds codecs).
pub(crate) fn is_deep_sink(path: &str, fn_name: &str) -> bool {
    is_serialization_fn(fn_name)
        || SERIALIZATION_FILES.contains(&file_name(path))
        || path.contains("crates/wire/src")
}

/// Byte-boundary check: `code[at]` starts a standalone token (not the tail
/// of a longer identifier).
pub(crate) fn starts_token(code: &str, at: usize) -> bool {
    at == 0 || !code.as_bytes()[at - 1].is_ascii_alphanumeric() && code.as_bytes()[at - 1] != b'_'
}

/// Hits from one file: the violations to report plus the hits an allow
/// directive suppressed (0-based line), which feed the `--stats` consumed/
/// unused-allow accounting.
#[derive(Default)]
pub struct CheckOutcome {
    /// Violations to report.
    pub violations: Vec<Violation>,
    /// Hits silenced by an allow directive: (rule id, 0-based line).
    pub suppressed: Vec<(&'static str, usize)>,
}

/// Collector threaded through the matchers so a suppressed hit is
/// recorded instead of dropped.
struct Hits<'a> {
    out: &'a mut CheckOutcome,
}

/// Run every rule over one scrubbed file. `path` is workspace-relative.
pub fn check_file(path: &str, s: &Scrubbed, ctx: &FileContext) -> Vec<Violation> {
    check_file_full(path, s, ctx).violations
}

/// Like [`check_file`] but also returns the allow-suppressed hits.
pub fn check_file_full(path: &str, s: &Scrubbed, ctx: &FileContext) -> CheckOutcome {
    let mut outcome = CheckOutcome::default();
    let mut hits = Hits { out: &mut outcome };
    for (idx, line) in s.code.lines().enumerate() {
        nondeterministic_iteration(path, idx, line, ctx, &mut hits);
        wall_clock_in_sim(path, idx, line, ctx, &mut hits);
        ambient_rng(path, idx, line, ctx, &mut hits);
        order_sensitive_float_fold(path, idx, line, ctx, &mut hits);
        truncating_cast_in_wire(path, idx, line, ctx, &mut hits);
        unordered_partition_merge(path, idx, line, ctx, &mut hits);
    }
    outcome
}

fn push(
    out: &mut Hits<'_>,
    ctx: &FileContext,
    rule: &'static str,
    path: &str,
    idx: usize,
    message: String,
) {
    if ctx.is_allowed(rule, idx) {
        out.out.suppressed.push((rule, idx));
    } else {
        out.out.violations.push(Violation {
            rule,
            file: path.to_string(),
            line: idx + 1,
            message,
            chain: Vec::new(),
        });
    }
}

fn nondeterministic_iteration(
    path: &str,
    idx: usize,
    line: &str,
    ctx: &FileContext,
    out: &mut Hits<'_>,
) {
    const RULE: &str = "nondeterministic-iteration";
    if !(is_serialization_file(path) || is_serialization_fn(ctx.fn_at(idx))) {
        return;
    }
    for ident in hash_iteration_idents(line, ctx) {
        push(
            out,
            ctx,
            RULE,
            path,
            idx,
            format!(
                "iteration over hash-ordered `{ident}` in serialization context \
                 `{}` — use BTreeMap/BTreeSet or sort first",
                ctx.fn_at(idx)
            ),
        );
    }
}

/// Hash-typed identifiers iterated on this line, one entry per iteration
/// site. Shared by the shallow serialization-context rule above and the
/// deep taint pass's source scan (which matches anywhere, not just in
/// serialization contexts).
pub(crate) fn hash_iteration_idents<'a>(line: &str, ctx: &'a FileContext) -> Vec<&'a str> {
    const ITER_CALLS: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
    ];
    let mut found = Vec::new();
    for ident in &ctx.hash_idents {
        // `m.iter()`, `self.m.keys()`, ... with a token boundary before m.
        for call in ITER_CALLS {
            let needle = format!("{ident}{call}");
            let mut from = 0;
            while let Some(pos) = line[from..].find(&needle) {
                let at = from + pos;
                from = at + ident.len();
                if starts_token(line, at) {
                    found.push(ident.as_str());
                }
            }
        }
        // `for x in &m`, `for (k, v) in &mut self.m`, `for x in m`, ...
        for pat in [
            format!("in &{ident}"),
            format!("in &mut {ident}"),
            format!("in &self.{ident}"),
            format!("in &mut self.{ident}"),
            format!("in self.{ident}"),
            format!("in {ident}"),
        ] {
            if let Some(pos) = line.find(&pat) {
                let end = pos + pat.len();
                let boundary = line
                    .as_bytes()
                    .get(end)
                    .is_none_or(|b| !b.is_ascii_alphanumeric() && *b != b'_')
                    && starts_token(line, pos);
                if boundary {
                    found.push(ident.as_str());
                }
            }
        }
    }
    found
}

fn wall_clock_in_sim(path: &str, idx: usize, line: &str, ctx: &FileContext, out: &mut Hits<'_>) {
    const RULE: &str = "wall-clock-in-sim";
    for token in ["Instant::now(", "SystemTime::now("] {
        if let Some(pos) = line.find(token) {
            if starts_token(line, pos) {
                push(
                    out,
                    ctx,
                    RULE,
                    path,
                    idx,
                    format!(
                        "wall-clock read `{}` — sim/analysis paths must be pure in (config, seed); \
                         annotate genuine wall-clock sites with a justification",
                        token.trim_end_matches('(')
                    ),
                );
            }
        }
    }
}

fn ambient_rng(path: &str, idx: usize, line: &str, ctx: &FileContext, out: &mut Hits<'_>) {
    const RULE: &str = "ambient-rng";
    for token in ["thread_rng(", "rand::random", "from_entropy("] {
        if let Some(pos) = line.find(token) {
            if starts_token(line, pos) {
                push(
                    out,
                    ctx,
                    RULE,
                    path,
                    idx,
                    format!(
                        "ambient randomness `{}` — all randomness must flow from seeded \
                         splitmix64 streams so campaigns replay bit-for-bit",
                        token.trim_end_matches('(')
                    ),
                );
            }
        }
    }
}

fn order_sensitive_float_fold(
    path: &str,
    idx: usize,
    line: &str,
    ctx: &FileContext,
    out: &mut Hits<'_>,
) {
    const RULE: &str = "order-sensitive-float-fold";
    let fn_name = ctx.fn_at(idx);
    if !(fn_name.contains("merge") || fn_name.contains("snapshot")) {
        return;
    }
    // `.sum::<f64>()` / `.sum::<f32>()` — definitely float.
    for t in [".sum::<f64>()", ".sum::<f32>()"] {
        if line.contains(t) {
            push(
                out,
                ctx,
                RULE,
                path,
                idx,
                format!(
                    "float reduction `{t}` in `{fn_name}` — reduction order must be fixed for \
                     bitwise merge equality; annotate why the order is deterministic"
                ),
            );
        }
    }
    // Bare `.sum()` — type unknown; require an integer turbofish to prove
    // the reduction commutes exactly.
    let mut from = 0;
    while let Some(pos) = line[from..].find(".sum()") {
        let at = from + pos;
        from = at + ".sum()".len();
        push(
            out,
            ctx,
            RULE,
            path,
            idx,
            format!(
                "`.sum()` with inferred element type in `{fn_name}` — use an integer turbofish \
                 (e.g. `.sum::<u64>()`) or annotate the float reduction order"
            ),
        );
    }
    // `.fold(init, ...)` with a float-looking init.
    let mut from = 0;
    while let Some(pos) = line[from..].find(".fold(") {
        let at = from + pos;
        from = at + ".fold(".len();
        let args = &line[at + ".fold(".len()..];
        let init: String = args.chars().take_while(|c| *c != ',').collect();
        let floaty = init.contains("f64") || init.contains("f32") || {
            let b = init.as_bytes();
            b.windows(3)
                .any(|w| w[0].is_ascii_digit() && w[1] == b'.' && w[2].is_ascii_digit())
        };
        if floaty {
            push(
                out,
                ctx,
                RULE,
                path,
                idx,
                format!(
                    "float `.fold({init}, ..)` in `{fn_name}` — reduction order must be fixed \
                     for bitwise merge equality; annotate why the order is deterministic"
                ),
            );
        }
    }
}

fn unordered_partition_merge(
    path: &str,
    idx: usize,
    line: &str,
    ctx: &FileContext,
    out: &mut Hits<'_>,
) {
    const RULE: &str = "unordered-partition-merge";
    let fn_name = ctx.fn_at(idx);
    // Partition-merge context: a function reducing per-partition results.
    // Mailbox posts, wire encoders etc. use the same Vec verbs but combine
    // data from a single partition, so they stay out of scope.
    let in_scope = fn_name.contains("partition")
        || (file_name(path) == "parallel.rs" && fn_name.contains("merge"))
        // Mesh campaign reducers combine per-pair / per-vantage results
        // into byte-compared artifacts — same bar as partition merges.
        || (path.contains("crates/mesh/src")
            && (fn_name.contains("fold") || fn_name.contains("merge")
                || fn_name.contains("campaign")))
        // Live-reactor reducers fold per-session outcomes (which finish in
        // network-completion order) into reports and record streams; the
        // fold must declare a fixed session order or it inherits the
        // network's.
        || (path.contains("crates/live/src")
            && (fn_name.contains("merge") || fn_name.contains("drain")
                || fn_name.contains("outcome")))
        // Queueing/traffic reducers fold per-stream or per-batch model
        // results that feed the reproduction's tables; same fixed-order
        // bar as the engine partition merges.
        || (in_model_crate(path)
            && (fn_name.contains("merge") || fn_name.contains("fold")
                || fn_name.contains("partition")));
    if !in_scope {
        return;
    }
    for call in [".extend(", ".extend_from_slice(", ".append("] {
        if line.contains(call) {
            push(
                out,
                ctx,
                RULE,
                path,
                idx,
                format!(
                    "cross-partition `{}..)` in `{fn_name}` — the merged output feeds \
                     byte-compared artifacts, so the reduction must iterate partitions in a \
                     fixed order; declare it with an allow annotation naming that order",
                    call.trim_end_matches('(')
                ),
            );
        }
    }
}

fn truncating_cast_in_wire(
    path: &str,
    idx: usize,
    line: &str,
    ctx: &FileContext,
    out: &mut Hits<'_>,
) {
    const RULE: &str = "truncating-cast-in-wire";
    if !(is_serialization_file(path) || in_model_crate(path)) {
        return;
    }
    for target in ["u8", "u16", "u32", "i8", "i16", "i32"] {
        let needle = format!(" as {target}");
        let mut from = 0;
        while let Some(pos) = line[from..].find(&needle) {
            let at = from + pos;
            from = at + needle.len();
            let end = at + needle.len();
            let boundary = line
                .as_bytes()
                .get(end)
                .is_none_or(|b| !b.is_ascii_alphanumeric() && *b != b'_');
            // `u16::MAX as usize` style widenings don't match (target is
            // the narrow side here by construction); a match means source
            // expr is cast *to* a ≤32-bit integer.
            if boundary {
                push(
                    out,
                    ctx,
                    RULE,
                    path,
                    idx,
                    format!(
                        "lossy `as {target}` cast on the wire/report path — use \
                         `{target}::try_from(..)` or annotate intentional truncation"
                    ),
                );
            }
        }
    }
}
