//! The six `probenet-lint` rules.
//!
//! Each rule has a stable kebab-case id (used in diagnostics and in
//! `probenet-lint: allow(<id>)` escape comments), a one-line summary, and
//! a longer `--explain` text with the invariant it protects and an example
//! fix. Matching runs over scrubbed source (no strings/comments) with the
//! per-file context from [`crate::context`].

use crate::context::FileContext;
use crate::scrub::Scrubbed;

/// A single rule violation, ready to print as `file:line`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable rule id.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Why this site is a violation.
    pub message: String,
}

/// Description of one lint rule.
pub struct RuleInfo {
    /// Stable kebab-case id.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Long-form rationale + example fix, printed by `--explain`.
    pub explain: &'static str,
}

/// All rules, in diagnostic order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "nondeterministic-iteration",
        summary: "no HashMap/HashSet iteration in code that feeds serialization, digests, or golden artifacts",
        explain: "\
Golden traces, collector reports and FNV record digests are byte-compared
across runs and across PROBENET_THREADS settings, so any map iteration on
their data path must have a deterministic order. `HashMap`/`HashSet`
iteration order is randomized per process; one unordered loop feeding a
report silently breaks byte-identity the next time the hasher seed moves.

The rule fires on `.iter()/.keys()/.values()/.into_iter()/.drain()` (and
`for .. in &m`) over hash-typed bindings inside serialization contexts:
functions whose names look like serialization (`to_json`, `snapshot`,
`render`, `report`, `digest`, `write_*`, `fmt`, ...) or files on the
report/wire path.

Fix: use `BTreeMap`/`BTreeSet`, or collect and sort explicitly before
iterating:

    let mut keys: Vec<_> = map.keys().collect();
    keys.sort();
    for k in keys { ... }

If the iteration provably cannot affect ordering (e.g. it only sums a
commutative integer), annotate the line:

    // probenet-lint: allow(nondeterministic-iteration) <why it is safe>",
    },
    RuleInfo {
        id: "wall-clock-in-sim",
        summary: "no Instant::now/SystemTime outside the wall-clock allowlist",
        explain: "\
The simulator, the analysis pipeline and every artifact renderer must be a
pure function of (config, seed): DESIGN.md pins replay equality at
PROBENET_THREADS in {1,4,8} and byte-stable golden traces. A stray
`Instant::now()`/`SystemTime::now()` smuggles wall-clock time into that
function and the divergence only shows up when a golden test flakes.

Legitimate wall-clock sites exist: the real-UDP probe tool genuinely
timestamps packets (`crates/netdyn/src/udp.rs`), and the engine/bench
harness reports wall-time statistics that are observability, not data
(`crates/sim/src/engine.rs`, `crates/bench`). Those sites carry an
annotation naming their justification:

    // probenet-lint: allow(wall-clock-in-sim) real probe timestamps
    let epoch = Instant::now();

Fix for everything else: thread simulated time (`SimTime`) or an explicit
timestamp parameter through instead of reading the host clock.",
    },
    RuleInfo {
        id: "ambient-rng",
        summary: "no thread_rng/rand::random; randomness flows from seeded splitmix64 streams",
        explain: "\
Every random draw in probenet comes from a per-(port, purpose) splitmix64
stream derived from the experiment seed, so a campaign replays bit-for-bit
(DESIGN.md). `rand::thread_rng()`, `rand::random()` and `from_entropy()`
are ambient entropy: they cannot be replayed, and a single call anywhere
in a sim path destroys determinism for the whole artifact chain.

Fix: take an explicit `&mut` RNG (or a seed) as a parameter and derive it
from the experiment seed, e.g.

    let mut rng = SplitMix64::new(seed ^ PORT_SALT);

Tests that genuinely want ambient entropy (none today) must annotate:

    // probenet-lint: allow(ambient-rng) <why replay does not matter here>",
    },
    RuleInfo {
        id: "order-sensitive-float-fold",
        summary: "f64 sum/fold in merge/snapshot paths must declare reduction-order safety",
        explain: "\
`EstimatorBank::merge` must equal the serial fold bitwise (DESIGN.md
§11) — that is what lets multi-host shards combine exactly. Float addition
is not associative, so an `f64` `.sum()`/`.fold()` inside a merge or
snapshot path is only correct if its reduction order is fixed (a `Vec` in
stored order) — never if the order depends on thread completion or map
iteration.

The rule fires on `.sum()`/`.fold()` in functions whose name contains
`merge` or `snapshot` when the element type is floating (or not provably
integral). Make integer reductions explicit with a turbofish —
`.sum::<u64>()` — and annotate float reductions whose order is fixed:

    // probenet-lint: allow(order-sensitive-float-fold) Vec order is stored order
    let total: f64 = self.parts.iter().sum::<f64>();

If the order is NOT fixed, restructure: fold in key order (BTreeMap), or
keep per-shard partials and combine them in a canonical sequence.",
    },
    RuleInfo {
        id: "truncating-cast-in-wire",
        summary: "no lossy `as` casts in wire codecs or report serialization",
        explain: "\
Wire codecs round-trip and golden artifacts are byte-compared; a lossy
`value as u16` silently wraps out-of-range values instead of failing, and
the corruption ships in the encoded bytes. In `crates/wire`, the merge
daemon (`crates/merged`), and the report serialization files the rule
flags `as u8/u16/u32/i8/i16/i32`.

Fix: use the checked conversions —

    let len = u16::try_from(payload.len()).expect(\"datagram fits u16\");

— or, where truncation IS the specified wire behavior (checksum folding,
splitting a u48 into u16/u32 halves), annotate it:

    // probenet-lint: allow(truncating-cast-in-wire) checksum folds mod 2^16
    !(sum as u16)",
    },
    RuleInfo {
        id: "unordered-partition-merge",
        summary: "cross-partition merges must declare their fixed partition order",
        explain: "\
The parallel engine's contract is byte-identity with the serial run at any
`PROBENET_THREADS` (DESIGN.md §13): after the partitions quiesce, their
per-partition results are concatenated into one outcome, and that merge is
only reproducible if it iterates partitions in a fixed order independent
of thread completion. An `.extend(..)`/`.append(..)` that collects
per-partition data in whatever order workers finish silently reorders
deliveries and breaks every downstream golden artifact.

The rule fires on `.extend(`/`.extend_from_slice(`/`.append(` inside
partition-merge contexts: functions whose name mentions `partition`, or
merge functions in the parallel module.

Fix: iterate the partition results by ascending partition index (or
another order fixed at partition time), then declare it:

    // probenet-lint: allow(unordered-partition-merge) merged in fixed ascending partition-index order
    deliveries.extend(e.deliveries().iter().cloned());

The annotation is the declaration — an undeclared merge is assumed
scheduling-dependent until proven otherwise.",
    },
];

/// Look up a rule by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Function-name fragments that mark a serialization/digest context for
/// `nondeterministic-iteration`.
const SERIALIZATION_FNS: &[&str] = &[
    "to_json",
    "to_wire",
    "to_bytes",
    "serialize",
    "render",
    "report",
    "snapshot",
    "digest",
    "golden",
    "encode",
    "emit",
    "write",
    "fmt",
    "to_csv",
];

/// File stems that are always serialization context (the report/wire path).
const SERIALIZATION_FILES: &[&str] = &[
    "report.rs",
    "stream_report.rs",
    "trace.rs",
    "csv.rs",
    "collector.rs",
];

fn file_name(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn in_wire_crate(path: &str) -> bool {
    // The merge daemon folds decoded wire state and re-renders byte-compared
    // reports, so it is held to the same no-lossy-cast bar as the codecs.
    // The mesh crate encodes hop-annotated frames and renders the golden
    // mesh artifact, which puts it on the same byte-compared path.
    // The live reactor encodes probe packets onto real sockets and tags
    // sequence numbers into a packed lane/slot wire format — a lossy cast
    // there corrupts the probe stream itself.
    path.contains("crates/wire/src")
        || path.contains("crates/merged/src")
        || path.contains("crates/mesh/src")
        || path.contains("crates/live/src")
}

fn is_serialization_file(path: &str) -> bool {
    in_wire_crate(path) || SERIALIZATION_FILES.contains(&file_name(path))
}

fn is_serialization_fn(name: &str) -> bool {
    !name.is_empty() && SERIALIZATION_FNS.iter().any(|f| name.contains(f))
}

/// Byte-boundary check: `code[at]` starts a standalone token (not the tail
/// of a longer identifier).
fn starts_token(code: &str, at: usize) -> bool {
    at == 0 || !code.as_bytes()[at - 1].is_ascii_alphanumeric() && code.as_bytes()[at - 1] != b'_'
}

/// Run every rule over one scrubbed file. `path` is workspace-relative.
pub fn check_file(path: &str, s: &Scrubbed, ctx: &FileContext) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in s.code.lines().enumerate() {
        nondeterministic_iteration(path, idx, line, ctx, &mut out);
        wall_clock_in_sim(path, idx, line, ctx, &mut out);
        ambient_rng(path, idx, line, ctx, &mut out);
        order_sensitive_float_fold(path, idx, line, ctx, &mut out);
        truncating_cast_in_wire(path, idx, line, ctx, &mut out);
        unordered_partition_merge(path, idx, line, ctx, &mut out);
    }
    out
}

fn push(
    out: &mut Vec<Violation>,
    ctx: &FileContext,
    rule: &'static str,
    path: &str,
    idx: usize,
    message: String,
) {
    if !ctx.is_allowed(rule, idx) {
        out.push(Violation {
            rule,
            file: path.to_string(),
            line: idx + 1,
            message,
        });
    }
}

fn nondeterministic_iteration(
    path: &str,
    idx: usize,
    line: &str,
    ctx: &FileContext,
    out: &mut Vec<Violation>,
) {
    const RULE: &str = "nondeterministic-iteration";
    if !(is_serialization_file(path) || is_serialization_fn(ctx.fn_at(idx))) {
        return;
    }
    const ITER_CALLS: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
    ];
    for ident in &ctx.hash_idents {
        // `m.iter()`, `self.m.keys()`, ... with a token boundary before m.
        for call in ITER_CALLS {
            let needle = format!("{ident}{call}");
            let mut from = 0;
            while let Some(pos) = line[from..].find(&needle) {
                let at = from + pos;
                from = at + ident.len();
                if starts_token(line, at) {
                    push(
                        out,
                        ctx,
                        RULE,
                        path,
                        idx,
                        format!(
                            "iteration over hash-ordered `{ident}` in serialization context \
                             `{}` — use BTreeMap/BTreeSet or sort first",
                            ctx.fn_at(idx)
                        ),
                    );
                }
            }
        }
        // `for x in &m`, `for (k, v) in &mut self.m`, `for x in m`, ...
        for pat in [
            format!("in &{ident}"),
            format!("in &mut {ident}"),
            format!("in &self.{ident}"),
            format!("in &mut self.{ident}"),
            format!("in self.{ident}"),
            format!("in {ident}"),
        ] {
            if let Some(pos) = line.find(&pat) {
                let end = pos + pat.len();
                let boundary = line
                    .as_bytes()
                    .get(end)
                    .is_none_or(|b| !b.is_ascii_alphanumeric() && *b != b'_')
                    && starts_token(line, pos);
                if boundary {
                    push(
                        out,
                        ctx,
                        RULE,
                        path,
                        idx,
                        format!(
                            "iteration over hash-ordered `{ident}` in serialization context \
                             `{}` — use BTreeMap/BTreeSet or sort first",
                            ctx.fn_at(idx)
                        ),
                    );
                }
            }
        }
    }
}

fn wall_clock_in_sim(
    path: &str,
    idx: usize,
    line: &str,
    ctx: &FileContext,
    out: &mut Vec<Violation>,
) {
    const RULE: &str = "wall-clock-in-sim";
    for token in ["Instant::now(", "SystemTime::now("] {
        if let Some(pos) = line.find(token) {
            if starts_token(line, pos) {
                push(
                    out,
                    ctx,
                    RULE,
                    path,
                    idx,
                    format!(
                        "wall-clock read `{}` — sim/analysis paths must be pure in (config, seed); \
                         annotate genuine wall-clock sites with a justification",
                        token.trim_end_matches('(')
                    ),
                );
            }
        }
    }
}

fn ambient_rng(path: &str, idx: usize, line: &str, ctx: &FileContext, out: &mut Vec<Violation>) {
    const RULE: &str = "ambient-rng";
    for token in ["thread_rng(", "rand::random", "from_entropy("] {
        if let Some(pos) = line.find(token) {
            if starts_token(line, pos) {
                push(
                    out,
                    ctx,
                    RULE,
                    path,
                    idx,
                    format!(
                        "ambient randomness `{}` — all randomness must flow from seeded \
                         splitmix64 streams so campaigns replay bit-for-bit",
                        token.trim_end_matches('(')
                    ),
                );
            }
        }
    }
}

fn order_sensitive_float_fold(
    path: &str,
    idx: usize,
    line: &str,
    ctx: &FileContext,
    out: &mut Vec<Violation>,
) {
    const RULE: &str = "order-sensitive-float-fold";
    let fn_name = ctx.fn_at(idx);
    if !(fn_name.contains("merge") || fn_name.contains("snapshot")) {
        return;
    }
    // `.sum::<f64>()` / `.sum::<f32>()` — definitely float.
    for t in [".sum::<f64>()", ".sum::<f32>()"] {
        if line.contains(t) {
            push(
                out,
                ctx,
                RULE,
                path,
                idx,
                format!(
                    "float reduction `{t}` in `{fn_name}` — reduction order must be fixed for \
                     bitwise merge equality; annotate why the order is deterministic"
                ),
            );
        }
    }
    // Bare `.sum()` — type unknown; require an integer turbofish to prove
    // the reduction commutes exactly.
    let mut from = 0;
    while let Some(pos) = line[from..].find(".sum()") {
        let at = from + pos;
        from = at + ".sum()".len();
        push(
            out,
            ctx,
            RULE,
            path,
            idx,
            format!(
                "`.sum()` with inferred element type in `{fn_name}` — use an integer turbofish \
                 (e.g. `.sum::<u64>()`) or annotate the float reduction order"
            ),
        );
    }
    // `.fold(init, ...)` with a float-looking init.
    let mut from = 0;
    while let Some(pos) = line[from..].find(".fold(") {
        let at = from + pos;
        from = at + ".fold(".len();
        let args = &line[at + ".fold(".len()..];
        let init: String = args.chars().take_while(|c| *c != ',').collect();
        let floaty = init.contains("f64") || init.contains("f32") || {
            let b = init.as_bytes();
            b.windows(3)
                .any(|w| w[0].is_ascii_digit() && w[1] == b'.' && w[2].is_ascii_digit())
        };
        if floaty {
            push(
                out,
                ctx,
                RULE,
                path,
                idx,
                format!(
                    "float `.fold({init}, ..)` in `{fn_name}` — reduction order must be fixed \
                     for bitwise merge equality; annotate why the order is deterministic"
                ),
            );
        }
    }
}

fn unordered_partition_merge(
    path: &str,
    idx: usize,
    line: &str,
    ctx: &FileContext,
    out: &mut Vec<Violation>,
) {
    const RULE: &str = "unordered-partition-merge";
    let fn_name = ctx.fn_at(idx);
    // Partition-merge context: a function reducing per-partition results.
    // Mailbox posts, wire encoders etc. use the same Vec verbs but combine
    // data from a single partition, so they stay out of scope.
    let in_scope = fn_name.contains("partition")
        || (file_name(path) == "parallel.rs" && fn_name.contains("merge"))
        // Mesh campaign reducers combine per-pair / per-vantage results
        // into byte-compared artifacts — same bar as partition merges.
        || (path.contains("crates/mesh/src")
            && (fn_name.contains("fold") || fn_name.contains("merge")
                || fn_name.contains("campaign")))
        // Live-reactor reducers fold per-session outcomes (which finish in
        // network-completion order) into reports and record streams; the
        // fold must declare a fixed session order or it inherits the
        // network's.
        || (path.contains("crates/live/src")
            && (fn_name.contains("merge") || fn_name.contains("drain")
                || fn_name.contains("outcome")));
    if !in_scope {
        return;
    }
    for call in [".extend(", ".extend_from_slice(", ".append("] {
        if line.contains(call) {
            push(
                out,
                ctx,
                RULE,
                path,
                idx,
                format!(
                    "cross-partition `{}..)` in `{fn_name}` — the merged output feeds \
                     byte-compared artifacts, so the reduction must iterate partitions in a \
                     fixed order; declare it with an allow annotation naming that order",
                    call.trim_end_matches('(')
                ),
            );
        }
    }
}

fn truncating_cast_in_wire(
    path: &str,
    idx: usize,
    line: &str,
    ctx: &FileContext,
    out: &mut Vec<Violation>,
) {
    const RULE: &str = "truncating-cast-in-wire";
    if !is_serialization_file(path) {
        return;
    }
    for target in ["u8", "u16", "u32", "i8", "i16", "i32"] {
        let needle = format!(" as {target}");
        let mut from = 0;
        while let Some(pos) = line[from..].find(&needle) {
            let at = from + pos;
            from = at + needle.len();
            let end = at + needle.len();
            let boundary = line
                .as_bytes()
                .get(end)
                .is_none_or(|b| !b.is_ascii_alphanumeric() && *b != b'_');
            // `u16::MAX as usize` style widenings don't match (target is
            // the narrow side here by construction); a match means source
            // expr is cast *to* a ≤32-bit integer.
            if boundary {
                push(
                    out,
                    ctx,
                    RULE,
                    path,
                    idx,
                    format!(
                        "lossy `as {target}` cast on the wire/report path — use \
                         `{target}::try_from(..)` or annotate intentional truncation"
                    ),
                );
            }
        }
    }
}
