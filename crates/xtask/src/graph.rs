//! Workspace call-graph extraction for the deep lint tier.
//!
//! A single pass over each file's token stream ([`crate::lexer`]) recovers
//! the item structure the taint pass needs: every `fn` item (with its
//! enclosing `impl` type, inline-module path and body line span) and every
//! call site inside a function body (bare calls, `path::to::fn(..)` calls
//! with their qualifier segments, `.method(..)` calls, turbofish forms).
//! Calls are then name-linked into edges: a call resolves to every
//! workspace function with that name whose qualifier is compatible —
//! over-approximating dispatch (trait objects, same-named methods) rather
//! than missing it, which is the right bias for a lint: a false edge can
//! be silenced with a justified allow, a missed edge is a silent hole.
//!
//! Calls that resolve to nothing (std, vendored externs) create no edge.

use crate::lexer::{lex, SpannedTok, Tok};
use crate::scrub::Scrubbed;
use std::collections::{BTreeMap, BTreeSet};

/// One `fn` item discovered in the workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type (last path segment), if any.
    pub qual: Option<String>,
    /// Module path: crate name, then directory/file/inline-mod segments.
    pub module: Vec<String>,
    /// Workspace-relative file path.
    pub file: String,
    /// 0-based line of the `fn` keyword.
    pub decl_line: usize,
    /// 0-based line range of the body (inclusive).
    pub body_start: usize,
    /// Last 0-based line of the body.
    pub body_end: usize,
    /// Declared inside a `mod tests`/`mod test` block. Test functions are
    /// kept in the graph (their spans still attribute source sites) but the
    /// taint pass neither treats them as sinks nor walks chains through
    /// them: tests consume artifacts, they do not produce them.
    pub in_tests: bool,
}

impl FnDef {
    /// `Type::name` or `name`, for diagnostics.
    pub fn display_name(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the calling function in [`CallGraph::fns`].
    pub caller: usize,
    /// Callee name (last path segment / method name).
    pub name: String,
    /// Qualifier path segments before the name (empty for bare and
    /// method calls): `std::time::Instant::now` -> ["std","time","Instant"].
    pub quals: Vec<String>,
    /// 0-based line of the call.
    pub line: usize,
}

/// The workspace-wide call graph.
pub struct CallGraph {
    /// Every function item, in file order.
    pub fns: Vec<FnDef>,
    /// Every extracted call site (resolved or not).
    pub calls: Vec<CallSite>,
    /// Resolved edges (caller, callee, 0-based call line), deduplicated on
    /// (caller, callee) keeping the first call line as the witness.
    pub edges: Vec<(usize, usize, usize)>,
    /// Reverse adjacency: callee -> [(caller, call line)].
    pub reverse: Vec<Vec<(usize, usize)>>,
    by_name: BTreeMap<String, Vec<usize>>,
    file_fns: BTreeMap<String, Vec<usize>>,
}

/// Keywords that look like call heads in token patterns but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "ref", "mut", "box",
    "await", "else", "unsafe", "let", "fn", "impl", "pub", "use", "where", "dyn", "break",
    "continue", "yield",
];

/// Module path from a workspace-relative file path:
/// `crates/sim/src/parallel.rs` -> ["sim", "parallel"],
/// `crates/bench/src/bin/repro.rs` -> ["bench", "bin", "repro"],
/// `src/lib.rs` -> ["probenet"].
fn module_of(path: &str) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let parts: Vec<&str> = path.split('/').collect();
    if parts.first() == Some(&"crates") && parts.len() >= 2 {
        segs.push(parts[1].to_string());
    } else {
        segs.push("probenet".to_string());
    }
    if let Some(srcpos) = parts.iter().position(|p| *p == "src") {
        for p in &parts[srcpos + 1..] {
            let stem = p.strip_suffix(".rs").unwrap_or(p);
            if stem != "lib" && stem != "main" && stem != "mod" {
                segs.push(stem.to_string());
            }
        }
    }
    segs
}

impl CallGraph {
    /// Build the graph from scrubbed files: `(workspace-relative path,
    /// scrubbed source)` in deterministic order.
    pub fn build(files: &[(String, Scrubbed)]) -> CallGraph {
        let mut fns = Vec::new();
        let mut calls = Vec::new();
        for (path, scrubbed) in files {
            extract_file(path, scrubbed, &mut fns, &mut calls);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut file_fns: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
            file_fns.entry(f.file.clone()).or_default().push(i);
        }
        let mut g = CallGraph {
            fns,
            calls,
            edges: Vec::new(),
            reverse: Vec::new(),
            by_name,
            file_fns,
        };
        g.link();
        g
    }

    /// Name-link every call site into (caller, callee, line) edges.
    fn link(&mut self) {
        let mut seen = BTreeSet::new();
        let mut edges = Vec::new();
        for call in &self.calls {
            for callee in self.resolve(call) {
                if callee != call.caller && seen.insert((call.caller, callee)) {
                    edges.push((call.caller, callee, call.line));
                }
            }
        }
        let mut reverse = vec![Vec::new(); self.fns.len()];
        for &(caller, callee, line) in &edges {
            reverse[callee].push((caller, line));
        }
        self.edges = edges;
        self.reverse = reverse;
    }

    /// Workspace functions a call site may dispatch to.
    fn resolve(&self, call: &CallSite) -> Vec<usize> {
        let Some(cands) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        let Some(last_qual) = call.quals.last() else {
            // Bare or method call: every same-named workspace fn.
            return cands.clone();
        };
        let caller = &self.fns[call.caller];
        let q = last_qual.as_str();
        // `Self::f()` dispatches within the caller's impl type.
        let q = if q == "Self" {
            match &caller.qual {
                Some(t) => t.as_str(),
                None => return cands.clone(),
            }
        } else {
            q
        };
        if q == "self" || q == "crate" || q == "super" {
            // Module-relative path: prefer same-crate candidates.
            let same: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| self.fns[i].module.first() == caller.module.first())
                .collect();
            return if same.is_empty() { cands.clone() } else { same };
        }
        let starts_upper = q.chars().next().is_some_and(|c| c.is_ascii_uppercase());
        if starts_upper {
            // Type-qualified: only impls of that type. No workspace impl
            // means a foreign type (Vec::new, u16::try_from) — no edge.
            return cands
                .iter()
                .copied()
                .filter(|&i| self.fns[i].qual.as_deref() == Some(q))
                .collect();
        }
        // Module-qualified: match a module segment (crate names keep or
        // drop their `probenet_` prefix interchangeably).
        let base = q.strip_prefix("probenet_").unwrap_or(q);
        cands
            .iter()
            .copied()
            .filter(|&i| self.fns[i].module.iter().any(|m| m == base || m == q))
            .collect()
    }

    /// Innermost function containing 0-based `line` of `file`.
    pub fn fn_at(&self, file: &str, line: usize) -> Option<usize> {
        let fns = self.file_fns.get(file)?;
        fns.iter()
            .copied()
            .filter(|&i| {
                let f = &self.fns[i];
                f.body_start <= line && line <= f.body_end
            })
            .min_by_key(|&i| self.fns[i].body_end - self.fns[i].body_start)
    }
}

/// Pending item header awaiting its opening brace.
enum Pending {
    Fn {
        name: String,
        decl_line: usize,
        /// Paren/bracket depth inside the signature, so `;` inside
        /// `[u8; 4]` does not read as a bodyless trait signature.
        group_depth: usize,
    },
    Impl {
        type_name: Option<String>,
    },
    Mod {
        name: String,
    },
}

/// Extract functions and call sites from one file's token stream.
fn extract_file(path: &str, scrubbed: &Scrubbed, fns: &mut Vec<FnDef>, calls: &mut Vec<CallSite>) {
    let toks = lex(&scrubbed.code);
    let base_module = module_of(path);

    let mut depth = 0usize;
    // (inline-module name, depth its braces opened at)
    let mut mod_stack: Vec<(String, usize)> = Vec::new();
    // (impl type, depth)
    let mut impl_stack: Vec<(Option<String>, usize)> = Vec::new();
    // (fn index, depth)
    let mut fn_stack: Vec<(usize, usize)> = Vec::new();
    let mut pending: Option<Pending> = None;

    let mut i = 0usize;
    while i < toks.len() {
        let SpannedTok { tok, line } = &toks[i];
        match tok {
            // Skip attributes entirely: `#[...]` / `#![...]`.
            Tok::Punct(b'#') => {
                let mut j = i + 1;
                if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct(b'!'))) {
                    j += 1;
                }
                if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct(b'['))) {
                    let mut bd = 0usize;
                    while j < toks.len() {
                        match toks[j].tok {
                            Tok::Punct(b'[') => bd += 1,
                            Tok::Punct(b']') => {
                                bd -= 1;
                                if bd == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j + 1;
                    continue;
                }
                i += 1;
            }
            Tok::Ident(w) if w == "mod" => {
                if let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) {
                    pending = Some(Pending::Mod { name: name.clone() });
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(w) if w == "impl" => {
                let (type_name, next) = parse_impl_header(&toks, i + 1);
                pending = Some(Pending::Impl { type_name });
                i = next;
            }
            Tok::Ident(w) if w == "fn" => {
                if let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) {
                    pending = Some(Pending::Fn {
                        name: name.clone(),
                        decl_line: *line,
                        group_depth: 0,
                    });
                    i += 2;
                } else {
                    // `fn(u8) -> u8` type position — not an item.
                    i += 1;
                }
            }
            Tok::Punct(b'(') | Tok::Punct(b'[') => {
                if let Some(Pending::Fn { group_depth, .. }) = &mut pending {
                    *group_depth += 1;
                }
                // A `(` directly after an ident/turbofish inside a fn body
                // is a call site.
                if matches!(tok, Tok::Punct(b'(')) {
                    if let Some(&(caller, _)) = fn_stack.last() {
                        record_call(&toks, i, caller, calls);
                    }
                }
                i += 1;
            }
            Tok::Punct(b')') | Tok::Punct(b']') => {
                if let Some(Pending::Fn { group_depth, .. }) = &mut pending {
                    *group_depth = group_depth.saturating_sub(1);
                }
                i += 1;
            }
            Tok::Punct(b';') => {
                match &pending {
                    Some(Pending::Fn { group_depth, .. }) if *group_depth == 0 => {
                        // Bodyless trait signature.
                        pending = None;
                    }
                    Some(Pending::Mod { .. }) => {
                        // `mod x;` — out-of-line module.
                        pending = None;
                    }
                    _ => {}
                }
                i += 1;
            }
            Tok::Punct(b'{') => {
                depth += 1;
                match pending.take() {
                    Some(Pending::Fn {
                        name, decl_line, ..
                    }) => {
                        let mut module = base_module.clone();
                        module.extend(mod_stack.iter().map(|(n, _)| n.clone()));
                        let qual = impl_stack.last().and_then(|(t, _)| t.clone());
                        let in_tests = mod_stack.iter().any(|(n, _)| n == "tests" || n == "test");
                        fns.push(FnDef {
                            name,
                            qual,
                            module,
                            file: path.to_string(),
                            decl_line,
                            body_start: *line,
                            body_end: *line, // patched on close
                            in_tests,
                        });
                        fn_stack.push((fns.len() - 1, depth));
                    }
                    Some(Pending::Impl { type_name }) => {
                        impl_stack.push((type_name, depth));
                    }
                    Some(Pending::Mod { name }) => {
                        mod_stack.push((name, depth));
                    }
                    None => {}
                }
                i += 1;
            }
            Tok::Punct(b'}') => {
                if let Some(&(fn_idx, d)) = fn_stack.last() {
                    if d == depth {
                        fns[fn_idx].body_end = *line;
                        fn_stack.pop();
                    }
                }
                if impl_stack.last().is_some_and(|&(_, d)| d == depth) {
                    impl_stack.pop();
                }
                if mod_stack.last().is_some_and(|&(_, d)| d == depth) {
                    mod_stack.pop();
                }
                depth = depth.saturating_sub(1);
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    // Unterminated bodies (should not happen on real source): close at the
    // last token's line so spans stay well-formed.
    let last_line = toks.last().map_or(0, |t| t.line);
    for &(fn_idx, _) in &fn_stack {
        fns[fn_idx].body_end = last_line;
    }
}

/// Parse an `impl` header starting at token `start` (just past `impl`).
/// Returns the implemented type's last path segment and the index of the
/// token at which scanning should resume (the header's `{`, or wherever
/// parsing gave up).
fn parse_impl_header(toks: &[SpannedTok], start: usize) -> (Option<String>, usize) {
    let mut i = start;
    // Skip `<...>` generics directly after `impl`.
    if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(b'<'))) {
        i = skip_angles(toks, i);
    }
    let mut last_ident: Option<String> = None;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct(b'{') | Tok::Punct(b';') => break,
            Tok::Ident(w) if w == "for" => {
                // `impl Trait for Type` — restart on the type side.
                last_ident = None;
                i += 1;
            }
            Tok::Ident(w) if w == "where" => {
                // Bounds only from here on; the type is already read.
                i += 1;
                while i < toks.len() && !matches!(toks[i].tok, Tok::Punct(b'{')) {
                    i += 1;
                }
                break;
            }
            Tok::Ident(w) => {
                last_ident = Some(w.clone());
                i += 1;
            }
            Tok::Punct(b'<') => {
                i = skip_angles(toks, i);
            }
            _ => {
                i += 1;
            }
        }
    }
    (last_ident, i)
}

/// Skip a balanced `<...>` group starting at the `<` at `at`. `>>` lexes
/// as two `>` puncts and `->`/`=>` are distinct tokens, so plain depth
/// counting is exact here.
fn skip_angles(toks: &[SpannedTok], at: usize) -> usize {
    let mut d = 0usize;
    let mut i = at;
    while i < toks.len() {
        match toks[i].tok {
            Tok::Punct(b'<') => d += 1,
            Tok::Punct(b'>') => {
                d = d.saturating_sub(1);
                if d == 0 {
                    return i + 1;
                }
            }
            Tok::Punct(b'{') | Tok::Punct(b';') => return i, // malformed; bail
            _ => {}
        }
        i += 1;
    }
    i
}

/// Record the call site ending at the `(` at token index `open`, if the
/// preceding tokens form one.
fn record_call(toks: &[SpannedTok], open: usize, caller: usize, calls: &mut Vec<CallSite>) {
    if open == 0 {
        return;
    }
    let mut j = open - 1;
    // Turbofish: `name::<T>(` — step back over the `<...>` group.
    if matches!(toks[j].tok, Tok::Punct(b'>')) {
        let mut d = 0usize;
        loop {
            match toks[j].tok {
                Tok::Punct(b'>') => d += 1,
                Tok::Punct(b'<') => {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return;
            }
            j -= 1;
        }
        // The group must be a turbofish (`::<`), not a comparison.
        if j == 0 || !matches!(toks[j - 1].tok, Tok::PathSep) {
            return;
        }
        j -= 2; // onto the ident before `::`
    }
    let Tok::Ident(name) = &toks[j].tok else {
        return;
    };
    if NON_CALL_KEYWORDS.contains(&name.as_str()) {
        return;
    }
    // `fn name(` is the declaration, not a call.
    if j > 0 {
        if let Tok::Ident(prev) = &toks[j - 1].tok {
            if prev == "fn" {
                return;
            }
        }
    }
    let line = toks[j].line;
    // Method call `.name(`.
    if j > 0 && matches!(toks[j - 1].tok, Tok::Punct(b'.')) {
        calls.push(CallSite {
            caller,
            name: name.clone(),
            quals: Vec::new(),
            line,
        });
        return;
    }
    // Path call: collect `seg::seg::name(` qualifiers right-to-left.
    let mut quals_rev: Vec<String> = Vec::new();
    let mut k = j;
    while k >= 2 && matches!(toks[k - 1].tok, Tok::PathSep) {
        if let Tok::Ident(seg) = &toks[k - 2].tok {
            quals_rev.push(seg.clone());
            k -= 2;
        } else {
            break;
        }
    }
    quals_rev.reverse();
    calls.push(CallSite {
        caller,
        name: name.clone(),
        quals: quals_rev,
        line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let scrubbed: Vec<(String, Scrubbed)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), scrub(s)))
            .collect();
        CallGraph::build(&scrubbed)
    }

    #[test]
    fn extracts_fns_with_impl_and_module_context() {
        let g = graph_of(&[(
            "crates/sim/src/engine.rs",
            "impl Engine {\n    pub fn run(&mut self) {}\n}\nmod inner {\n    fn helper() {}\n}\n",
        )]);
        assert_eq!(g.fns.len(), 2);
        assert_eq!(g.fns[0].name, "run");
        assert_eq!(g.fns[0].qual.as_deref(), Some("Engine"));
        assert_eq!(g.fns[0].module, vec!["sim", "engine"]);
        assert_eq!(g.fns[1].name, "helper");
        assert_eq!(g.fns[1].module, vec!["sim", "engine", "inner"]);
    }

    #[test]
    fn links_bare_path_and_method_calls() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "pub fn helper() {}\npub struct T;\nimpl T {\n    pub fn m(&self) {}\n}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn top(t: &probenet_a::T) {\n    probenet_a::helper();\n    t.m();\n}\n",
            ),
        ]);
        let top = g.fns.iter().position(|f| f.name == "top").unwrap();
        let helper = g.fns.iter().position(|f| f.name == "helper").unwrap();
        let m = g.fns.iter().position(|f| f.name == "m").unwrap();
        assert!(g.edges.iter().any(|&(c, e, _)| c == top && e == helper));
        assert!(g.edges.iter().any(|&(c, e, _)| c == top && e == m));
    }

    #[test]
    fn type_qualified_calls_do_not_leak_across_impls() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub struct A;\npub struct B;\nimpl A {\n    pub fn make() {}\n}\nimpl B {\n    pub fn make() {}\n}\npub fn go() {\n    A::make();\n}\n",
        )]);
        let go = g.fns.iter().position(|f| f.name == "go").unwrap();
        let a_make = g
            .fns
            .iter()
            .position(|f| f.name == "make" && f.qual.as_deref() == Some("A"))
            .unwrap();
        let b_make = g
            .fns
            .iter()
            .position(|f| f.name == "make" && f.qual.as_deref() == Some("B"))
            .unwrap();
        assert!(g.edges.iter().any(|&(c, e, _)| c == go && e == a_make));
        assert!(!g.edges.iter().any(|&(c, e, _)| c == go && e == b_make));
    }

    #[test]
    fn foreign_calls_create_no_edges() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn go() -> u16 {\n    let v = Vec::new();\n    u16::try_from(v.len()).unwrap()\n}\n",
        )]);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn noisy() {}\npub fn go() {\n    println!(\"noisy()\");\n    assert!(true);\n}\n",
        )]);
        let go = g.fns.iter().position(|f| f.name == "go").unwrap();
        assert!(
            !g.edges.iter().any(|&(c, _, _)| c == go),
            "macro bodies / string contents must not create edges: {:?}",
            g.edges
        );
    }

    #[test]
    fn turbofish_calls_resolve() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn pick<T>() {}\npub fn go() {\n    pick::<u64>();\n}\n",
        )]);
        let go = g.fns.iter().position(|f| f.name == "go").unwrap();
        let pick = g.fns.iter().position(|f| f.name == "pick").unwrap();
        assert!(g.edges.iter().any(|&(c, e, _)| c == go && e == pick));
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub trait T {\n    fn sig(&self, buf: [u8; 4]);\n    fn with_default(&self) {\n        helper();\n    }\n}\nfn helper() {}\n",
        )]);
        assert_eq!(
            g.fns.iter().filter(|f| f.name == "sig").count(),
            0,
            "bodyless signatures are not definitions"
        );
        let wd = g.fns.iter().position(|f| f.name == "with_default").unwrap();
        let helper = g.fns.iter().position(|f| f.name == "helper").unwrap();
        assert!(g.edges.iter().any(|&(c, e, _)| c == wd && e == helper));
    }

    #[test]
    fn fn_at_returns_innermost() {
        let src = "pub fn outer() {\n    x();\n    fn inner() {\n        y();\n    }\n}\n";
        let g = graph_of(&[("crates/a/src/lib.rs", src)]);
        let outer = g.fns.iter().position(|f| f.name == "outer").unwrap();
        let inner = g.fns.iter().position(|f| f.name == "inner").unwrap();
        assert_eq!(g.fn_at("crates/a/src/lib.rs", 1), Some(outer));
        assert_eq!(g.fn_at("crates/a/src/lib.rs", 3), Some(inner));
        assert_eq!(g.fn_at("crates/a/src/lib.rs", 10), None);
    }
}
