//! `probenet-lint`: a static-analysis pass enforcing the workspace's
//! determinism and serialization invariants.
//!
//! Every claim the repo makes about Bolot-style reproducibility rests on
//! bit-identical determinism: golden traces, `PROBENET_THREADS ∈ {1,4,8}`
//! replay equality, and the estimator-algebra contract that `merge ==
//! serial fold` bitwise (DESIGN.md §11–§12). The dynamic suites catch a
//! violation only after it lands; this pass rejects the patterns that
//! cause them at review time.
//!
//! This build environment is fully offline (every dependency is a vendored
//! stand-in), so instead of a `syn` AST the pass runs on a purpose-built
//! pipeline: a layout-preserving scrubber ([`scrub`]) removes comments and
//! literal contents, a context builder ([`context`]) recovers enclosing
//! functions, hash-typed bindings and `probenet-lint:` directives, and the
//! rule matchers ([`rules`]) fire on the scrubbed text. The subset of Rust
//! this understands is exactly what the five rules need; everything is
//! fixture-tested in `tests/`.
//!
//! Run it as `cargo run -p xtask -- lint`; see `cargo run -p xtask -- lint
//! --explain <rule>` for per-rule rationale and fixes.

pub mod context;
pub mod rules;
pub mod scrub;

use context::FileContext;
use rules::Violation;
use std::path::{Path, PathBuf};

/// Lint one source string as if it lived at `path` (workspace-relative).
/// This is the entry point the fixture tests use.
pub fn lint_source(path: &str, source: &str) -> Vec<Violation> {
    let scrubbed = scrub::scrub(source);
    let ctx = FileContext::build(&scrubbed);
    rules::check_file(path, &scrubbed, &ctx)
}

/// Collect the workspace source files the lint covers: every `.rs` under
/// `crates/*/src` and the root `src/`, in sorted (deterministic) order.
/// Tests, benches, examples and the vendored stand-ins are out of scope —
/// they are either the dynamic half of the verification story or external
/// code.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    for entry in std::fs::read_dir(&crates_dir)? {
        let dir = entry?.path().join("src");
        if dir.is_dir() {
            roots.push(dir);
        }
    }
    for r in roots {
        collect_rs(&r, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`. Returns all violations in
/// (file, line) order.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut all = Vec::new();
    for path in workspace_sources(root)? {
        let source = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        all.extend(lint_source(&rel, &source));
    }
    Ok(all)
}
