//! `probenet-lint`: a static-analysis pass enforcing the workspace's
//! determinism and serialization invariants.
//!
//! Every claim the repo makes about Bolot-style reproducibility rests on
//! bit-identical determinism: golden traces, `PROBENET_THREADS ∈ {1,4,8}`
//! replay equality, and the estimator-algebra contract that `merge ==
//! serial fold` bitwise (DESIGN.md §11–§12). The dynamic suites catch a
//! violation only after it lands; this pass rejects the patterns that
//! cause them at review time.
//!
//! This build environment is fully offline (every dependency is a vendored
//! stand-in), so instead of a `syn` AST the pass runs on a purpose-built
//! pipeline: a layout-preserving scrubber ([`scrub`]) removes comments and
//! literal contents, a context builder ([`context`]) recovers enclosing
//! functions, hash-typed bindings and `probenet-lint:` directives, and the
//! rule matchers ([`rules`]) fire on the scrubbed text. The subset of Rust
//! this understands is exactly what the five rules need; everything is
//! fixture-tested in `tests/`.
//!
//! Run it as `cargo run -p xtask -- lint`; see `cargo run -p xtask -- lint
//! --explain <rule>` for per-rule rationale and fixes.

pub mod context;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod scrub;
pub mod taint;

use context::FileContext;
use rules::Violation;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Lint one source string as if it lived at `path` (workspace-relative).
/// This is the entry point the fixture tests use.
pub fn lint_source(path: &str, source: &str) -> Vec<Violation> {
    let scrubbed = scrub::scrub(source);
    let ctx = FileContext::build(&scrubbed);
    rules::check_file(path, &scrubbed, &ctx)
}

/// Collect the workspace source files the lint covers: every `.rs` under
/// `crates/*/src` and the root `src/`, in sorted (deterministic) order.
/// Tests, benches, examples and the vendored stand-ins are out of scope —
/// they are either the dynamic half of the verification story or external
/// code.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    for entry in std::fs::read_dir(&crates_dir)? {
        let dir = entry?.path().join("src");
        if dir.is_dir() {
            roots.push(dir);
        }
    }
    for r in roots {
        collect_rs(&r, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Read the lintable workspace sources as `(workspace-relative path,
/// contents)` pairs in deterministic order.
pub fn read_workspace(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    for path in workspace_sources(root)? {
        let source = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((rel, source));
    }
    Ok(files)
}

/// Lint the whole workspace rooted at `root`. Returns all violations in
/// (file, line) order.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut all = Vec::new();
    for (rel, source) in read_workspace(root)? {
        all.extend(lint_source(&rel, &source));
    }
    Ok(all)
}

/// Run the deep interprocedural tier over in-memory `(path, source)` pairs.
/// The call graph is built from exactly these files, so fixtures exercise
/// cross-file chains without touching the real tree.
pub fn lint_files_deep(files: &[(String, String)]) -> Vec<Violation> {
    taint::analyze(files).violations
}

/// Run the deep tier over the workspace rooted at `root`.
pub fn lint_workspace_deep(root: &Path) -> std::io::Result<Vec<Violation>> {
    Ok(taint::analyze(&read_workspace(root)?).violations)
}

/// Aggregate statistics for `lint --stats`: corpus size, call-graph shape,
/// per-rule fire counts, and the allow economy (so unused allows — escape
/// hatches whose reason has rotted away — become visible).
#[derive(Debug, Default)]
pub struct LintStats {
    /// Source files scanned.
    pub files: usize,
    /// Total source lines scanned.
    pub lines: usize,
    /// Functions in the call graph.
    pub functions: usize,
    /// Call sites extracted from function bodies.
    pub call_sites: usize,
    /// Call sites resolved to workspace functions (deduplicated edges).
    pub call_edges: usize,
    /// Nondeterminism source sites found by the deep tier.
    pub deep_sources: usize,
    /// Artifact-sink functions in the call graph.
    pub deep_sinks: usize,
    /// Violations per rule id (both tiers), zero-count rules included.
    pub rules_fired: BTreeMap<&'static str, usize>,
    /// Allow directives present in the workspace.
    pub allows_total: usize,
    /// Allow directives some hit (reported or suppressed) matched.
    pub allows_consumed: usize,
    /// Allow directives no hit consumed: (file, 1-based line, rule id).
    pub unused_allows: Vec<(String, usize, String)>,
}

/// Run both tiers over `files` and assemble [`LintStats`]. An allow site is
/// "consumed" when some hit (reported or suppressed) matched within its
/// scope: its own line or the next for `allow(...)`, anywhere in the file
/// for `allow-file(...)`.
pub fn stats_for(files: &[(String, String)]) -> LintStats {
    let mut stats = LintStats::default();
    for rule in rules::RULES {
        stats.rules_fired.insert(rule.id, 0);
    }

    // Shallow tier, with per-file suppressed hits and allow sites.
    let mut per_file_allows: Vec<(String, Vec<context::AllowSite>)> = Vec::new();
    let mut consumed: Vec<(String, String, usize)> = Vec::new(); // (file, rule, 0-based hit line)
    for (rel, source) in files {
        let scrubbed = scrub::scrub(source);
        stats.lines += scrubbed.code.lines().count();
        let ctx = FileContext::build(&scrubbed);
        let outcome = rules::check_file_full(rel, &scrubbed, &ctx);
        for v in &outcome.violations {
            *stats.rules_fired.entry(v.rule).or_insert(0) += 1;
        }
        for (rule, line) in &outcome.suppressed {
            consumed.push((rel.clone(), rule.to_string(), *line));
        }
        per_file_allows.push((rel.clone(), ctx.allow_sites.clone()));
    }
    stats.files = files.len();

    // Deep tier.
    let deep = taint::analyze(files);
    stats.functions = deep.stats.functions;
    stats.call_sites = deep.stats.call_sites;
    stats.call_edges = deep.stats.edges;
    stats.deep_sources = deep.stats.sources;
    stats.deep_sinks = deep.stats.sinks;
    *stats.rules_fired.entry(rules::DEEP_RULE).or_insert(0) += deep.violations.len();
    for (file, line) in &deep.suppressed {
        consumed.push((file.clone(), rules::DEEP_RULE.to_string(), *line));
    }

    // Allow economy: match consumed hits back to their directive sites.
    for (file, sites) in &per_file_allows {
        for site in sites {
            stats.allows_total += 1;
            let used = consumed.iter().any(|(f, rule, line)| {
                f == file
                    && *rule == site.rule
                    && (site.file_level || site.line == *line || site.line + 1 == *line)
            });
            if used {
                stats.allows_consumed += 1;
            } else {
                stats
                    .unused_allows
                    .push((file.clone(), site.line + 1, site.rule.clone()));
            }
        }
    }
    stats
}

/// [`stats_for`] over the workspace rooted at `root`.
pub fn workspace_stats(root: &Path) -> std::io::Result<LintStats> {
    Ok(stats_for(&read_workspace(root)?))
}
