//! The deep lint tier: interprocedural determinism taint analysis.
//!
//! The shallow line rules catch a wall-clock read *inside* a serialization
//! function, but not one laundered through a helper: `fn now_ms()` reads
//! the clock, `fn render_report()` calls it, and every line looks innocent
//! on its own. This pass closes that hole. It classifies nondeterminism
//! *sources* (wall-clock reads, ambient RNG, hash-ordered iteration,
//! thread-id/env reads, address-as-value casts), marks artifact *sinks*
//! (report/JSON serializers, wire/snapshot encoders, golden writers, bench
//! emitters — `rules::is_deep_sink`), and walks the workspace
//! call graph ([`crate::graph`]) from each source's enclosing function up
//! through its callers. Any sink that can reach the source is a diagnostic,
//! anchored at the source site with the full witness chain.
//!
//! Escape hatches are deliberately separate from the shallow tier's: a
//! shallow `allow(wall-clock-in-sim)` says "this read is justified where
//! it happens"; it says nothing about where the value flows. Only
//! `allow(tainted-artifact-path)` at the source (or the sink declaration),
//! `allow-file(tainted-artifact-path)`, or a
//! `sanitize(tainted-artifact-path)` barrier on an intermediate function
//! silences the deep tier.

use crate::context::FileContext;
use crate::graph::CallGraph;
use crate::rules::{self, ChainHop, Violation, DEEP_RULE};
use crate::scrub::{scrub, Scrubbed};
use std::collections::VecDeque;

/// What kind of nondeterminism a source site introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// `Instant::now` / `SystemTime::now`.
    WallClock,
    /// `thread_rng` / `rand::random` / `from_entropy`.
    AmbientRng,
    /// Iteration over a hash-ordered map/set binding.
    HashIter,
    /// Thread identity or environment read.
    ThreadEnv,
    /// Pointer/address cast to an integer value.
    AddrCast,
}

impl SourceKind {
    fn describe(self) -> &'static str {
        match self {
            SourceKind::WallClock => "wall-clock read",
            SourceKind::AmbientRng => "ambient randomness",
            SourceKind::HashIter => "hash-ordered iteration",
            SourceKind::ThreadEnv => "thread/env read",
            SourceKind::AddrCast => "address-as-value cast",
        }
    }
}

/// One nondeterminism source site.
#[derive(Debug, Clone)]
pub struct Source {
    /// What kind of nondeterminism this site introduces.
    pub kind: SourceKind,
    /// Index into the analysis' file list.
    pub file: usize,
    /// 0-based line.
    pub line: usize,
    /// The matched token / identifier, for the diagnostic.
    pub what: String,
}

/// Aggregate counters for `lint --stats`.
#[derive(Debug, Default, Clone)]
pub struct DeepStats {
    /// Files analyzed.
    pub files: usize,
    /// Source lines analyzed.
    pub lines: usize,
    /// Functions in the call graph.
    pub functions: usize,
    /// Call sites extracted.
    pub call_sites: usize,
    /// Resolved (deduplicated) call edges.
    pub edges: usize,
    /// Source sites found (after allow filtering).
    pub sources: usize,
    /// Artifact-sink functions.
    pub sinks: usize,
}

/// Result of the deep pass over a set of files.
pub struct DeepAnalysis {
    /// Confirmed source→sink flows, in (file, line) order.
    pub violations: Vec<Violation>,
    /// Flows or sources silenced by a `tainted-artifact-path` allow:
    /// (workspace-relative file, 0-based line the allow matched at).
    pub suppressed: Vec<(String, usize)>,
    /// Aggregate counters for `--stats`.
    pub stats: DeepStats,
}

/// Wall-clock source tokens (same set the shallow rule matches).
const WALL_CLOCK: &[&str] = &["Instant::now(", "SystemTime::now("];
/// Ambient-RNG source tokens.
const AMBIENT_RNG: &[&str] = &["thread_rng(", "rand::random", "from_entropy("];
/// Thread-identity / environment reads: each makes the value depend on the
/// host or scheduler, not on (config, seed).
const THREAD_ENV: &[&str] = &[
    "env::var(",
    "env::var_os(",
    "available_parallelism(",
    "thread::current(",
];

/// Run the deep analysis over `(workspace-relative path, source)` pairs.
/// This is the in-memory entry point the fixture tests use;
/// [`crate::lint_workspace_deep`] feeds it the real tree.
pub fn analyze(files: &[(String, String)]) -> DeepAnalysis {
    let scrubbed: Vec<(String, Scrubbed)> =
        files.iter().map(|(p, s)| (p.clone(), scrub(s))).collect();
    let contexts: Vec<FileContext> = scrubbed
        .iter()
        .map(|(_, s)| FileContext::build(s))
        .collect();
    let graph = CallGraph::build(&scrubbed);

    let mut stats = DeepStats {
        files: files.len(),
        lines: scrubbed.iter().map(|(_, s)| s.code.lines().count()).sum(),
        functions: graph.fns.len(),
        call_sites: graph.calls.len(),
        edges: graph.edges.len(),
        ..DeepStats::default()
    };

    let mut suppressed = Vec::new();
    let sources = find_sources(&scrubbed, &contexts, &mut suppressed);
    stats.sources = sources.len();

    // Per-function flags, computed once.
    let file_index = |path: &str| scrubbed.iter().position(|(p, _)| p == path);
    let mut is_sink = vec![false; graph.fns.len()];
    let mut is_barrier = vec![false; graph.fns.len()];
    let mut sink_allowed = vec![false; graph.fns.len()];
    for (i, f) in graph.fns.iter().enumerate() {
        is_sink[i] = !f.in_tests && rules::is_deep_sink(&f.file, &f.name);
        if let Some(fi) = file_index(&f.file) {
            let ctx = &contexts[fi];
            // Test functions consume artifacts rather than produce them, so
            // chains neither start in, end at, nor pass through them.
            is_barrier[i] = f.in_tests || ctx.is_sanitized(DEEP_RULE, f.decl_line);
            sink_allowed[i] = ctx.is_allowed(DEEP_RULE, f.decl_line);
        }
    }
    stats.sinks = is_sink.iter().filter(|s| **s).count();

    let mut violations = Vec::new();
    for src in &sources {
        let (path, _) = &scrubbed[src.file];
        let Some(origin) = graph.fn_at(path, src.line) else {
            // A source outside any function body (e.g. a const initializer)
            // has no call chain to walk.
            continue;
        };
        if is_barrier[origin] || graph.fns[origin].in_tests {
            // The enclosing function is declared a sanitizer (it consumes
            // the nondeterminism without leaking it) or is a test.
            continue;
        }
        flows_from(
            src,
            origin,
            &graph,
            &is_sink,
            &is_barrier,
            &sink_allowed,
            &mut violations,
            &mut suppressed,
        );
    }
    violations.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    DeepAnalysis {
        violations,
        suppressed,
        stats,
    }
}

/// Scan every file for source sites. Sites already justified with a
/// `tainted-artifact-path` allow are recorded as suppressed (they consume
/// the allow for `--stats`) and dropped.
fn find_sources(
    scrubbed: &[(String, Scrubbed)],
    contexts: &[FileContext],
    suppressed: &mut Vec<(String, usize)>,
) -> Vec<Source> {
    let mut sources = Vec::new();
    for (fi, (path, s)) in scrubbed.iter().enumerate() {
        let ctx = &contexts[fi];
        for (idx, line) in s.code.lines().enumerate() {
            let mut sites: Vec<(SourceKind, String)> = Vec::new();
            for (kind, tokens) in [
                (SourceKind::WallClock, WALL_CLOCK),
                (SourceKind::AmbientRng, AMBIENT_RNG),
                (SourceKind::ThreadEnv, THREAD_ENV),
            ] {
                for token in tokens {
                    if let Some(pos) = line.find(token) {
                        if rules::starts_token(line, pos) {
                            sites.push((kind, token.trim_end_matches('(').to_string()));
                        }
                    }
                }
            }
            for ident in rules::hash_iteration_idents(line, ctx) {
                sites.push((SourceKind::HashIter, ident.to_string()));
            }
            if addr_as_value(line) {
                sites.push((SourceKind::AddrCast, "pointer-to-integer cast".to_string()));
            }
            for (kind, what) in sites {
                if ctx.is_allowed(DEEP_RULE, idx) {
                    suppressed.push((path.clone(), idx));
                } else {
                    sources.push(Source {
                        kind,
                        file: fi,
                        line: idx,
                        what,
                    });
                }
            }
        }
    }
    sources
}

/// Does this line cast a pointer/address to an integer? Addresses vary per
/// run under ASLR, so an address used as a value (hash input, tie-breaker,
/// id) is nondeterministic even with everything else pinned.
fn addr_as_value(line: &str) -> bool {
    let casts_int = line.contains(" as usize") || line.contains(" as u64");
    let pointerish = line.contains("as_ptr(") || line.contains("*const") || line.contains("*mut");
    casts_int && pointerish
}

/// BFS the reverse call graph from the source's enclosing function; every
/// sink reached yields one diagnostic with its witness chain.
#[allow(clippy::too_many_arguments)]
fn flows_from(
    src: &Source,
    origin: usize,
    graph: &CallGraph,
    is_sink: &[bool],
    is_barrier: &[bool],
    sink_allowed: &[bool],
    violations: &mut Vec<Violation>,
    suppressed: &mut Vec<(String, usize)>,
) {
    // prev[f] = (callee we came from, 0-based call line in f) — the BFS
    // tree, used to reconstruct the witness chain.
    let mut prev: Vec<Option<(usize, usize)>> = vec![None; graph.fns.len()];
    let mut visited = vec![false; graph.fns.len()];
    let mut queue = VecDeque::new();
    visited[origin] = true;
    queue.push_back(origin);
    while let Some(f) = queue.pop_front() {
        if is_sink[f] {
            if sink_allowed[f] {
                suppressed.push((graph.fns[f].file.clone(), graph.fns[f].decl_line));
            } else {
                violations.push(diagnose(src, origin, f, &prev, graph));
            }
            // A sink's callers may be sinks too; keep walking.
        }
        for &(caller, call_line) in &graph.reverse[f] {
            if visited[caller] || is_barrier[caller] {
                continue;
            }
            visited[caller] = true;
            prev[caller] = Some((f, call_line));
            queue.push_back(caller);
        }
    }
}

/// Build the diagnostic for one source→sink flow.
fn diagnose(
    src: &Source,
    origin: usize,
    sink: usize,
    prev: &[Option<(usize, usize)>],
    graph: &CallGraph,
) -> Violation {
    // Walk sink -> origin through the BFS tree, then flip so the chain
    // reads source-outward.
    let mut hops = Vec::new();
    let mut at = sink;
    while at != origin {
        let (from, call_line) = prev[at].expect("BFS tree reaches origin");
        hops.push(ChainHop {
            function: graph.fns[at].display_name(),
            file: graph.fns[at].file.clone(),
            line: call_line + 1,
        });
        at = from;
    }
    hops.push(ChainHop {
        function: graph.fns[origin].display_name(),
        file: graph.fns[origin].file.clone(),
        line: src.line + 1,
    });
    hops.reverse();
    let sink_def = &graph.fns[sink];
    let origin_def = &graph.fns[origin];
    let via = if hops.len() > 2 {
        format!(" via {} call(s)", hops.len() - 1)
    } else {
        String::new()
    };
    Violation {
        rule: DEEP_RULE,
        file: origin_def.file.clone(),
        line: src.line + 1,
        message: format!(
            "{} `{}` in `{}` reaches artifact sink `{}` ({}:{}){via} — thread the value \
             from (config, seed) or justify with allow({DEEP_RULE})",
            src.kind.describe(),
            src.what,
            origin_def.display_name(),
            sink_def.display_name(),
            sink_def.file,
            sink_def.decl_line + 1,
        ),
        chain: hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> DeepAnalysis {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        analyze(&owned)
    }

    #[test]
    fn direct_source_in_sink_is_flagged() {
        let a = run(&[(
            "crates/a/src/report.rs",
            "pub fn render_report() {\n    let t = Instant::now();\n}\n",
        )]);
        assert_eq!(a.violations.len(), 1);
        let v = &a.violations[0];
        assert_eq!(v.rule, DEEP_RULE);
        assert_eq!(v.line, 2);
        assert_eq!(v.chain.len(), 1);
    }

    #[test]
    fn one_hop_laundering_is_flagged_with_chain() {
        let a = run(&[(
            "crates/a/src/lib.rs",
            "fn now_ms() -> u64 {\n    Instant::now().elapsed().as_millis() as u64\n}\npub fn render_report() {\n    let t = now_ms();\n}\n",
        )]);
        assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
        let v = &a.violations[0];
        assert_eq!(v.chain.len(), 2);
        assert_eq!(v.chain[0].function, "now_ms");
        assert_eq!(v.chain[1].function, "render_report");
    }

    #[test]
    fn source_with_no_path_to_sink_is_clean() {
        let a = run(&[(
            "crates/a/src/lib.rs",
            "fn jitter() -> u64 {\n    Instant::now().elapsed().as_nanos() as u64\n}\nfn poll_loop() {\n    let j = jitter();\n}\n",
        )]);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn allow_at_source_suppresses_and_is_recorded() {
        let a = run(&[(
            "crates/a/src/lib.rs",
            "fn now_ms() -> u64 {\n    // probenet-lint: allow(tainted-artifact-path) bench wall time is deliberately host data\n    Instant::now().elapsed().as_millis() as u64\n}\npub fn render_report() {\n    let t = now_ms();\n}\n",
        )]);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.suppressed.len(), 1);
    }

    #[test]
    fn shallow_allow_does_not_silence_deep() {
        let a = run(&[(
            "crates/a/src/lib.rs",
            "fn now_ms() -> u64 {\n    // probenet-lint: allow(wall-clock-in-sim) observability\n    Instant::now().elapsed().as_millis() as u64\n}\npub fn render_report() {\n    let t = now_ms();\n}\n",
        )]);
        assert_eq!(
            a.violations.len(),
            1,
            "shallow allow must not leak into deep tier"
        );
    }

    #[test]
    fn sanitize_barrier_blocks_propagation() {
        let a = run(&[(
            "crates/a/src/lib.rs",
            "fn now_ms() -> u64 {\n    Instant::now().elapsed().as_millis() as u64\n}\n// probenet-lint: sanitize(tainted-artifact-path) logs to stderr only\nfn log_progress() {\n    let t = now_ms();\n}\npub fn render_report() {\n    log_progress();\n}\n",
        )]);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }

    #[test]
    fn env_and_hash_sources_are_detected() {
        let a = run(&[(
            "crates/a/src/lib.rs",
            "pub fn snapshot_counts(m: &HashMap<u32, u32>) {\n    let threads = std::env::var(\"T\");\n    let counts: HashMap<u32, u32> = HashMap::new();\n    for k in counts.keys() {\n    }\n}\n",
        )]);
        let kinds: Vec<&str> = a
            .violations
            .iter()
            .map(|v| v.message.split(' ').next().unwrap())
            .collect();
        assert!(a.violations.len() >= 2, "{kinds:?}");
    }

    #[test]
    fn cross_file_chain_reports_hops_in_order() {
        let a = run(&[
            (
                "crates/a/src/clockish.rs",
                "pub fn stamp() -> u64 {\n    SystemTime::now().elapsed().unwrap().as_secs()\n}\n",
            ),
            (
                "crates/b/src/report.rs",
                "pub fn write_summary() {\n    let s = probenet_a::stamp();\n}\n",
            ),
        ]);
        assert_eq!(a.violations.len(), 1, "{:?}", a.violations);
        let v = &a.violations[0];
        assert_eq!(v.file, "crates/a/src/clockish.rs");
        assert_eq!(v.chain[0].file, "crates/a/src/clockish.rs");
        assert_eq!(v.chain[1].file, "crates/b/src/report.rs");
    }
}
