//! Scrubber regression fixtures: string/comment stripping must never mask
//! a genuine rule match (blanking real code) or fabricate one (leaking
//! literal/comment text into code or directives). Each case here pins an
//! edge the line-oriented rules rely on: raw strings with hashes, nested
//! block comments, and the directive channel.

use xtask::lint_source;
use xtask::scrub::scrub;

#[test]
fn raw_string_hash_contents_blanked() {
    let src = r###"let s = r##"inner "# thread_rng() "##; Instant::now();"###;
    let s = scrub(src);
    assert!(
        !s.code.contains("thread_rng"),
        "raw-string contents must be blanked: {}",
        s.code
    );
    assert!(
        s.code.contains("Instant::now"),
        "code after the raw string must survive: {}",
        s.code
    );
}

#[test]
fn raw_string_multiline_directive_not_fabricated() {
    let src = "let q = r#\"\n// probenet-lint: allow(wall-clock-in-sim)\n\"#;\nlet t = std::time::Instant::now();\n";
    let s = scrub(src);
    assert!(
        s.comments.iter().all(|c| !c.contains("probenet-lint")),
        "directive text inside a raw string must not reach the comment channel: {:?}",
        s.comments
    );
    let hits = lint_source("crates/sim/src/x.rs", src);
    assert_eq!(
        hits.len(),
        1,
        "the wall-clock read after the raw string must still fire: {hits:?}"
    );
}

#[test]
fn ident_tail_r_hash_does_not_open_raw_string() {
    // rustc lexes `var` greedily as one identifier, so in a macro token
    // stream `var#"a "…" b"#` is ident/#/str/ident/str/#. A scrubber that
    // takes the trailing `r` as a raw-string prefix swallows everything up
    // to the final `"#` — masking the wall-clock read between the strings.
    let src = "m!(var#\"a \"Instant::now()\" b\"#);";
    let s = scrub(src);
    assert!(
        s.code.contains("Instant::now"),
        "ident-tail `r` + `#` fabricated a raw string and masked code: {}",
        s.code
    );
    let hits = lint_source("crates/sim/src/x.rs", src);
    assert_eq!(hits.len(), 1, "masked wall-clock read must fire: {hits:?}");
}

#[test]
fn byte_raw_string_still_recognized() {
    let src = "let a = br#\"thread_rng()\"#; Instant::now();";
    let s = scrub(src);
    assert!(!s.code.contains("thread_rng"), "{}", s.code);
    assert!(s.code.contains("Instant::now"), "{}", s.code);
}

#[test]
fn disjoint_comments_cannot_fabricate_a_directive() {
    // `probenet-lint:` in one comment and `allow(...)` in another on the
    // same line must not concatenate into a directive that silences the
    // code between them.
    let src = "let t = std::time::Instant::now(); /* probenet-lint: */ /* allow(wall-clock-in-sim) x */\n";
    let hits = lint_source("crates/sim/src/x.rs", src);
    assert_eq!(
        hits.len(),
        1,
        "fabricated cross-comment directive silenced a violation: {hits:?}"
    );
    assert_eq!(hits[0].rule, "wall-clock-in-sim");
}

#[test]
fn single_comment_directive_still_parses() {
    let src = "let t = std::time::Instant::now(); // probenet-lint: allow(wall-clock-in-sim) why\n";
    let hits = lint_source("crates/sim/src/x.rs", src);
    assert!(hits.is_empty(), "intact directive must silence: {hits:?}");
}

#[test]
fn nested_block_comment_masks_inner_and_releases_tail() {
    let src = "/* outer /* inner */ thread_rng() */ fn f() { Instant::now(); }";
    let s = scrub(src);
    assert!(
        !s.code.contains("thread_rng"),
        "text at depth 1 is still comment: {}",
        s.code
    );
    assert!(
        s.code.contains("Instant::now"),
        "code after the balanced close must survive: {}",
        s.code
    );
    let hits = lint_source("crates/sim/src/x.rs", src);
    assert_eq!(hits.len(), 1, "{hits:?}");
}

#[test]
fn block_comment_containing_raw_string_opener() {
    // `r#"` inside a comment must not push the scrubber into raw-string
    // state (which would eat the comment close and mask the code after).
    let src = "/* r#\" */ Instant::now(); // \"#";
    let s = scrub(src);
    assert!(s.code.contains("Instant::now"), "{}", s.code);
    let hits = lint_source("crates/sim/src/x.rs", src);
    assert_eq!(hits.len(), 1, "{hits:?}");
}

#[test]
fn directive_inside_nested_comment_still_parses() {
    // A directive in the tail of a nested block comment (after an inner
    // close, still at depth 1) is legal comment text.
    let src = "/* /* x */ probenet-lint: allow(ambient-rng) why */\nthread_rng();\n";
    let s = scrub(src);
    assert!(!s.code.contains("probenet-lint"), "{}", s.code);
    let hits = lint_source("crates/traffic/src/x.rs", src);
    assert!(
        hits.is_empty(),
        "nested-comment directive must work: {hits:?}"
    );
}

#[test]
fn line_comment_containing_block_open_does_not_comment_next_line() {
    let src = "// /*\nInstant::now();\n// */\n";
    let hits = lint_source("crates/sim/src/x.rs", src);
    assert_eq!(hits.len(), 1, "{hits:?}");
}

#[test]
fn raw_ident_is_not_a_raw_string() {
    let src = "let r#type = 1; thread_rng();";
    let hits = lint_source("crates/traffic/src/x.rs", src);
    assert_eq!(hits.len(), 1, "{hits:?}");
}

#[test]
fn string_escapes_and_apostrophes_in_comments() {
    let src = "/* it's /* \" */ nested */ let a = \"\\\"#\"; thread_rng();";
    let s = scrub(src);
    assert!(s.code.contains("thread_rng"), "{}", s.code);
}
