// Minimal violation: hash-map iteration inside a serialization context.
use std::collections::HashMap;

pub struct Report {
    counts: HashMap<String, u64>,
}

impl Report {
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counts {
            out.push_str(&format!("{k}={v},"));
        }
        out
    }
}
