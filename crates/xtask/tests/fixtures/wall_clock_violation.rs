// Minimal violation: host clock read inside an analysis path.
pub fn sample_delay() -> u64 {
    let started = std::time::Instant::now();
    started.elapsed().as_nanos() as u64
}
