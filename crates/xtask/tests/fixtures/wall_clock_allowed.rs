// The same clock read, annotated as genuine wall-clock observability.
pub fn sample_delay() -> u64 {
    let started = std::time::Instant::now(); // probenet-lint: allow(wall-clock-in-sim) harness timing only
    started.elapsed().as_nanos() as u64
}
