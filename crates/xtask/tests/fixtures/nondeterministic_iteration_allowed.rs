// The same iteration, silenced by its escape hatch with a justification.
use std::collections::HashMap;

pub struct Report {
    counts: HashMap<String, u64>,
}

impl Report {
    pub fn to_json(&self) -> String {
        let mut total = 0u64;
        // probenet-lint: allow(nondeterministic-iteration) commutative u64 sum only
        for (_, v) in &self.counts {
            total += v;
        }
        format!("{total}")
    }
}
