// Minimal violation: a lossy narrowing cast on the wire path.
pub fn encode_len(len: usize) -> u16 {
    len as u16
}
