// The same fold with its session order declared.
pub struct Report {
    records: Vec<u64>,
}

pub fn merge_session_outcomes(outcomes: Vec<Vec<u64>>) -> Report {
    let mut records = Vec::new();
    for o in &outcomes {
        // probenet-lint: allow(unordered-partition-merge) folded in ascending session-slot order
        records.extend(o.iter().copied());
    }
    Report { records }
}
