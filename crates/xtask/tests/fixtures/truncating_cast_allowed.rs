// The same cast, annotated as specified wire behavior.
pub fn fold_checksum(sum: u32) -> u16 {
    // probenet-lint: allow(truncating-cast-in-wire) checksum folds mod 2^16
    !(sum as u16)
}
