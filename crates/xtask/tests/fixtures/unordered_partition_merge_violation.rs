// Minimal violation: per-partition results merged without a declared
// partition order.
pub struct Outcome {
    deliveries: Vec<u64>,
}

pub fn merge_partitions(parts: Vec<Vec<u64>>) -> Outcome {
    let mut deliveries = Vec::new();
    for p in &parts {
        deliveries.extend(p.iter().copied());
    }
    Outcome { deliveries }
}
