// The same draw, annotated (hypothetically: nothing in-tree needs this).
pub fn jitter() -> f64 {
    // probenet-lint: allow(ambient-rng) demo fixture, replay irrelevant
    let mut rng = rand::thread_rng();
    rng.gen::<f64>()
}
