// The same reduction with its order declared safe.
pub struct Bank {
    parts: Vec<f64>,
    total: f64,
}

impl Bank {
    pub fn merge(&mut self, other: &Bank) {
        self.parts.extend_from_slice(&other.parts);
        // probenet-lint: allow(order-sensitive-float-fold) Vec stored order is canonical
        self.total = self.parts.iter().sum::<f64>();
    }
}
