// Minimal violation: ambient entropy instead of a seeded stream.
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen::<f64>()
}
