// The same merge with its partition order declared.
pub struct Outcome {
    deliveries: Vec<u64>,
}

pub fn merge_partitions(parts: Vec<Vec<u64>>) -> Outcome {
    let mut deliveries = Vec::new();
    for p in &parts {
        // probenet-lint: allow(unordered-partition-merge) merged in fixed ascending partition-index order
        deliveries.extend(p.iter().copied());
    }
    Outcome { deliveries }
}
