// Minimal violation: an f64 reduction in a merge path with no declared
// reduction order.
pub struct Bank {
    parts: Vec<f64>,
    total: f64,
}

impl Bank {
    pub fn merge(&mut self, other: &Bank) {
        self.parts.extend_from_slice(&other.parts);
        self.total = self.parts.iter().sum::<f64>();
    }
}
