// Minimal violation: per-session outcomes folded into one record stream
// without a declared session order (sessions finish in network order).
pub struct Report {
    records: Vec<u64>,
}

pub fn merge_session_outcomes(outcomes: Vec<Vec<u64>>) -> Report {
    let mut records = Vec::new();
    for o in &outcomes {
        records.extend(o.iter().copied());
    }
    Report { records }
}
