//! Fixture tests for the deep interprocedural tier (`lint --deep`).
//!
//! The load-bearing test here is the two-tier contrast: a wall-clock read
//! laundered through a helper into a report writer across two modules is
//! provably invisible to the shallow line rules (each line is individually
//! justified or innocent) and provably caught — with the full witness
//! chain — by the deep taint pass. That contrast is the reason the deep
//! tier exists.

use xtask::rules::DEEP_RULE;
use xtask::{lint_files_deep, lint_source};

/// Helper module: reads the clock, shallow-justified as observability.
const CLOCK_UTIL: &str = "\
/// Milliseconds since an arbitrary epoch, for progress display.
pub fn stamp_ms() -> u64 {
    // probenet-lint: allow(wall-clock-in-sim) observability helper
    std::time::Instant::now().elapsed().as_millis() as u64
}
";

/// Report module: calls the helper; no banned token appears on any line.
const REPORT: &str = "\
/// Render the campaign report.
pub fn render_report() -> String {
    let stamped = crate::clock_util::stamp_ms();
    format!(\"generated at {stamped}\")
}
";

fn positive_fixture() -> Vec<(String, String)> {
    vec![
        (
            "crates/fixture/src/clock_util.rs".to_string(),
            CLOCK_UTIL.to_string(),
        ),
        (
            "crates/fixture/src/report.rs".to_string(),
            REPORT.to_string(),
        ),
    ]
}

#[test]
fn shallow_tier_provably_misses_the_laundered_chain() {
    // Run the shallow tier on the exact same fixture the deep test uses:
    // every file is clean line-by-line, so the shallow pass reports nothing.
    for (path, src) in positive_fixture() {
        let hits = lint_source(&path, &src);
        assert!(
            hits.is_empty(),
            "shallow tier must see nothing in {path}: {hits:?}"
        );
    }
}

#[test]
fn deep_tier_catches_the_chain_with_full_witness() {
    let violations = lint_files_deep(&positive_fixture());
    assert_eq!(violations.len(), 1, "{violations:?}");
    let v = &violations[0];
    assert_eq!(v.rule, DEEP_RULE);
    // Anchored at the source site, not the sink.
    assert_eq!(v.file, "crates/fixture/src/clock_util.rs");
    assert_eq!(v.line, 4, "anchor at the Instant::now line");
    // Witness chain: source fn, then its caller (the sink).
    assert_eq!(v.chain.len(), 2, "{:?}", v.chain);
    assert_eq!(v.chain[0].function, "stamp_ms");
    assert_eq!(v.chain[0].file, "crates/fixture/src/clock_util.rs");
    assert_eq!(v.chain[1].function, "render_report");
    assert_eq!(v.chain[1].file, "crates/fixture/src/report.rs");
    assert!(
        v.message.contains("render_report"),
        "message names the sink: {}",
        v.message
    );
}

/// The real live clock module, pulled from the tree so this test tracks it.
fn real_clock_rs() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../live/src/clock.rs");
    std::fs::read_to_string(path).expect("read crates/live/src/clock.rs")
}

/// A consumer that pushes clock-derived values into an encoder — exactly
/// the flow the live engine performs for real.
const CLOCK_CONSUMER: &str = "\
/// Encode one probe record.
pub fn encode_record() -> u64 {
    let clock = MonoClock::start();
    clock.now_nanos()
}
";

#[test]
fn allow_filed_live_clock_does_not_fire() {
    let src = real_clock_rs();
    assert!(
        src.contains("Instant::now"),
        "guard: the live clock still reads the wall clock"
    );
    assert!(
        src.contains("allow-file(tainted-artifact-path)"),
        "guard: the live clock carries the deep-tier allow-file"
    );
    let files = vec![
        ("crates/live/src/clock.rs".to_string(), src),
        (
            "crates/live/src/codec_fixture.rs".to_string(),
            CLOCK_CONSUMER.to_string(),
        ),
    ];
    let violations = lint_files_deep(&files);
    assert!(
        violations.is_empty(),
        "allow-file'd clock must stay silent: {violations:?}"
    );
}

#[test]
fn stripping_the_allow_file_makes_the_clock_fire() {
    // Prove the silence above comes from the directive, not from a hole in
    // the analysis: drop the allow-file line and the same flow is reported.
    let src: String = real_clock_rs()
        .lines()
        .filter(|l| !l.contains("allow-file(tainted-artifact-path)"))
        .map(|l| format!("{l}\n"))
        .collect();
    let files = vec![
        ("crates/live/src/clock.rs".to_string(), src),
        (
            "crates/live/src/codec_fixture.rs".to_string(),
            CLOCK_CONSUMER.to_string(),
        ),
    ];
    let violations = lint_files_deep(&files);
    assert!(
        violations
            .iter()
            .any(|v| v.rule == DEEP_RULE && v.file == "crates/live/src/clock.rs"),
        "without the allow-file the clock flow must be reported: {violations:?}"
    );
}

// ---- binary-level CLI contract -------------------------------------------

fn xtask_bin() -> std::process::Command {
    std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
}

#[test]
fn cli_deep_lint_workspace_is_clean() {
    let out = xtask_bin()
        .args(["lint", "--deep"])
        .output()
        .expect("run xtask lint --deep");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "workspace must pass the deep tier\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("deep tier"), "got: {stdout}");
}

#[test]
fn cli_json_format_emits_parseable_diagnostics() {
    let out = xtask_bin()
        .args(["lint", "--deep", "--format", "json"])
        .output()
        .expect("run xtask lint --deep --format json");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.trim_start().starts_with("{\"tier\":\"deep\""),
        "got: {stdout}"
    );
    assert!(stdout.contains("\"violations\":["), "got: {stdout}");
    // Clean workspace: count must be zero and the status success.
    assert!(stdout.contains("\"count\":0"), "got: {stdout}");
    assert!(out.status.success());
}

#[test]
fn cli_stats_reports_call_graph_and_allow_economy() {
    let out = xtask_bin()
        .args(["lint", "--stats"])
        .output()
        .expect("run xtask lint --stats");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    for needle in [
        "files scanned",
        "call-graph functions",
        "resolved edges",
        "rules fired",
        "allows",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}` in: {stdout}");
    }
    // The workspace keeps its allow economy tight: every directive must be
    // consumed by a real (suppressed) hit, or it should be deleted.
    assert!(
        stdout.contains("unused allows        none"),
        "unused allow crept in: {stdout}"
    );
}
