//! Fixture tests: one violation/allowed pair per lint rule.
//!
//! Each fixture under `tests/fixtures/` is linted through [`xtask::lint_source`]
//! with a synthetic path label chosen to put the rule in scope (the cast rule
//! only applies to wire/report files, for example). The `_violation` variant
//! must fire exactly its rule; the `_allowed` variant carries the
//! `// probenet-lint: allow(...)` escape hatch and must be clean.

use xtask::lint_source;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lint a fixture under a synthetic workspace path and return the rule ids hit.
fn lint_as(label: &str, name: &str) -> Vec<(&'static str, usize)> {
    lint_source(label, &fixture(name))
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn nondeterministic_iteration_fires_and_is_silenced() {
    let hits = lint_as(
        "crates/stream/src/report.rs",
        "nondeterministic_iteration_violation.rs",
    );
    assert_eq!(
        hits.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
        vec!["nondeterministic-iteration"],
        "expected exactly one iteration violation, got {hits:?}"
    );
    assert_eq!(
        hits[0].1, 11,
        "violation should anchor to the for-loop line"
    );

    let allowed = lint_as(
        "crates/stream/src/report.rs",
        "nondeterministic_iteration_allowed.rs",
    );
    assert!(
        allowed.is_empty(),
        "allow directive should silence: {allowed:?}"
    );
}

#[test]
fn wall_clock_fires_and_is_silenced() {
    let hits = lint_as("crates/sim/src/clock.rs", "wall_clock_violation.rs");
    assert_eq!(
        hits.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
        vec!["wall-clock-in-sim"],
        "expected exactly one wall-clock violation, got {hits:?}"
    );
    assert_eq!(
        hits[0].1, 3,
        "violation should anchor to the Instant::now line"
    );

    let allowed = lint_as("crates/sim/src/clock.rs", "wall_clock_allowed.rs");
    assert!(
        allowed.is_empty(),
        "allow directive should silence: {allowed:?}"
    );
}

#[test]
fn ambient_rng_fires_and_is_silenced() {
    let hits = lint_as("crates/traffic/src/gen.rs", "ambient_rng_violation.rs");
    assert_eq!(
        hits.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
        vec!["ambient-rng"],
        "expected exactly one ambient-rng violation, got {hits:?}"
    );
    assert_eq!(
        hits[0].1, 3,
        "violation should anchor to the thread_rng line"
    );

    let allowed = lint_as("crates/traffic/src/gen.rs", "ambient_rng_allowed.rs");
    assert!(
        allowed.is_empty(),
        "allow directive should silence: {allowed:?}"
    );
}

#[test]
fn float_fold_fires_and_is_silenced() {
    let hits = lint_as("crates/stats/src/acc.rs", "float_fold_violation.rs");
    assert_eq!(
        hits.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
        vec!["order-sensitive-float-fold"],
        "expected exactly one float-fold violation, got {hits:?}"
    );
    assert_eq!(
        hits[0].1, 11,
        "violation should anchor to the sum::<f64> line"
    );

    let allowed = lint_as("crates/stats/src/acc.rs", "float_fold_allowed.rs");
    assert!(
        allowed.is_empty(),
        "allow directive should silence: {allowed:?}"
    );
}

#[test]
fn truncating_cast_fires_and_is_silenced() {
    let hits = lint_as("crates/wire/src/len.rs", "truncating_cast_violation.rs");
    assert_eq!(
        hits.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
        vec!["truncating-cast-in-wire"],
        "expected exactly one truncating-cast violation, got {hits:?}"
    );
    assert_eq!(hits[0].1, 3, "violation should anchor to the `as u16` line");

    let allowed = lint_as("crates/wire/src/len.rs", "truncating_cast_allowed.rs");
    assert!(
        allowed.is_empty(),
        "allow directive should silence: {allowed:?}"
    );
}

#[test]
fn unordered_partition_merge_fires_and_is_silenced() {
    let hits = lint_as(
        "crates/sim/src/parallel.rs",
        "unordered_partition_merge_violation.rs",
    );
    assert_eq!(
        hits.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
        vec!["unordered-partition-merge"],
        "expected exactly one partition-merge violation, got {hits:?}"
    );
    assert_eq!(hits[0].1, 10, "violation should anchor to the extend line");

    let allowed = lint_as(
        "crates/sim/src/parallel.rs",
        "unordered_partition_merge_allowed.rs",
    );
    assert!(
        allowed.is_empty(),
        "allow directive should silence: {allowed:?}"
    );
}

#[test]
fn partition_merge_rule_ignores_single_partition_verbs() {
    // A mailbox post extends a Vec with one partition's batch; the fn name
    // carries no partition-merge context, so the rule must stay quiet.
    let src = "pub fn post(inbox: &mut Vec<u64>, msgs: Vec<u64>) {\n    inbox.extend(msgs);\n}\n";
    let hits = lint_source("crates/sim/src/parallel.rs", src);
    assert!(
        hits.is_empty(),
        "single-partition extend must not fire: {hits:?}"
    );
}

#[test]
fn cast_rule_covers_the_merge_daemon() {
    // The fleet merge daemon re-renders byte-compared reports from decoded
    // wire state; it sits inside the rule's scope exactly like the codecs.
    let hits = lint_as("crates/merged/src/lib.rs", "truncating_cast_violation.rs");
    assert_eq!(
        hits.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
        vec!["truncating-cast-in-wire"],
        "expected the truncating-cast rule to fire in crates/merged, got {hits:?}"
    );
}

#[test]
fn cast_rule_covers_the_mesh_crate() {
    // Mesh campaign code encodes hop-annotated frames and renders the
    // byte-compared golden mesh artifact — wire-path casting rules apply.
    let hits = lint_as(
        "crates/mesh/src/campaign.rs",
        "truncating_cast_violation.rs",
    );
    assert_eq!(
        hits.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
        vec!["truncating-cast-in-wire"],
        "expected the truncating-cast rule to fire in crates/mesh, got {hits:?}"
    );
}

#[test]
fn partition_merge_rule_covers_mesh_fold_functions() {
    let src = "pub fn fold_streams(out: &mut Vec<u8>, shard: &[u8]) {\n    out.extend_from_slice(shard);\n}\n";
    let hits = lint_source("crates/mesh/src/campaign.rs", src);
    assert_eq!(
        hits.len(),
        1,
        "mesh fold fns combine per-vantage results and must be in scope: {hits:?}"
    );
    assert_eq!(hits[0].rule, "unordered-partition-merge");
    // The same function body outside the mesh crate carries no
    // partition-merge context and must stay quiet.
    let off_path = lint_source("crates/sim/src/engine.rs", src);
    assert!(
        off_path.is_empty(),
        "fold outside mesh/partition scope must not fire: {off_path:?}"
    );
}

#[test]
fn cast_rule_covers_the_live_reactor() {
    // The live reactor packs lane/slot tags into wire sequence numbers; a
    // lossy cast there corrupts the probe stream on the socket.
    let hits = lint_as("crates/live/src/reactor.rs", "truncating_cast_violation.rs");
    assert_eq!(
        hits.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
        vec!["truncating-cast-in-wire"],
        "expected the truncating-cast rule to fire in crates/live, got {hits:?}"
    );
}

#[test]
fn partition_merge_rule_covers_live_outcome_folds() {
    let hits = lint_as(
        "crates/live/src/reactor.rs",
        "live_outcome_merge_violation.rs",
    );
    assert_eq!(
        hits.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
        vec!["unordered-partition-merge"],
        "live outcome folds combine per-session results and must be in scope: {hits:?}"
    );
    assert_eq!(hits[0].1, 10, "violation should anchor to the extend line");

    let allowed = lint_as(
        "crates/live/src/reactor.rs",
        "live_outcome_merge_allowed.rs",
    );
    assert!(
        allowed.is_empty(),
        "declared session order should silence: {allowed:?}"
    );

    // The same fold outside the live crate (and outside every other
    // partition-merge context) must stay quiet.
    let off_path = lint_as("crates/stats/src/acc.rs", "live_outcome_merge_violation.rs");
    assert!(
        off_path.is_empty(),
        "outcome fold outside live scope must not fire: {off_path:?}"
    );
}

#[test]
fn wall_clock_rule_holds_in_the_live_crate_outside_its_allowlisted_clock() {
    // crates/live confines wall-clock reads to clock.rs behind a justified
    // allow-file; any other live file reading the host clock must fire.
    let hits = lint_as("crates/live/src/reactor.rs", "wall_clock_violation.rs");
    assert_eq!(
        hits.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
        vec!["wall-clock-in-sim"],
        "wall-clock reads outside crates/live/src/clock.rs must fire, got {hits:?}"
    );

    // The real clock shim lints clean only because of its allow-file
    // directive: stripping the directive must surface the violations.
    let clock_path = format!("{}/../live/src/clock.rs", env!("CARGO_MANIFEST_DIR"));
    let clock_src = std::fs::read_to_string(&clock_path).expect("read live clock shim");
    assert!(
        lint_source("crates/live/src/clock.rs", &clock_src).is_empty(),
        "the allow-file'd clock shim must lint clean"
    );
    let stripped: String = clock_src
        .lines()
        .filter(|l| !l.contains("allow-file(wall-clock-in-sim)"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert!(
        !lint_source("crates/live/src/clock.rs", &stripped).is_empty(),
        "without the allow-file directive the clock shim must violate wall-clock-in-sim"
    );
}

#[test]
fn cast_rule_is_scoped_to_wire_and_report_files() {
    // The same lossy cast outside the wire/report scope is not this rule's
    // business (clippy::cast_possible_truncation covers it at warn level).
    let hits = lint_as("crates/sim/src/engine.rs", "truncating_cast_violation.rs");
    assert!(
        hits.is_empty(),
        "cast rule must not fire off the wire path: {hits:?}"
    );
}

#[test]
fn allow_directive_does_not_leak_to_other_rules() {
    // An allow for one rule must not silence a different rule on the same line.
    let src = "pub fn to_json() -> u16 {\n    // probenet-lint: allow(ambient-rng) wrong rule\n    let x: u32 = 70000;\n    x as u16\n}\n";
    let hits = lint_source("crates/wire/src/x.rs", src);
    assert_eq!(hits.len(), 1, "wrong-rule allow must not silence: {hits:?}");
    assert_eq!(hits[0].rule, "truncating-cast-in-wire");
}

#[test]
fn allow_file_silences_whole_file() {
    let src = "// probenet-lint: allow-file(wall-clock-in-sim) bench harness\npub fn a() -> std::time::Instant { std::time::Instant::now() }\npub fn b() -> std::time::Instant { std::time::Instant::now() }\n";
    let hits = lint_source("crates/sim/src/t.rs", src);
    assert!(
        hits.is_empty(),
        "allow-file should silence every line: {hits:?}"
    );
}

// ---- binary-level CLI contract ------------------------------------------

fn xtask_bin() -> std::process::Command {
    std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
}

#[test]
fn cli_lint_workspace_is_clean() {
    let out = xtask_bin().arg("lint").output().expect("run xtask lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "workspace must lint clean\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("workspace clean"), "got: {stdout}");
}

#[test]
fn cli_explain_known_rule_succeeds() {
    let out = xtask_bin()
        .args(["lint", "--explain", "wall-clock-in-sim"])
        .output()
        .expect("run xtask lint --explain");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wall-clock-in-sim"), "got: {stdout}");
}

#[test]
fn cli_explain_unknown_rule_exits_2() {
    let out = xtask_bin()
        .args(["lint", "--explain", "no-such-rule"])
        .output()
        .expect("run xtask lint --explain");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn cli_list_names_all_rules() {
    let out = xtask_bin()
        .args(["lint", "--list"])
        .output()
        .expect("run xtask lint --list");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in [
        "nondeterministic-iteration",
        "wall-clock-in-sim",
        "ambient-rng",
        "order-sensitive-float-fold",
        "truncating-cast-in-wire",
        "unordered-partition-merge",
    ] {
        assert!(stdout.contains(id), "--list missing {id}: {stdout}");
    }
}

// ---- model-crate scope extensions (crates/queueing, crates/traffic) ------

#[test]
fn cast_rule_covers_the_model_crates() {
    // Queueing/traffic outputs feed the reproduction's tables, so lossy
    // casts there get the same treatment as the wire path.
    let src = "pub fn batch_len(n: usize) -> u16 {\n    n as u16\n}\n";
    for path in [
        "crates/queueing/src/analytic.rs",
        "crates/traffic/src/batch.rs",
    ] {
        let hits = lint_source(path, src);
        assert_eq!(hits.len(), 1, "cast must fire in {path}: {hits:?}");
        assert_eq!(hits[0].rule, "truncating-cast-in-wire");
    }
}

#[test]
fn merge_rule_covers_model_crate_folds() {
    let src = "pub fn fold_batches(parts: &[Vec<u64>]) -> Vec<u64> {\n    let mut all = Vec::new();\n    for p in parts {\n        all.extend_from_slice(p);\n    }\n    all\n}\n";
    let hits = lint_source("crates/traffic/src/interarrival.rs", src);
    assert_eq!(hits.len(), 1, "fold in a model crate must fire: {hits:?}");
    assert_eq!(hits[0].rule, "unordered-partition-merge");
}

#[test]
fn model_crate_scope_requires_a_reducing_fn_name() {
    // The same extend in a non-merge/fold/partition function stays out of
    // scope: plain Vec building is not a cross-partition reduction.
    let src = "pub fn collect_samples(parts: &[Vec<u64>]) -> Vec<u64> {\n    let mut all = Vec::new();\n    for p in parts {\n        all.extend_from_slice(p);\n    }\n    all\n}\n";
    let hits = lint_source("crates/queueing/src/bolot.rs", src);
    assert!(hits.is_empty(), "non-reducing fn must not fire: {hits:?}");
}
