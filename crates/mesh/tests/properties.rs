//! Property suite for the loss tomography: whatever the observations,
//! per-link attributed loss must sum back to each path's end-to-end
//! loss, and the solver must stay finite and non-negative.

use probenet_mesh::{attribute_losses, infer_link_exponents, PathObservation};
use proptest::prelude::*;

/// A random path over up to `n_links` links: strictly increasing link
/// ids (a path never crosses a link twice in the mesh model) and a
/// sent/received pair with `received <= sent`.
fn arb_path(n_links: u32) -> impl Strategy<Value = PathObservation> {
    // The vendored proptest stand-in has no flat_map or set strategies:
    // draw raw material and derive the invariants in one map instead.
    (
        proptest::collection::vec(0..n_links, 1..5),
        1..5_000u64,
        0..1_000_000u64,
    )
        .prop_map(|(mut ids, sent, received_raw)| {
            ids.sort_unstable();
            ids.dedup();
            PathObservation {
                sent,
                received: received_raw % (sent + 1),
                link_ids: ids,
            }
        })
}

proptest! {
    /// Conservation: every attribution row sums to its path's losses,
    /// exactly (up to float round-off), no matter how pathological the
    /// observations are.
    #[test]
    fn attribution_conserves_end_to_end_loss(
        paths in proptest::collection::vec(arb_path(8), 1..12)
    ) {
        let exponents = infer_link_exponents(&paths, 8);
        let rows = attribute_losses(&paths, &exponents);
        prop_assert_eq!(rows.len(), paths.len());
        for (p, row) in paths.iter().zip(&rows) {
            prop_assert_eq!(row.len(), p.link_ids.len());
            let sum: f64 = row.iter().sum();
            let lost = p.lost() as f64;
            prop_assert!(
                (sum - lost).abs() <= 1e-9 * lost.max(1.0),
                "row sums to {} for {} lost", sum, lost
            );
            for &a in row {
                prop_assert!(a >= 0.0 && a.is_finite());
            }
        }
    }

    /// The solver itself never leaves the feasible region: exponents
    /// are finite and non-negative, and links no path crosses stay 0.
    #[test]
    fn inferred_exponents_stay_feasible(
        paths in proptest::collection::vec(arb_path(8), 1..12)
    ) {
        let exponents = infer_link_exponents(&paths, 8);
        prop_assert_eq!(exponents.len(), 8);
        let crossed: std::collections::BTreeSet<u32> =
            paths.iter().flat_map(|p| p.link_ids.iter().copied()).collect();
        for (l, &x) in exponents.iter().enumerate() {
            prop_assert!(x >= 0.0 && x.is_finite());
            if !crossed.contains(&u32::try_from(l).expect("fits")) {
                prop_assert_eq!(x, 0.0);
            }
        }
    }
}
