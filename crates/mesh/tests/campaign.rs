//! End-to-end mesh campaign checks: determinism across thread counts,
//! tomography-vs-ground-truth tolerance, and the bounded-ingest
//! invariant on the fleet fold.

use probenet_mesh::{campaign::run_campaign, MeshReport, MeshSpec};

#[test]
fn golden_campaign_is_byte_identical_across_thread_counts() {
    let spec = MeshSpec::golden();
    let serial = MeshReport::generate(&spec, 1).expect("serial campaign");
    let pooled = MeshReport::generate(&spec, 4).expect("pooled campaign");
    assert_eq!(
        serial.to_json(),
        pooled.to_json(),
        "mesh report must not depend on the worker pool size"
    );
}

#[test]
fn golden_campaign_attribution_matches_ground_truth() {
    let report = MeshReport::generate(&MeshSpec::golden(), 4).expect("campaign");
    assert!(
        report.all_links_within_tolerance,
        "per-link attribution strayed from ground truth:\n{}",
        report.to_json()
    );
    // Attribution conserves end-to-end losses path by path.
    for path in &report.paths {
        let sum: f64 = path.attributed.iter().sum();
        assert!(
            (sum - path.lost as f64).abs() < 1e-9,
            "path {} attribution {} != lost {}",
            path.key,
            sum,
            path.lost
        );
    }
    // All 15 pairs folded into the fleet report.
    assert_eq!(report.fleet_sessions, 15);
}

#[test]
fn fleet_fold_buffer_is_bounded_by_the_largest_frame() {
    let spec = MeshSpec::golden();
    let run = run_campaign(&spec, 4).expect("campaign");
    assert!(run.max_frame_bytes > 0);
    assert!(
        run.ingest_peak_buffer_bytes <= run.max_frame_bytes + probenet_merged::INGEST_CHUNK,
        "peak {} exceeds largest frame {} + one read chunk",
        run.ingest_peak_buffer_bytes,
        run.max_frame_bytes
    );
}
