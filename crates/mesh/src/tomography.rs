//! Per-link loss tomography from end-to-end path measurements.
//!
//! Each probe path `p` reports only its end-to-end survival
//! `received_p / sent_p`. Under independent per-link loss, the log
//! survival decomposes additively over the links the path traverses:
//!
//! ```text
//! -ln(received_p / sent_p) ≈ Σ_{l ∈ p} t_{p,l} · x_l
//! ```
//!
//! where `x_l = -ln(1 - q_l)` is link `l`'s per-traversal loss exponent
//! and `t_{p,l}` its traversal count on the round trip (2 for every
//! mesh link: out and back). Solving the overdetermined system for
//! `x ≥ 0` — non-negative least squares via exact coordinate descent in
//! fixed link order, a fixed sweep count, so the result is
//! deterministic — recovers per-link loss rates from purely end-to-end
//! observations; the simulator's ground-truth drop counters validate
//! them (DESIGN.md §15).

/// One path's end-to-end loss observation.
#[derive(Debug, Clone)]
pub struct PathObservation {
    /// Probes sent.
    pub sent: u64,
    /// Probes delivered.
    pub received: u64,
    /// Global link ids this path traverses (each crossed out and back).
    pub link_ids: Vec<u32>,
}

impl PathObservation {
    /// The path's log-survival measurement `b_p`. With zero deliveries
    /// the log diverges, so the count is clamped to half a probe — the
    /// standard continuity correction, keeping `b_p` finite and the
    /// solver total.
    pub fn log_loss(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        let received = if self.received == 0 {
            0.5
        } else {
            self.received as f64
        };
        -(received / self.sent as f64).ln()
    }

    /// Probes lost end to end.
    pub fn lost(&self) -> u64 {
        self.sent.saturating_sub(self.received)
    }
}

/// Traversals of one link on one round trip: out and back.
const TRAVERSALS: f64 = 2.0;

/// Coordinate-descent sweeps. The normal-equations update is exact per
/// coordinate, so small systems (tens of links) converge to machine
/// precision well before this; fixing the count keeps the output
/// deterministic rather than tolerance-dependent.
const SWEEPS: usize = 200;

/// Infer per-traversal loss exponents `x_l ≥ 0` for `n_links` links
/// from the path observations. Links no path traverses stay 0.
pub fn infer_link_exponents(paths: &[PathObservation], n_links: usize) -> Vec<f64> {
    let b: Vec<f64> = paths.iter().map(PathObservation::log_loss).collect();
    // a[p][l] = traversal count of link l on path p.
    let coeff = |p: &PathObservation, l: usize| -> f64 {
        let l = u32::try_from(l).expect("link index fits u32");
        if p.link_ids.contains(&l) {
            TRAVERSALS
        } else {
            0.0
        }
    };
    let mut x = vec![0.0f64; n_links];
    for _ in 0..SWEEPS {
        for l in 0..n_links {
            let mut num = 0.0;
            let mut den = 0.0;
            for (p, &bp) in paths.iter().zip(&b) {
                let a_pl = coeff(p, l);
                if a_pl == 0.0 {
                    continue;
                }
                let rest: f64 = p
                    .link_ids
                    .iter()
                    .map(|&m| {
                        let m = m as usize;
                        if m == l {
                            0.0
                        } else {
                            TRAVERSALS * x[m]
                        }
                    })
                    .sum();
                num += a_pl * (bp - rest);
                den += a_pl * a_pl;
            }
            if den > 0.0 {
                x[l] = (num / den).max(0.0);
            }
        }
    }
    x
}

/// Per-traversal loss rate implied by exponent `x`: `1 - e^{-x}`.
pub fn rate_from_exponent(x: f64) -> f64 {
    1.0 - (-x).exp()
}

/// Attribute each path's end-to-end losses to the links it traverses,
/// proportionally to the inferred exponents. Each row sums back to the
/// path's `lost()` **by construction** (even split when every inferred
/// exponent on the path is zero) — the conservation law the property
/// suite pins.
pub fn attribute_losses(paths: &[PathObservation], exponents: &[f64]) -> Vec<Vec<f64>> {
    paths
        .iter()
        .map(|p| {
            let lost = p.lost() as f64;
            let weights: Vec<f64> = p
                .link_ids
                .iter()
                .map(|&l| exponents.get(l as usize).copied().unwrap_or(0.0))
                .collect();
            let total: f64 = weights.iter().sum();
            if total > 0.0 {
                weights.iter().map(|w| lost * w / total).collect()
            } else {
                // No signal to split on: spread evenly so the row still
                // conserves the path's losses.
                let n = weights.len().max(1) as f64;
                weights.iter().map(|_| lost / n).collect()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(sent: u64, received: u64, links: &[u32]) -> PathObservation {
        PathObservation {
            sent,
            received,
            link_ids: links.to_vec(),
        }
    }

    #[test]
    fn single_link_rate_recovers_exactly() {
        // One path over one link, 10% round-trip loss: per-traversal
        // exponent x with 2x = -ln(0.9).
        let paths = [obs(1000, 900, &[0])];
        let x = infer_link_exponents(&paths, 1);
        let expected = -(0.9f64).ln() / 2.0;
        assert!((x[0] - expected).abs() < 1e-12, "{} vs {expected}", x[0]);
    }

    #[test]
    fn shared_link_is_separated_from_private_links() {
        // Three links: paths {0,2} and {1,2} share link 2. Synthesize
        // exact survival probabilities from known exponents and check
        // the solver recovers them.
        let (x0, x1, x2) = (0.01f64, 0.03, 0.02);
        let surv = |xs: &[f64]| (-2.0 * xs.iter().sum::<f64>()).exp();
        let sent = 1_000_000u64;
        let rec = |s: f64| (sent as f64 * s).round() as u64;
        let paths = [
            obs(sent, rec(surv(&[x0, x2])), &[0, 2]),
            obs(sent, rec(surv(&[x1, x2])), &[1, 2]),
            obs(sent, rec(surv(&[x0, x1])), &[0, 1]),
        ];
        let x = infer_link_exponents(&paths, 3);
        for (got, want) in x.iter().zip([x0, x1, x2]) {
            assert!((got - want).abs() < 1e-4, "{got} vs {want}");
        }
    }

    #[test]
    fn attribution_conserves_path_losses() {
        let paths = [obs(500, 450, &[0, 1]), obs(500, 500, &[1, 2])];
        let x = infer_link_exponents(&paths, 3);
        let attributed = attribute_losses(&paths, &x);
        for (p, row) in paths.iter().zip(&attributed) {
            let sum: f64 = row.iter().sum();
            assert!((sum - p.lost() as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_deliveries_stay_finite() {
        let paths = [obs(100, 0, &[0])];
        let x = infer_link_exponents(&paths, 1);
        assert!(x[0].is_finite() && x[0] > 0.0);
    }
}
