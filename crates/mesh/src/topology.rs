//! Deterministic shared-link mesh topologies.
//!
//! An N-host mesh attaches two hosts to each of ⌈N/2⌉ routers, and joins
//! the routers into a chain backbone. Every unordered host pair probes
//! the other end over the unique route through the chain, so the O(N²)
//! probe paths *share* backbone links — the structure the per-link
//! tomography ([`crate::tomography`]) exploits. The existing linear
//! [`Path`] stays the unit of simulation: [`MeshTopology::path_between`]
//! extracts each pair's per-path view from the graph.
//!
//! Two hosts per router is the smallest arrangement that makes every
//! link identifiable from end-to-end loss alone: a same-router pair
//! observes `x_a + x_b` over its two access links, and cross-router
//! pairs difference those sums against the backbone terms. With one
//! host per router, the access link and the first backbone segment only
//! ever appear together, and no set of path measurements separates them.
//!
//! Everything is derived from the mesh seed via splitmix64 — same spec,
//! same topology, byte-for-byte.

use probenet_sim::{BufferLimit, LinkSpec, Path, SimDuration};

/// A full mesh campaign specification: the topology and the probing
/// session every host pair runs over it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct MeshSpec {
    /// Number of probe hosts (vantage points). At least 2.
    pub hosts: usize,
    /// Master seed: link parameters, cross-traffic streams and per-pair
    /// simulator seeds all derive from it.
    pub seed: u64,
    /// Probe interval δ in milliseconds.
    pub delta_ms: u64,
    /// Probing span per pair, seconds.
    pub span_secs: u64,
}

impl MeshSpec {
    /// The mesh pinned by the golden artifact: 6 hosts (3 routers, 15
    /// probe paths over 8 links), δ = 20 ms for 30 s per pair.
    pub fn golden() -> Self {
        MeshSpec {
            hosts: 6,
            seed: 2026,
            delta_ms: 20,
            span_secs: 60,
        }
    }

    /// Probes each pair sends.
    pub fn probes_per_pair(&self) -> usize {
        usize::try_from(self.span_secs * 1000 / self.delta_ms).expect("probe count fits usize")
    }

    /// The unordered host pairs `(src, dst)`, `src < dst`, in
    /// lexicographic order — the canonical path enumeration every stage
    /// of the campaign shares.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.hosts {
            for j in (i + 1)..self.hosts {
                out.push((i, j));
            }
        }
        out
    }

    /// Build the topology this spec describes.
    pub fn topology(&self) -> MeshTopology {
        MeshTopology::generate(self)
    }
}

/// splitmix64: the seed mixer used throughout (finalizer of Steele et
/// al.'s SplittableRandom). One call maps any 64-bit input to a
/// well-distributed output, so per-link and per-pair streams derived
/// from `(seed, index)` never collide structurally.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// What role a mesh link plays. (Rendered as a plain string in the
/// mesh report; the vendored serde derive has no struct-variant
/// support.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Host `host`'s attachment to its router.
    Access {
        /// The attached host.
        host: usize,
    },
    /// Backbone chain segment `segment` (router `segment` to
    /// `segment + 1`).
    Backbone {
        /// The chain segment index.
        segment: usize,
    },
}

/// One link of the mesh, with its stable global identity.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshLink {
    /// Global link id: access links are `0..hosts` (by host), backbone
    /// segments follow as `hosts..hosts + routers - 1`.
    pub id: u32,
    /// Human-readable name (appears in per-hop frame annotations).
    pub name: String,
    /// Role of this link.
    pub kind: LinkKind,
    /// Simulator parameters.
    pub spec: LinkSpec,
}

/// A generated mesh: hosts, routers, and every link with stable ids.
#[derive(Debug, Clone)]
pub struct MeshTopology {
    /// Number of hosts.
    pub hosts: usize,
    /// Number of routers (`hosts.div_ceil(2)`).
    pub routers: usize,
    /// All links: access first (`0..hosts`), then backbone segments.
    pub links: Vec<MeshLink>,
    /// The seed the parameters were derived from.
    pub seed: u64,
}

/// Bandwidth of non-bottleneck segments: campus Ethernet.
const ACCESS_BPS: u64 = 10_000_000;
/// Bandwidth of non-bottleneck backbone segments: T1.
const T1_BPS: u64 = 1_544_000;
/// The bottleneck backbone segment: the paper's 128 kb/s transatlantic
/// rate, with the same slot-limited buffer as `Path::inria_umd_1992`.
const BOTTLENECK_BPS: u64 = 128_000;
const BOTTLENECK_BUFFER_PKTS: usize = 22;

impl MeshTopology {
    /// Generate the topology for `spec`. Deterministic in `spec` alone.
    ///
    /// # Panics
    /// Panics if `spec.hosts < 2` or `spec.hosts` is odd. Evenness is a
    /// hard contract, not a convenience: an odd mesh leaves its last
    /// router with a single host, whose access link then appears on
    /// exactly the same set of probe paths as the final backbone
    /// segment — identical design-matrix columns, and no end-to-end
    /// measurement can split loss between them (the solver would
    /// silently dump everything on whichever is swept first).
    pub fn generate(spec: &MeshSpec) -> Self {
        assert!(spec.hosts >= 2, "a mesh needs at least two hosts");
        assert!(
            spec.hosts.is_multiple_of(2),
            "mesh hosts must be even: two hosts per router is what keeps \
             every link identifiable from end-to-end loss"
        );
        let routers = spec.hosts.div_ceil(2);
        let mut links = Vec::with_capacity(spec.hosts + routers.saturating_sub(1));
        for host in 0..spec.hosts {
            let id = u32::try_from(host).expect("host count fits u32");
            let h = splitmix64(spec.seed ^ (0xacce_u64 << 32) ^ u64::from(id));
            // 200–1000 µs propagation, 0.2–1.2% random interface loss —
            // enough per-link diversity that no two access links look
            // alike to the tomography.
            let prop_us = 200 + h % 800;
            let loss = 0.002 + ((h >> 16) % 1000) as f64 * 1e-5;
            links.push(MeshLink {
                id,
                name: format!("access:h{host:02}"),
                kind: LinkKind::Access { host },
                spec: LinkSpec::new(ACCESS_BPS, SimDuration::from_micros(prop_us))
                    .with_random_loss(loss),
            });
        }
        let backbone_segments = routers.saturating_sub(1);
        let bottleneck_segment = backbone_segments / 2;
        for segment in 0..backbone_segments {
            let id = u32::try_from(spec.hosts + segment).expect("link count fits u32");
            let h = splitmix64(spec.seed ^ (0xbac_u64 << 40) ^ u64::from(id));
            let loss = 0.001 + ((h >> 16) % 500) as f64 * 1e-5;
            let spec_link = if segment == bottleneck_segment {
                // The shared bottleneck every cross-router path funnels
                // through: finite buffer, so overflow drops join the
                // random interface loss in the ground truth.
                LinkSpec::new(BOTTLENECK_BPS, SimDuration::from_micros(20_000 + h % 5_000))
                    .with_buffer(BufferLimit::Packets(BOTTLENECK_BUFFER_PKTS))
                    .with_random_loss(loss)
            } else {
                LinkSpec::new(T1_BPS, SimDuration::from_micros(1_000 + h % 3_000))
                    .with_random_loss(loss)
            };
            links.push(MeshLink {
                id,
                name: format!("backbone:r{segment}-r{}", segment + 1),
                kind: LinkKind::Backbone { segment },
                spec: spec_link,
            });
        }
        MeshTopology {
            hosts: spec.hosts,
            routers,
            links,
            seed: spec.seed,
        }
    }

    /// Router host `host` attaches to.
    pub fn router_of(&self, host: usize) -> usize {
        host / 2
    }

    /// Global id of the backbone bottleneck segment's link, if the mesh
    /// has a backbone at all.
    pub fn bottleneck_link(&self) -> Option<u32> {
        self.links
            .iter()
            .find(|l| l.spec.bandwidth_bps == BOTTLENECK_BPS)
            .map(|l| l.id)
    }

    /// The per-path view of the route from host `src` to host `dst`:
    /// the linear [`Path`] the simulator runs, plus the global link id
    /// of each hop in traversal order.
    ///
    /// # Panics
    /// Panics unless `src < dst < hosts`.
    pub fn path_between(&self, src: usize, dst: usize) -> (Path, Vec<u32>) {
        assert!(src < dst && dst < self.hosts, "src < dst < hosts");
        let (ra, rb) = (self.router_of(src), self.router_of(dst));
        let mut builder = Path::builder(format!("h{src:02}"));
        let mut ids = Vec::new();
        let access = |host: usize| &self.links[host];
        let backbone = |segment: usize| &self.links[self.hosts + segment];
        builder = builder.hop(access(src).spec.clone(), format!("r{ra}"));
        ids.push(access(src).id);
        for segment in ra..rb {
            builder = builder.hop(backbone(segment).spec.clone(), format!("r{}", segment + 1));
            ids.push(backbone(segment).id);
        }
        builder = builder.hop(access(dst).spec.clone(), format!("h{dst:02}"));
        ids.push(access(dst).id);
        (builder.build(), ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_mesh_shape() {
        let t = MeshSpec::golden().topology();
        assert_eq!(t.hosts, 6);
        assert_eq!(t.routers, 3);
        // 6 access + 2 backbone links.
        assert_eq!(t.links.len(), 8);
        assert!(t.bottleneck_link().is_some());
        assert_eq!(MeshSpec::golden().pairs().len(), 15);
    }

    #[test]
    fn topology_is_deterministic() {
        let a = MeshSpec::golden().topology();
        let b = MeshSpec::golden().topology();
        assert_eq!(a.links, b.links);
    }

    #[test]
    fn same_router_path_skips_the_backbone() {
        let t = MeshSpec::golden().topology();
        let (path, ids) = t.path_between(0, 1);
        assert_eq!(path.hop_count(), 2);
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn cross_router_path_traverses_segments_in_order() {
        let t = MeshSpec::golden().topology();
        let (path, ids) = t.path_between(0, 4);
        // access(0), backbone r0-r1, backbone r1-r2, access(4).
        assert_eq!(path.hop_count(), 4);
        assert_eq!(ids, vec![0, 6, 7, 4]);
        assert_eq!(path.nodes.first().map(String::as_str), Some("h00"));
        assert_eq!(path.nodes.last().map(String::as_str), Some("h04"));
    }

    #[test]
    fn two_host_mesh_degenerates_to_one_router() {
        let spec = MeshSpec {
            hosts: 2,
            seed: 1,
            delta_ms: 20,
            span_secs: 10,
        };
        let t = spec.topology();
        assert_eq!(t.routers, 1);
        assert_eq!(t.links.len(), 2);
        let (path, ids) = t.path_between(0, 1);
        assert_eq!(path.hop_count(), 2);
        assert_eq!(ids, vec![0, 1]);
    }
}
