//! Probe-mesh campaigns: shared-link topologies, the O(N²) probing
//! fleet, and per-link loss tomography.
//!
//! Bolot's experiment measured one path. This crate scales the same
//! pipeline out to a *mesh*: [`topology`] generates a deterministic
//! N-host graph whose probe paths share backbone links (each pair's
//! route is still the linear `Path` the simulator runs — extracted from
//! the graph by `MeshTopology::path_between`); [`campaign`] runs one
//! collector per vantage host, ships every host's snapshot-frame stream
//! (with v2 per-hop annotations) through the merge daemon's incremental
//! reader, and decomposes end-to-end loss and queueing delay onto the
//! shared links; [`tomography`] is the decomposition itself, validated
//! against the simulator's ground-truth per-link drop counters.
//!
//! A 2-host mesh degenerates to exactly the single-path pipeline:
//! [`campaign::degenerate_report`] reproduces the `--stream` golden
//! artifact byte for byte (the differential suite pins this at several
//! thread counts).

pub mod campaign;
pub mod tomography;
pub mod topology;

pub use campaign::{
    degenerate_report, fold_through_daemon, DegenerateSpec, LinkRow, MeshReport, MeshRun, PathRow,
    TOLERANCE_ABS, TOLERANCE_RATE, TOLERANCE_REL,
};
pub use tomography::{attribute_losses, infer_link_exponents, rate_from_exponent, PathObservation};
pub use topology::{splitmix64, LinkKind, MeshLink, MeshSpec, MeshTopology};
