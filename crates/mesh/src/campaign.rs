//! The mesh campaign: simulate every probe pair, collect per-vantage
//! sessions, fold the fleet through the merge daemon, and decompose
//! end-to-end loss/queueing onto shared links.
//!
//! Pipeline (every stage order-fixed, so the report is byte-identical
//! at any thread count):
//!
//! 1. [`MeshSpec::pairs`] enumerates the O(N²) probe paths; each pair's
//!    linear path is simulated independently
//!    ([`probenet_netdyn::SimExperiment`]) with cross traffic whose
//!    streams are seeded **per global link** — every path crossing a
//!    shared link sees the same load.
//! 2. One [`Collector`] per vantage host folds that host's sessions;
//!    shard keys carry `(src, dst, δ, seed)` via
//!    [`SessionKey::mesh`](probenet_stream::SessionKey::mesh).
//! 3. Each vantage's report is encoded as a snapshot-frame stream with
//!    per-hop [`HopAnnotation`]s (the v2 `TAG_HOPS` section) and all
//!    streams are folded through [`MergeService::ingest_reader`] — the
//!    same incremental path a real fleet daemon runs.
//! 4. Ground truth (per-link probe drops) is read back from the
//!    *decoded* frame annotations, proving the v2 section survives the
//!    wire; the tomography pass ([`crate::tomography`]) infers the same
//!    quantities from end-to-end loss alone and the report compares the
//!    two within [`TOLERANCE_REL`]/[`TOLERANCE_ABS`].

use std::io::Cursor;

use probenet_core::sched::par_map_threads;
use probenet_merged::{MergeError, MergeService};
use probenet_netdyn::{ExperimentConfig, RttSeries, SimExperiment};
use probenet_sim::{Direction, FlowClass, SimDuration};
use probenet_stream::{BankConfig, Collector, CollectorConfig, CollectorReport, SessionKey};
use probenet_traffic::InternetMix;
use probenet_wire::snapshot::{decode_frames, HopAnnotation, SessionFrame};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::tomography::{
    attribute_losses, infer_link_exponents, rate_from_exponent, PathObservation,
};
use crate::topology::{splitmix64, LinkKind, MeshSpec, MeshTopology};

/// Cross-traffic utilization offered to each backbone link (fraction of
/// its bandwidth), matching the paper scenarios' calibrated mix.
const CROSS_UTILIZATION: f64 = 0.5;

/// Relative slack of the tomography-vs-ground-truth check: per link,
/// attributed loss must land within this fraction of the true drop
/// count (or within one of the absolute slacks below, whichever is
/// loosest). Loss attribution splits each path's losses by *inferred
/// rates*, while the truth realizes finite-sample noise on a few
/// hundred probes per path, so exact agreement is not expected; see
/// DESIGN.md §15.
pub const TOLERANCE_REL: f64 = 0.35;

/// Absolute slack of the tomography check, in probes. Covers links whose
/// true drop counts are small enough that relative error is meaningless.
pub const TOLERANCE_ABS: f64 = 25.0;

/// Rate-unit slack: 0.25% of the link's probe-traversal volume (every
/// path crossing it, out and back). The solver's error is naturally a
/// *rate* error — a low-loss link estimated by differencing paths that
/// all cross the 128 kb/s bottleneck inherits a few tenths of a percent
/// of absolute rate uncertainty regardless of its own loss — so the
/// loss-count slack must scale with how many traversals that rate
/// multiplies.
pub const TOLERANCE_RATE: f64 = 0.0025;

/// Everything measured about one probe pair's path.
#[derive(Debug)]
pub struct PathOutcome {
    /// Source (vantage) host.
    pub src: usize,
    /// Destination host.
    pub dst: usize,
    /// The session's shard key.
    pub key: SessionKey,
    /// The measured RTT series.
    pub series: RttSeries,
    /// Global link ids in hop order.
    pub link_ids: Vec<u32>,
    /// Ground-truth probe drops per hop (aligned with `link_ids`),
    /// from the simulator's drop records.
    pub hop_probe_drops: Vec<u64>,
    /// No-load round trip of the path, ms.
    pub base_rtt_ms: f64,
}

/// Simulate one pair of the mesh.
fn run_pair(spec: &MeshSpec, topo: &MeshTopology, src: usize, dst: usize) -> PathOutcome {
    let (path, link_ids) = topo.path_between(src, dst);
    let delta = SimDuration::from_millis(spec.delta_ms);
    let config = ExperimentConfig::quick(delta, spec.probes_per_pair());
    let wire_bytes = config.wire_bytes();
    let pair_seed =
        splitmix64(spec.seed ^ 0x7061_6972_0000_0000 ^ ((src as u64) << 20) ^ dst as u64);
    let mut experiment = SimExperiment::new(config, path.clone(), pair_seed);
    // Cross traffic per backbone link, seeded by the *global* link id:
    // every path crossing a shared link competes with the identical
    // load, which is what correlates their losses.
    let horizon = SimDuration::from_secs(spec.span_secs + 2);
    for (local, &gid) in link_ids.iter().enumerate() {
        let link = &topo.links[gid as usize];
        if !matches!(link.kind, LinkKind::Backbone { .. }) {
            continue;
        }
        let mix = InternetMix::calibrated(link.spec.bandwidth_bps, CROSS_UTILIZATION, 0.2, 3.0);
        for (direction, salt) in [(Direction::Outbound, 0u64), (Direction::Inbound, 1)] {
            let stream_seed = splitmix64(spec.seed ^ 0xc055_0000 ^ (u64::from(gid) << 8) ^ salt);
            let arrivals = mix.generate(&mut StdRng::seed_from_u64(stream_seed), horizon);
            experiment = experiment.with_cross_traffic(local, direction, arrivals);
        }
    }
    let (series, run) = experiment.run();
    let mut hop_probe_drops = vec![0u64; link_ids.len()];
    for d in &run.drops {
        if d.class != FlowClass::Probe {
            continue;
        }
        // Port convention: outbound `0..links`, inbound `links..2·links`
        // — both directions belong to the same hop.
        let local = if d.port < run.links {
            d.port
        } else {
            d.port - run.links
        };
        hop_probe_drops[local] += 1;
    }
    PathOutcome {
        src,
        dst,
        key: SessionKey::mesh(mesh_name(spec), src, dst, spec.delta_ms, spec.seed),
        series,
        link_ids,
        hop_probe_drops,
        base_rtt_ms: path.base_rtt(wire_bytes).as_millis_f64(),
    }
}

/// The mesh's scenario name, embedded in every shard key.
pub fn mesh_name(spec: &MeshSpec) -> String {
    format!("mesh{}-s{}", spec.hosts, spec.seed)
}

/// The raw products of a campaign, before report rendering.
pub struct MeshRun {
    /// Per-pair outcomes, in [`MeshSpec::pairs`] order.
    pub outcomes: Vec<PathOutcome>,
    /// One encoded frame stream per vantage host (hosts with no
    /// sessions — the last host — contribute an empty stream).
    pub host_streams: Vec<Vec<u8>>,
    /// The fleet report folded from every host stream through the
    /// merge daemon's incremental reader.
    pub fleet: CollectorReport,
    /// The daemon's staging high-water mark while folding.
    pub ingest_peak_buffer_bytes: usize,
    /// Largest single encoded frame across all streams.
    pub max_frame_bytes: usize,
}

/// Run the campaign for `spec`, simulating pairs on `threads` pool
/// workers. Output is byte-identical for any `threads`.
pub fn run_campaign(spec: &MeshSpec, threads: usize) -> Result<MeshRun, MergeError> {
    let topo = spec.topology();
    let outcomes = par_map_threads(threads, spec.pairs(), |(src, dst)| {
        run_pair(spec, &topo, src, dst)
    });

    // One collector per vantage host: host i owns every session it
    // sourced. Sessions register in pair order, so each vantage's
    // report and frame stream are order-fixed.
    let mut host_streams: Vec<Vec<u8>> = Vec::with_capacity(spec.hosts);
    for host in 0..spec.hosts {
        let own: Vec<&PathOutcome> = outcomes.iter().filter(|o| o.src == host).collect();
        let mut stream = Vec::new();
        if !own.is_empty() {
            let mut collector = Collector::new(CollectorConfig {
                channel_capacity: 256,
                snapshot_every: 0,
            });
            let mut producers = Vec::new();
            for oc in &own {
                let bank = BankConfig::bolot(
                    spec.delta_ms as f64,
                    oc.series.wire_bytes,
                    oc.series.clock_resolution_ns,
                );
                producers.push(collector.add_session(oc.key.clone(), bank));
            }
            let running = collector.start();
            for (producer, oc) in producers.into_iter().zip(&own) {
                for r in &oc.series.records {
                    assert!(producer.push(r.to_stream()), "collector exited early");
                }
            }
            let report = running.join();
            for session in &report.sessions {
                let oc = own
                    .iter()
                    .find(|o| o.key == session.key)
                    .expect("every session maps to an outcome");
                let mut frame = SessionFrame::from_report(session);
                frame.hops = oc
                    .link_ids
                    .iter()
                    .zip(&oc.hop_probe_drops)
                    .map(|(&link, &probe_drops)| HopAnnotation {
                        link,
                        name: topo.links[link as usize].name.clone(),
                        probe_drops,
                    })
                    .collect();
                stream.extend_from_slice(&frame.encode()); // probenet-lint: allow(unordered-partition-merge) frames appended in the collector report's key-sorted session order
            }
        }
        host_streams.push(stream);
    }

    // Fold every vantage's stream through the daemon's incremental
    // reader — the same code path a TCP fan-in exercises.
    let mut service = MergeService::new();
    for stream in &host_streams {
        service.ingest_reader(&mut Cursor::new(stream))?;
    }
    let ingest_peak_buffer_bytes = service.peak_buffer_bytes();
    let fleet = service.into_report()?;

    let mut max_frame_bytes = 0usize;
    for stream in &host_streams {
        for frame in decode_frames(stream)? {
            max_frame_bytes = max_frame_bytes.max(frame.encode().len());
        }
    }

    Ok(MeshRun {
        outcomes,
        host_streams,
        fleet,
        ingest_peak_buffer_bytes,
        max_frame_bytes,
    })
}

/// One link's row of the mesh report: configuration, ground truth, and
/// what the tomography inferred from end-to-end observations alone.
#[derive(Debug, Serialize)]
pub struct LinkRow {
    /// Global link id.
    pub id: u32,
    /// Link name (as carried in the hop annotations).
    pub name: String,
    /// `"access"` or `"backbone"`.
    pub kind: String,
    /// Configured bandwidth, bits/s.
    pub bandwidth_bps: u64,
    /// Configured per-traversal random-loss probability.
    pub configured_random_loss: f64,
    /// Ground truth: probes dropped on this link, summed over every
    /// path's simulation — read back from the decoded v2 hop
    /// annotations, not from in-process state.
    pub truth_probe_drops: u64,
    /// Loss attributed to this link by the tomography decomposition,
    /// summed over paths.
    pub attributed_loss: f64,
    /// Inferred per-traversal loss exponent `x_l`.
    pub inferred_exponent: f64,
    /// Inferred per-traversal loss rate `1 - e^{-x_l}`.
    pub inferred_rate: f64,
    /// Mean queueing delay attributed to this link, ms (split of each
    /// path's `mean_rtt - base_rtt` by the same inferred weights).
    pub attributed_queueing_ms: f64,
    /// Did `attributed_loss` land within tolerance of the truth?
    pub within_tolerance: bool,
}

/// One probe path's row of the mesh report.
#[derive(Debug, Serialize)]
pub struct PathRow {
    /// The session shard key, rendered.
    pub key: String,
    /// Source host.
    pub src: usize,
    /// Destination host.
    pub dst: usize,
    /// Probes sent / delivered / lost end to end.
    pub sent: u64,
    /// Probes delivered.
    pub received: u64,
    /// Probes lost.
    pub lost: u64,
    /// No-load round trip, ms.
    pub base_rtt_ms: f64,
    /// Mean measured round trip, ms (absent if nothing was delivered).
    pub mean_rtt_ms: Option<f64>,
    /// Global link ids in hop order.
    pub links: Vec<u32>,
    /// Loss attributed to each hop (aligned with `links`); sums to
    /// `lost` by construction.
    pub attributed: Vec<f64>,
}

/// The golden mesh artifact: topology, per-path measurements, per-link
/// decomposition and its ground-truth validation.
#[derive(Debug, Serialize)]
pub struct MeshReport {
    /// The campaign specification.
    pub spec: MeshSpec,
    /// Per-link rows, by global id.
    pub links: Vec<LinkRow>,
    /// Per-path rows, in pair order.
    pub paths: Vec<PathRow>,
    /// Sessions in the folded fleet report.
    pub fleet_sessions: usize,
    /// FNV-1a digest of the folded fleet report's JSON rendering.
    pub fleet_fnv1a: String,
    /// The merge daemon's staging high-water mark while folding the
    /// host streams.
    pub ingest_peak_buffer_bytes: u64,
    /// Largest single frame on any host stream (the bound the ingest
    /// buffer must respect).
    pub max_frame_bytes: u64,
    /// Did every link's attribution land within tolerance?
    pub all_links_within_tolerance: bool,
}

/// FNV-1a 64-bit digest, fixed-width hex.
fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    format!("{h:016x}")
}

impl MeshReport {
    /// Run the campaign and assemble the report.
    pub fn generate(spec: &MeshSpec, threads: usize) -> Result<Self, MergeError> {
        let topo = spec.topology();
        let run = run_campaign(spec, threads)?;

        // Ground truth comes from the *decoded* hop annotations: the v2
        // section must survive encode → daemon fan-in → decode.
        let mut truth = vec![0u64; topo.links.len()];
        for stream in &run.host_streams {
            for frame in decode_frames(stream).expect("own streams decode") {
                for hop in &frame.hops {
                    truth[hop.link as usize] += hop.probe_drops;
                }
            }
        }

        let observations: Vec<PathObservation> = run
            .outcomes
            .iter()
            .map(|oc| PathObservation {
                sent: run
                    .fleet
                    .sessions
                    .iter()
                    .find(|s| s.key == oc.key)
                    .map(|s| s.snapshot.sent)
                    .expect("every pair folds into the fleet report"),
                received: run
                    .fleet
                    .sessions
                    .iter()
                    .find(|s| s.key == oc.key)
                    .map(|s| s.snapshot.received)
                    .expect("every pair folds into the fleet report"),
                link_ids: oc.link_ids.clone(),
            })
            .collect();
        let exponents = infer_link_exponents(&observations, topo.links.len());
        let attribution = attribute_losses(&observations, &exponents);

        // Queueing-delay decomposition: each path's mean excess over its
        // no-load RTT, split by the same inferred weights as its losses.
        let mut queueing = vec![0.0f64; topo.links.len()];
        let mut queueing_paths = vec![0u64; topo.links.len()];
        for (oc, obs) in run.outcomes.iter().zip(&observations) {
            let rtts = oc.series.delivered_rtts_ms();
            if rtts.is_empty() {
                continue;
            }
            let mean = rtts.iter().sum::<f64>() / rtts.len() as f64;
            let excess = (mean - oc.base_rtt_ms).max(0.0);
            let weights: Vec<f64> = obs
                .link_ids
                .iter()
                .map(|&l| exponents[l as usize])
                .collect();
            let total: f64 = weights.iter().sum();
            for (&l, &w) in obs.link_ids.iter().zip(&weights) {
                let share = if total > 0.0 {
                    w / total
                } else {
                    1.0 / weights.len() as f64
                };
                queueing[l as usize] += excess * share;
                queueing_paths[l as usize] += 1;
            }
        }

        let mut attributed_per_link = vec![0.0f64; topo.links.len()];
        for (obs, row) in observations.iter().zip(&attribution) {
            for (&l, &a) in obs.link_ids.iter().zip(row) {
                attributed_per_link[l as usize] += a;
            }
        }

        // Probe-traversal volume per link: 2·sent for every path that
        // crosses it — the scale the rate-unit slack multiplies.
        let mut volume = vec![0.0f64; topo.links.len()];
        for obs in &observations {
            for &l in &obs.link_ids {
                volume[l as usize] += 2.0 * obs.sent as f64;
            }
        }

        let mut all_within = true;
        let links: Vec<LinkRow> = topo
            .links
            .iter()
            .map(|link| {
                let l = link.id as usize;
                let truth_drops = truth[l];
                let slack = TOLERANCE_ABS
                    .max(TOLERANCE_REL * truth_drops as f64)
                    .max(TOLERANCE_RATE * volume[l]);
                let within = (attributed_per_link[l] - truth_drops as f64).abs() <= slack;
                all_within &= within;
                LinkRow {
                    id: link.id,
                    name: link.name.clone(),
                    kind: match link.kind {
                        LinkKind::Access { .. } => "access".to_string(),
                        LinkKind::Backbone { .. } => "backbone".to_string(),
                    },
                    bandwidth_bps: link.spec.bandwidth_bps,
                    configured_random_loss: link.spec.random_loss,
                    truth_probe_drops: truth_drops,
                    attributed_loss: attributed_per_link[l],
                    inferred_exponent: exponents[l],
                    inferred_rate: rate_from_exponent(exponents[l]),
                    attributed_queueing_ms: if queueing_paths[l] > 0 {
                        queueing[l] / queueing_paths[l] as f64
                    } else {
                        0.0
                    },
                    within_tolerance: within,
                }
            })
            .collect();

        let paths: Vec<PathRow> = run
            .outcomes
            .iter()
            .zip(&observations)
            .zip(&attribution)
            .map(|((oc, obs), row)| {
                let rtts = oc.series.delivered_rtts_ms();
                PathRow {
                    key: oc.key.to_string(),
                    src: oc.src,
                    dst: oc.dst,
                    sent: obs.sent,
                    received: obs.received,
                    lost: obs.lost(),
                    base_rtt_ms: oc.base_rtt_ms,
                    mean_rtt_ms: (!rtts.is_empty())
                        .then(|| rtts.iter().sum::<f64>() / rtts.len() as f64),
                    links: obs.link_ids.clone(),
                    attributed: row.clone(),
                }
            })
            .collect();

        Ok(MeshReport {
            spec: *spec,
            links,
            paths,
            fleet_sessions: run.fleet.sessions.len(),
            fleet_fnv1a: fnv1a_hex(run.fleet.to_json().as_bytes()),
            ingest_peak_buffer_bytes: run.ingest_peak_buffer_bytes as u64,
            max_frame_bytes: run.max_frame_bytes as u64,
            all_links_within_tolerance: all_within,
        })
    }

    /// Render as pretty JSON with a trailing newline — the golden
    /// artifact format.
    pub fn to_json(&self) -> String {
        let mut body = serde_json::to_string_pretty(self).expect("serializable mesh report");
        body.push('\n');
        body
    }
}

// ---------------------------------------------------------------------------
// Degenerate 2-host mesh: the single-path pipeline, bit for bit
// ---------------------------------------------------------------------------

/// The degenerate mesh campaign: one vantage probing one destination —
/// exactly the single-path streaming pipeline. Parameterized by the
/// scenario and `(seed, δ ms, span s)` session list so the caller (the
/// `repro` harness, the differential suite) pins it to the existing
/// `--stream` golden without duplicating its constants.
#[derive(Debug, Clone)]
pub struct DegenerateSpec {
    /// Named impairment scenario every session runs.
    pub scenario: String,
    /// The `(seed, delta_ms, span_secs)` sessions.
    pub tasks: Vec<(u64, u64, u64)>,
}

/// Run the degenerate campaign: each task's series is generated on the
/// pool, all sessions feed one collector (the single vantage), and the
/// report comes back exactly as the single-path `--stream` pipeline
/// produces it — byte-identical at any `threads`.
///
/// # Panics
/// Panics if `spec.scenario` names no impairment scenario.
pub fn degenerate_report(spec: &DegenerateSpec, threads: usize) -> CollectorReport {
    let sc = probenet_core::impairment_scenario(&spec.scenario).expect("scenario exists");
    let series_by_task = par_map_threads(
        threads,
        spec.tasks.clone(),
        |(seed, delta_ms, span_secs)| {
            sc.run(
                seed,
                SimDuration::from_millis(delta_ms),
                SimDuration::from_secs(span_secs),
            )
            .series
        },
    );
    let mut collector = Collector::new(CollectorConfig {
        channel_capacity: 256,
        snapshot_every: 0,
    });
    let mut producers = Vec::new();
    for ((seed, delta_ms, _), series) in spec.tasks.iter().zip(&series_by_task) {
        let key = SessionKey::new(spec.scenario.clone(), *delta_ms, *seed);
        let bank = BankConfig::bolot(
            *delta_ms as f64,
            series.wire_bytes,
            series.clock_resolution_ns,
        );
        producers.push(collector.add_session(key, bank));
    }
    let running = collector.start();
    for (producer, series) in producers.into_iter().zip(series_by_task) {
        for r in &series.records {
            assert!(producer.push(r.to_stream()), "collector exited early");
        }
    }
    running.join()
}

/// Split `report` into `shards` round-robin frame streams and fold them
/// back through the daemon's incremental reader. Returns the folded
/// report and the reader's staging high-water mark — the differential
/// suite asserts the former byte-identical to the input and the latter
/// bounded by the largest frame.
pub fn fold_through_daemon(
    report: &CollectorReport,
    shards: usize,
) -> Result<(CollectorReport, usize), MergeError> {
    assert!(shards > 0, "at least one shard");
    let mut streams = vec![Vec::new(); shards];
    for (i, session) in report.sessions.iter().enumerate() {
        // probenet-lint: allow(unordered-partition-merge) round-robin over key-sorted sessions, shard order fixed by index
        streams[i % shards].extend_from_slice(&SessionFrame::from_report(session).encode());
    }
    let mut service = MergeService::new();
    for stream in &streams {
        service.ingest_reader(&mut Cursor::new(stream))?;
    }
    let peak = service.peak_buffer_bytes();
    Ok((service.into_report()?, peak))
}
