//! The live engine's single wall-clock read point.
//!
//! Everything else in the crate consumes nanosecond instants produced
//! here, so the lint exemption below is scoped to this one module and the
//! rest of the reactor stays mechanically checkable by `probenet-lint`.
//!
//! probenet-lint: allow-file(wall-clock-in-sim) the live engine probes
//! real networks: packet timestamps and pacing deadlines are genuine
//! wall-clock reads (the same justification as crates/netdyn/src/udp.rs),
//! confined to this module so the sim crates keep rejecting wall-clock.
//!
//! probenet-lint: allow-file(tainted-artifact-path) timestamps derived
//! from this clock ARE the live measurement: their flow into probe
//! records and reports is the tool's purpose, not a determinism leak.

use probenet_wire::Timestamp48;
use std::time::Instant;

/// Monotonic clock anchored at reactor startup. All reactor deadlines,
/// lateness measurements and probe timestamps are offsets from this one
/// epoch, so they are mutually comparable without clock-sync caveats.
#[derive(Debug, Clone, Copy)]
pub struct MonoClock {
    epoch: Instant,
}

impl MonoClock {
    /// A clock whose zero is "now".
    pub fn start() -> MonoClock {
        MonoClock {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds since the clock started.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The current instant as a wire timestamp (microseconds mod 2^48),
    /// what the probe's `source_ts`/`dest_ts` fields carry.
    pub fn stamp(&self) -> Timestamp48 {
        Timestamp48::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_consistent() {
        let clock = MonoClock::start();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
        // The stamp and the ns reading come from the same epoch: the stamp
        // in µs is never ahead of the ns reading.
        let stamp = clock.stamp().as_micros();
        let ns = clock.now_ns();
        assert!(stamp <= ns / 1_000 + 1);
    }
}
