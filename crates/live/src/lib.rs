//! # probenet-live
//!
//! The reactor-based live probe engine: one thread, one `epoll` loop,
//! thousands of concurrent probe sessions.
//!
//! The thread-per-session prober in `probenet-netdyn` tops out at tens of
//! sessions before scheduler jitter swamps the pacing; fleet-scale
//! measurement (ETOMIC-style meshes) needs an event-driven engine. This
//! crate provides it:
//!
//! * a **readiness loop** over the vendored [`rawpoll`] epoll shim, with a
//!   self-pipe for control/shutdown wakeups that bypass the data path;
//! * a **hashed timer wheel** ([`wheel`]) pacing every session's send
//!   deadlines, with a lateness histogram grading schedule fidelity;
//! * **per-session state machines** with explicit out-buffer backpressure
//!   (a full buffer defers the send and counts the deferral — probes are
//!   never silently dropped on the floor);
//! * **batched `sendmmsg`/`recvmmsg`** submission over shared "lane"
//!   sockets, with a graceful per-datagram `send_to`/`recv_from` fallback
//!   ladder where the syscalls are unavailable;
//! * finished sessions emit [`probenet_stream::StreamRecord`]s in sequence
//!   order, ready for the `probenet-stream` collector's bounded SPSC rings
//!   — the `records + dropped == produced` contract holds unchanged.
//!
//! Sessions sharing a lane are demultiplexed by tagging the probe's 32-bit
//! sequence number: the high 12 bits carry the lane-local session slot,
//! the low 20 bits the probe number (the echo host returns `seq`
//! verbatim). Lanes with a single session use the full 32-bit range.

mod clock;
mod reactor;
pub mod wheel;

pub use reactor::{LiveHandle, Reactor};

use probenet_stream::{SessionKey, StreamRecord};
use std::io;
use std::net::SocketAddr;
use std::time::Duration;

/// One probe session to drive: `count` probes at `interval` toward
/// `target`, starting `start_offset` after reactor launch.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Identity under which records are reported.
    pub key: SessionKey,
    /// The echo host to probe.
    pub target: SocketAddr,
    /// Probe interval δ.
    pub interval: Duration,
    /// Number of probes to send.
    pub count: usize,
    /// Delay before this session's first probe (staggering thousands of
    /// sessions avoids a synchronized burst every δ).
    pub start_offset: Duration,
    /// Clock resolution applied to reported RTTs (ns; 0 = full resolution).
    pub clock_resolution_ns: u64,
}

/// Reactor tuning knobs.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// How long a session lingers for stragglers after its last send
    /// before declaring unresolved probes lost.
    pub drain: Duration,
    /// Max datagrams per `sendmmsg`/`recvmmsg` submission.
    pub batch: usize,
    /// Sessions multiplexed onto one lane socket (1 = socket per session;
    /// capped at 4096 by the seq-tag width).
    pub sessions_per_lane: usize,
    /// Per-session out-buffer capacity (packets); a full buffer defers the
    /// send by one timer tick and counts a backpressure deferral.
    pub out_buffer_capacity: usize,
    /// Skip the batched syscalls and exercise the `send_to`/`recv_from`
    /// fallback rung directly (the ladder's test hook).
    pub force_fallback: bool,
    /// Requested `SO_RCVBUF`/`SO_SNDBUF` per lane socket (bytes, best
    /// effort; 0 = leave the kernel default).
    pub socket_buffer_bytes: usize,
    /// Timer wheel tick quantum.
    pub timer_tick: Duration,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            drain: Duration::from_millis(500),
            batch: 32,
            sessions_per_lane: 64,
            out_buffer_capacity: 64,
            force_fallback: false,
            socket_buffer_bytes: 1 << 20,
            timer_tick: Duration::from_millis(1),
        }
    }
}

/// Everything one completed session measured, handed to the sink the
/// moment the session resolves (all replies in, drain expired, or
/// shutdown).
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// The session's identity.
    pub key: SessionKey,
    /// One record per probe actually scheduled, in sequence order:
    /// `sent_at_ns` is the nominal `n · δ`, `rtt_ns` is quantized to the
    /// session's clock resolution, `None` = lost.
    pub records: Vec<StreamRecord>,
    /// Echo-host stamp per probe (ns on the echo host's clock), parallel
    /// to `records`.
    pub echoed_at_ns: Vec<Option<u64>>,
    /// Replies for already-recorded sequence numbers.
    pub duplicates: u64,
    /// Datagrams that decoded badly or carried an out-of-range probe
    /// number.
    pub decode_errors: u64,
    /// Sends deferred because the session's out-buffer was full.
    pub backpressure_deferrals: u64,
}

/// Aggregate reactor counters.
#[derive(Debug, Clone, Default)]
pub struct ReactorStats {
    /// Probes handed to the kernel.
    pub probes_sent: u64,
    /// Valid replies folded into sessions.
    pub replies_received: u64,
    /// `sendmmsg` submissions.
    pub batched_send_calls: u64,
    /// Datagrams sent over the per-datagram fallback rung.
    pub fallback_send_datagrams: u64,
    /// `recvmmsg` submissions.
    pub batched_recv_calls: u64,
    /// Datagrams received over the per-datagram fallback rung.
    pub fallback_recv_datagrams: u64,
    /// Datagrams that matched no session (undecodable on a shared lane, or
    /// an out-of-range session slot).
    pub stray_datagrams: u64,
    /// Sends deferred by out-buffer backpressure, summed over sessions.
    pub backpressure_deferrals: u64,
    /// Datagram sends that failed outright (counted, probe rides as lost).
    pub send_errors: u64,
}

/// What one reactor run looked like, beyond the per-session outcomes.
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// Sessions driven (all on this one core — the reactor is one thread).
    pub sessions: usize,
    /// Lane sockets used.
    pub lanes: usize,
    /// Wall time of the run in nanoseconds.
    pub wall_ns: u64,
    /// Timer-wheel fires over the run.
    pub timers_fired: u64,
    /// Timer-wheel lateness percentiles and max, microseconds.
    pub lateness_p50_us: u64,
    /// 90th percentile lateness (µs).
    pub lateness_p90_us: u64,
    /// 99th percentile lateness (µs).
    pub lateness_p99_us: u64,
    /// Worst lateness (µs).
    pub lateness_max_us: u64,
    /// Whether the batched syscalls were used (false = fallback ladder).
    pub used_batching: bool,
    /// Aggregate counters.
    pub stats: ReactorStats,
}

impl LiveReport {
    /// Aggregate probe rate over the run (sent packets per second).
    pub fn aggregate_pps(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.stats.probes_sent as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// Drive `specs` to completion on a freshly built reactor, feeding each
/// finished session's [`SessionOutcome`] to `sink`, and return the run
/// report. See [`Reactor::new`] for the panics on malformed specs and the
/// platform behavior (`Unsupported` where epoll does not exist).
pub fn run_sessions<F: FnMut(SessionOutcome)>(
    specs: Vec<SessionSpec>,
    config: &LiveConfig,
    sink: F,
) -> io::Result<LiveReport> {
    let (reactor, _handle) = Reactor::new(specs, config.clone())?;
    reactor.run(sink)
}

/// Quantize a measurement to a clock of `resolution_ns` (floor; 0 =
/// identity) — the same arithmetic `probenet-netdyn` applies, kept in sync
/// by the reactor-vs-thread differential test.
pub(crate) fn quantize_ns(ns: u64, resolution_ns: u64) -> u64 {
    match resolution_ns {
        0 => ns,
        r => ns / r * r,
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use probenet_wire::{ProbePacket, Timestamp48};
    use std::net::UdpSocket;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;

    /// A minimal in-test echo host (the real one lives in probenet-netdyn,
    /// which depends on this crate — tests here stay dependency-clean).
    struct MiniEcho {
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        echoed: Arc<AtomicU64>,
        handle: Option<JoinHandle<()>>,
    }

    impl MiniEcho {
        fn spawn() -> MiniEcho {
            let socket = UdpSocket::bind("127.0.0.1:0").expect("bind echo");
            socket
                .set_read_timeout(Some(Duration::from_millis(10)))
                .expect("timeout");
            let addr = socket.local_addr().expect("addr");
            let stop = Arc::new(AtomicBool::new(false));
            let echoed = Arc::new(AtomicU64::new(0));
            let handle = {
                let stop = Arc::clone(&stop);
                let echoed = Arc::clone(&echoed);
                std::thread::spawn(move || {
                    let mut buf = [0u8; 2048];
                    let mut stamp = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        if let Ok((len, peer)) = socket.recv_from(&mut buf) {
                            if let Ok(mut probe) = ProbePacket::decode(&buf[..len]) {
                                stamp += 1;
                                probe.echo_ts = Timestamp48::from_micros(stamp);
                                if socket.send_to(&probe.to_bytes(), peer).is_ok() {
                                    echoed.fetch_add(1, Ordering::SeqCst);
                                }
                            }
                        }
                    }
                })
            };
            MiniEcho {
                addr,
                stop,
                echoed,
                handle: Some(handle),
            }
        }

        fn echoed(&self) -> u64 {
            self.echoed.load(Ordering::SeqCst)
        }
    }

    impl Drop for MiniEcho {
        fn drop(&mut self) {
            self.stop.store(true, Ordering::SeqCst);
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
        }
    }

    fn specs(n: usize, target: SocketAddr, count: usize, interval_ms: u64) -> Vec<SessionSpec> {
        (0..n)
            .map(|i| SessionSpec {
                key: SessionKey::new("live-test", interval_ms, i as u64),
                target,
                interval: Duration::from_millis(interval_ms),
                count,
                start_offset: Duration::from_micros(137 * i as u64),
                clock_resolution_ns: 0,
            })
            .collect()
    }

    fn config() -> LiveConfig {
        LiveConfig {
            drain: Duration::from_millis(400),
            ..LiveConfig::default()
        }
    }

    #[test]
    fn multiplexed_sessions_complete_on_loopback() {
        let echo = MiniEcho::spawn();
        let specs = specs(24, echo.addr, 5, 4);
        let mut outcomes = Vec::new();
        let report = run_sessions(specs, &config(), |o| outcomes.push(o)).expect("run");
        assert_eq!(outcomes.len(), 24);
        for o in &outcomes {
            assert_eq!(o.records.len(), 5, "session {} incomplete", o.key);
            assert_eq!(o.decode_errors, 0);
            for (n, r) in o.records.iter().enumerate() {
                assert_eq!(r.seq, n as u64);
                assert_eq!(r.sent_at_ns, n as u64 * 4_000_000);
            }
        }
        let delivered: u64 = outcomes
            .iter()
            .flat_map(|o| o.records.iter())
            .filter(|r| r.rtt_ns.is_some())
            .count() as u64;
        assert_eq!(delivered, report.stats.replies_received);
        assert_eq!(report.stats.probes_sent, 24 * 5);
        assert!(echo.echoed() >= delivered);
        assert_eq!(report.sessions, 24);
        assert!(report.timers_fired >= 24 * 5);
    }

    #[test]
    fn fallback_ladder_produces_the_same_outcomes() {
        let echo = MiniEcho::spawn();
        let specs = specs(6, echo.addr, 4, 4);
        let cfg = LiveConfig {
            force_fallback: true,
            ..config()
        };
        let mut outcomes = Vec::new();
        let report = run_sessions(specs, &cfg, |o| outcomes.push(o)).expect("run");
        assert_eq!(outcomes.len(), 6);
        assert_eq!(report.stats.batched_send_calls, 0);
        assert_eq!(report.stats.batched_recv_calls, 0);
        assert_eq!(report.stats.fallback_send_datagrams, 6 * 4);
        for o in &outcomes {
            assert_eq!(o.records.len(), 4);
        }
    }

    #[test]
    fn single_session_lanes_use_plain_sequence_numbers() {
        let echo = MiniEcho::spawn();
        let mut specs = specs(2, echo.addr, 3, 3);
        specs.truncate(2);
        let cfg = LiveConfig {
            sessions_per_lane: 1,
            ..config()
        };
        let mut outcomes = Vec::new();
        let report = run_sessions(specs, &cfg, |o| outcomes.push(o)).expect("run");
        assert_eq!(report.lanes, 2);
        for o in &outcomes {
            assert_eq!(o.records.len(), 3);
            assert!(o.records.iter().all(|r| r.rtt_ns.is_some()));
        }
    }

    #[test]
    fn unanswered_probes_resolve_as_losses_after_drain() {
        // Target a bound-but-silent socket: everything is lost.
        let sink_socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let target = sink_socket.local_addr().expect("addr");
        let specs = specs(3, target, 4, 2);
        let cfg = LiveConfig {
            drain: Duration::from_millis(60),
            ..config()
        };
        let mut outcomes = Vec::new();
        run_sessions(specs, &cfg, |o| outcomes.push(o)).expect("run");
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            assert_eq!(o.records.len(), 4);
            assert!(o.records.iter().all(|r| r.rtt_ns.is_none()));
        }
    }

    #[test]
    fn shutdown_handle_stops_a_long_run_early() {
        let echo = MiniEcho::spawn();
        // 10-minute schedule: only a shutdown ends this before the test
        // harness times out.
        let specs = specs(4, echo.addr, 10_000, 60);
        let (reactor, handle) = Reactor::new(specs, config()).expect("reactor");
        let stopper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            handle.shutdown();
        });
        let mut outcomes = Vec::new();
        let report = reactor.run(|o| outcomes.push(o)).expect("run");
        stopper.join().expect("stopper");
        assert_eq!(outcomes.len(), 4);
        for o in &outcomes {
            assert!(o.records.len() < 10_000, "shutdown did not cut the run");
        }
        assert!(report.wall_ns < 5_000_000_000, "join was not bounded");
    }

    #[test]
    fn clock_resolution_quantizes_reported_rtts() {
        let echo = MiniEcho::spawn();
        let mut specs = specs(2, echo.addr, 4, 3);
        for s in &mut specs {
            s.clock_resolution_ns = 3_000_000;
        }
        let mut outcomes = Vec::new();
        run_sessions(specs, &config(), |o| outcomes.push(o)).expect("run");
        for o in &outcomes {
            for rtt in o.records.iter().filter_map(|r| r.rtt_ns) {
                assert_eq!(rtt % 3_000_000, 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "probe count")]
    fn tagged_lanes_reject_oversized_probe_counts() {
        let specs = vec![SessionSpec {
            key: SessionKey::new("too-big", 1, 0),
            target: "127.0.0.1:9".parse().expect("addr"),
            interval: Duration::from_millis(1),
            count: (1 << 20) + 1,
            start_offset: Duration::ZERO,
            clock_resolution_ns: 0,
        }];
        let _ = Reactor::new(specs, LiveConfig::default());
    }
}
