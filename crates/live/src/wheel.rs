//! A hashed timer wheel for per-session send deadlines, and the lateness
//! histogram that grades how close to schedule the wheel fires.
//!
//! The wheel hashes each armed deadline into `slots[tick % N]`; advancing
//! to tick `t` visits each slot between the cursor and `t` once and fires
//! the entries whose tick has come. Arming and firing are O(1) amortized —
//! the property that lets one reactor pace thousands of concurrent probe
//! schedules — and deadlines are quantized *up* to tick boundaries, so a
//! timer never fires before its deadline (early sends would compress the
//! probe stream the way late ones cannot be avoided).

/// Power-of-two-bucketed histogram of timer lateness (fire time minus
/// deadline). Lateness is the reactor's pacing-quality metric: the
/// `live_engine` bench block reports its percentiles.
#[derive(Debug, Clone)]
pub struct LatenessHistogram {
    /// `counts[i]` holds samples with `bit_length(lateness_us) == i`.
    counts: [u64; 40],
    total: u64,
    max_ns: u64,
}

impl Default for LatenessHistogram {
    fn default() -> Self {
        LatenessHistogram {
            counts: [0; 40],
            total: 0,
            max_ns: 0,
        }
    }
}

impl LatenessHistogram {
    /// Record one lateness sample in nanoseconds.
    pub fn record(&mut self, lateness_ns: u64) {
        let us = lateness_ns / 1_000;
        let bucket = (64 - us.leading_zeros()) as usize;
        self.counts[bucket.min(self.counts.len() - 1)] += 1;
        self.total += 1;
        self.max_ns = self.max_ns.max(lateness_ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The largest lateness seen, in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_ns / 1_000
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile sample
    /// (`0.0 < q <= 1.0`); exact max for the tail, 0 with no samples.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let threshold = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= threshold {
                // Bucket i holds values whose bit length is i: upper bound
                // 2^i - 1 µs (bucket 0 is exactly 0).
                let upper = if bucket == 0 { 0 } else { (1u64 << bucket) - 1 };
                return upper.min(self.max_us());
            }
        }
        self.max_us()
    }
}

struct TimerEntry {
    /// The exact deadline the caller asked for.
    deadline_ns: u64,
    /// The wheel tick it fires on (`ceil(deadline / tick)`).
    tick: u64,
    /// Opaque caller token handed back on fire.
    token: u64,
}

/// The hashed timer wheel.
pub struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    /// Deadlines armed for ticks the cursor already processed; they fire
    /// unconditionally on the next [`TimerWheel::advance`].
    overdue: Vec<TimerEntry>,
    tick_ns: u64,
    /// Next tick to be processed by [`TimerWheel::advance`].
    cursor: u64,
    armed: usize,
    fired: u64,
}

impl TimerWheel {
    /// A wheel with the given tick quantum and slot count.
    ///
    /// # Panics
    /// Panics if `tick_ns` or `slot_count` is zero.
    pub fn new(tick_ns: u64, slot_count: usize) -> TimerWheel {
        assert!(tick_ns > 0, "timer tick must be positive");
        assert!(slot_count > 0, "wheel needs at least one slot");
        TimerWheel {
            slots: (0..slot_count).map(|_| Vec::new()).collect(),
            overdue: Vec::new(),
            tick_ns,
            cursor: 0,
            armed: 0,
            fired: 0,
        }
    }

    /// The wheel's tick quantum in nanoseconds.
    pub fn tick_ns(&self) -> u64 {
        self.tick_ns
    }

    /// Timers currently armed.
    pub fn armed(&self) -> usize {
        self.armed
    }

    /// Timers fired over the wheel's lifetime.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Arm a timer for `deadline_ns`; `token` is handed back on fire.
    /// Deadlines already in the past fire on the next [`TimerWheel::advance`].
    pub fn arm(&mut self, deadline_ns: u64, token: u64) {
        let tick = deadline_ns.div_ceil(self.tick_ns);
        let entry = TimerEntry {
            deadline_ns,
            tick,
            token,
        };
        if tick < self.cursor {
            // The wheel already processed this tick (the cursor skips
            // ahead when it empties); park the entry where the next
            // advance fires it instead of waiting a full revolution.
            self.overdue.push(entry);
        } else {
            let slot = (tick % self.slots.len() as u64) as usize;
            self.slots[slot].push(entry);
        }
        self.armed += 1;
    }

    /// Fire every timer due by `now_ns`. The callback receives
    /// `(token, lateness_ns)` where lateness is how far past its deadline
    /// the timer fired (0 when on schedule).
    pub fn advance<F: FnMut(u64, u64)>(&mut self, now_ns: u64, mut fire: F) {
        for entry in std::mem::take(&mut self.overdue) {
            self.armed -= 1;
            self.fired += 1;
            fire(entry.token, now_ns.saturating_sub(entry.deadline_ns));
        }
        let target = now_ns / self.tick_ns;
        while self.cursor <= target {
            let slot = (self.cursor % self.slots.len() as u64) as usize;
            let mut i = 0;
            while i < self.slots[slot].len() {
                if self.slots[slot][i].tick <= target {
                    let entry = self.slots[slot].swap_remove(i);
                    self.armed -= 1;
                    self.fired += 1;
                    fire(entry.token, now_ns.saturating_sub(entry.deadline_ns));
                } else {
                    i += 1;
                }
            }
            self.cursor += 1;
            if self.armed == 0 {
                // Nothing left anywhere: skip the empty revolutions.
                self.cursor = target + 1;
                break;
            }
        }
    }

    /// The earliest armed deadline, if any — what the reactor turns into
    /// its poll timeout. O(armed); called once per sleep, not per event.
    pub fn next_deadline(&self) -> Option<u64> {
        self.slots
            .iter()
            .flat_map(|s| s.iter().map(|e| e.deadline_ns))
            .chain(self.overdue.iter().map(|e| e.deadline_ns))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn timers_fire_at_or_after_their_deadline() {
        let mut wheel = TimerWheel::new(MS, 64);
        wheel.arm(5 * MS, 1);
        wheel.arm(2 * MS, 2);
        wheel.arm(9 * MS, 3);

        let mut fired = Vec::new();
        wheel.advance(3 * MS, |t, late| fired.push((t, late)));
        assert_eq!(fired, vec![(2, MS)]); // deadline 2 ms, fired at 3 ms
        fired.clear();

        wheel.advance(10 * MS, |t, _| fired.push((t, 0)));
        let tokens: Vec<u64> = fired.iter().map(|f| f.0).collect();
        assert!(tokens.contains(&1) && tokens.contains(&3));
        assert_eq!(wheel.armed(), 0);
        assert_eq!(wheel.fired(), 3);
    }

    #[test]
    fn deadlines_quantize_up_never_early() {
        let mut wheel = TimerWheel::new(MS, 8);
        wheel.arm(MS + 1, 7); // lands on tick 2, not tick 1
        let mut fired = Vec::new();
        wheel.advance(MS, |t, _| fired.push(t));
        assert!(fired.is_empty(), "fired a timer before its deadline");
        wheel.advance(2 * MS, |t, _| fired.push(t));
        assert_eq!(fired, vec![7]);
    }

    #[test]
    fn far_future_deadlines_survive_wheel_revolutions() {
        let mut wheel = TimerWheel::new(MS, 4); // tiny wheel: 4 ms revolution
        wheel.arm(2 * MS, 1);
        wheel.arm(6 * MS, 2); // same slot as token 1, next revolution
        let mut fired = Vec::new();
        wheel.advance(3 * MS, |t, _| fired.push(t));
        assert_eq!(fired, vec![1], "revolution-2 entry fired a lap early");
        wheel.advance(7 * MS, |t, _| fired.push(t));
        assert_eq!(fired, vec![1, 2]);
    }

    #[test]
    fn past_deadlines_fire_on_next_advance() {
        let mut wheel = TimerWheel::new(MS, 16);
        wheel.advance(10 * MS, |_, _| {});
        wheel.arm(3 * MS, 5); // already past
        let mut fired = Vec::new();
        wheel.advance(10 * MS, |t, late| fired.push((t, late)));
        assert_eq!(fired, vec![(5, 7 * MS)]);
    }

    #[test]
    fn next_deadline_tracks_the_minimum() {
        let mut wheel = TimerWheel::new(MS, 16);
        assert_eq!(wheel.next_deadline(), None);
        wheel.arm(8 * MS, 1);
        wheel.arm(3 * MS, 2);
        assert_eq!(wheel.next_deadline(), Some(3 * MS));
        wheel.advance(4 * MS, |_, _| {});
        assert_eq!(wheel.next_deadline(), Some(8 * MS));
    }

    #[test]
    fn histogram_percentiles_bracket_the_samples() {
        let mut h = LatenessHistogram::default();
        for us in [0u64, 10, 20, 50, 100, 200, 400, 800, 1_600, 100_000] {
            h.record(us * 1_000);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max_us(), 100_000);
        assert!(h.quantile_us(0.5) >= 50);
        assert!(h.quantile_us(0.5) <= 255);
        assert_eq!(h.quantile_us(1.0), 100_000);
        // Empty histogram reports zeros.
        let empty = LatenessHistogram::default();
        assert_eq!(empty.quantile_us(0.99), 0);
    }
}
