//! The reactor: one thread, one epoll set, every session's state machine.
//!
//! ## Event loop shape
//!
//! ```text
//!   timer wheel ──(send deadlines)──▶ per-session out-buffers
//!        ▲                                   │ round-robin
//!        │ re-arm                            ▼
//!   epoll wait ◀──(poll timeout = next deadline)── lane sockets
//!        │ readable            │ writable  (sendmmsg → send_to ladder)
//!        ▼                     ▼
//!   recv_batch → demux by seq tag → session bookkeeping → early exit
//! ```
//!
//! Lanes are shared UDP sockets: up to 4096 sessions ride one socket, with
//! the probe's sequence number carrying a lane-local slot tag so replies
//! demultiplex without per-session fds. Control (shutdown) arrives over a
//! self-pipe registered in the same epoll set, so it bypasses the data
//! path entirely: a `LiveHandle::shutdown` from any thread wakes the loop
//! even when every socket is idle, and the join is bounded by one loop
//! iteration rather than a read timeout.

use crate::clock::MonoClock;
use crate::wheel::{LatenessHistogram, TimerWheel};
use crate::{quantize_ns, LiveConfig, LiveReport, ReactorStats, SessionOutcome, SessionSpec};
use probenet_stream::StreamRecord;
use probenet_wire::ProbePacket;
use rawpoll::{Epoll, Events, Interest, RecvMeta, WakeHandle, WakePipe};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Sessions sharing a lane tag probes by packing the lane-local slot into
/// the high bits of the 32-bit wire sequence, leaving this many low bits
/// for the probe number.
pub(crate) const SEQ_BITS: u32 = 20;
const SEQ_MASK: u32 = (1 << SEQ_BITS) - 1;
/// Slot tag width is `32 - SEQ_BITS` bits.
const MAX_LANE_SESSIONS: usize = 1 << (32 - SEQ_BITS);
/// Epoll token of the shutdown self-pipe (lane tokens count up from 0).
const WAKE_TOKEN: u64 = u64::MAX;
/// Receive scratch sized for any probe datagram (wire size is 72 bytes;
/// oversized strays are truncated and fail decode, which is fine).
const RECV_BUF_BYTES: usize = 2048;
/// Cap on consecutive receive submissions per readiness event so one
/// flooding lane cannot starve the timer wheel.
const MAX_RECV_ROUNDS: usize = 64;

fn send_token(session: usize) -> u64 {
    (session as u64) << 1
}

fn drain_token(session: usize) -> u64 {
    ((session as u64) << 1) | 1
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Probes still to schedule.
    Sending,
    /// All probes sent; lingering for stragglers until the drain timer.
    Draining,
    /// Resolved; outcome emitted (or queued for emission).
    Done,
}

struct Session {
    spec: SessionSpec,
    interval_ns: u64,
    offset_ns: u64,
    lane: usize,
    /// Lane-local slot, the demux tag carried in the sequence high bits.
    slot: u32,
    /// Probes scheduled so far (== number of records on completion).
    next_seq: usize,
    rtts: Vec<Option<u64>>,
    echoes: Vec<Option<u64>>,
    received: usize,
    duplicates: u64,
    decode_errors: u64,
    backpressure: u64,
    /// Encoded probes awaiting a socket slot, oldest first.
    out: VecDeque<Vec<u8>>,
    phase: Phase,
}

struct Lane {
    socket: UdpSocket,
    /// Global session indices; position == slot tag.
    sessions: Vec<usize>,
    /// Round-robin cursor so no session monopolizes the batch.
    rr: usize,
    /// Datagrams queued across this lane's session out-buffers.
    queued: usize,
    /// Whether the epoll registration currently includes write interest.
    wants_write: bool,
}

/// Cloneable shutdown control for a running [`Reactor`]. Works from any
/// thread: the stop flag is atomic and the self-pipe wakes the loop out of
/// its poll, so shutdown latency is one loop iteration, not a timeout.
#[derive(Debug, Clone)]
pub struct LiveHandle {
    stop: Arc<AtomicBool>,
    wake: WakeHandle,
}

impl LiveHandle {
    /// Ask the reactor to stop. In-flight sessions resolve with the
    /// records they have; the run call then returns.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake.wake();
    }
}

/// The single-threaded live probe engine. Build with [`Reactor::new`],
/// drive with [`Reactor::run`].
pub struct Reactor {
    config: LiveConfig,
    clock: MonoClock,
    epoll: Epoll,
    wake: WakePipe,
    stop: Arc<AtomicBool>,
    wheel: TimerWheel,
    lateness: LatenessHistogram,
    sessions: Vec<Session>,
    lanes: Vec<Lane>,
    /// Sessions not yet `Done`.
    active: usize,
    /// Resolved sessions awaiting sink emission.
    finished: VecDeque<usize>,
    stats: ReactorStats,
    use_batching: bool,
    /// Whether sequence numbers carry slot tags (sessions_per_lane > 1).
    tagged: bool,
    /// Run epoch in clock-ns; all deadlines are offsets from this.
    base_ns: u64,
    recv_bufs: Vec<Vec<u8>>,
    recv_meta: Vec<RecvMeta>,
}

impl Reactor {
    /// Build a reactor over `specs`: bind the lane sockets, register them
    /// (and the shutdown self-pipe) with epoll, and size the timer wheel.
    /// Returns the reactor and its shutdown handle.
    ///
    /// # Errors
    /// Socket or epoll setup failures; `Unsupported` on platforms without
    /// epoll.
    ///
    /// # Panics
    /// Panics on malformed specs: a zero interval, or a probe count that
    /// does not fit the sequence codec (2^20 probes/session on shared
    /// lanes, 2^32 on single-session lanes).
    pub fn new(specs: Vec<SessionSpec>, config: LiveConfig) -> io::Result<(Reactor, LiveHandle)> {
        let per_lane = config.sessions_per_lane.clamp(1, MAX_LANE_SESSIONS);
        let tagged = per_lane > 1;
        for spec in &specs {
            assert!(
                spec.interval.as_nanos() > 0,
                "probe interval must be positive"
            );
            if tagged {
                assert!(
                    spec.count <= 1 << SEQ_BITS,
                    "probe count {} exceeds the tagged-lane limit of {} (use sessions_per_lane = 1 for longer sessions)",
                    spec.count,
                    1u32 << SEQ_BITS,
                );
            } else {
                assert!(
                    u64::try_from(spec.count).unwrap_or(u64::MAX) <= u64::from(u32::MAX),
                    "probe count {} exceeds the 32-bit sequence space",
                    spec.count,
                );
            }
        }

        let epoll = Epoll::new()?;
        let wake = WakePipe::new()?;
        epoll.add(wake.read_fd(), WAKE_TOKEN, Interest::READ)?;

        let mut sessions: Vec<Session> = specs
            .into_iter()
            .map(|spec| Session {
                interval_ns: spec.interval.as_nanos() as u64,
                offset_ns: spec.start_offset.as_nanos() as u64,
                lane: 0,
                slot: 0,
                next_seq: 0,
                rtts: vec![None; spec.count],
                echoes: vec![None; spec.count],
                received: 0,
                duplicates: 0,
                decode_errors: 0,
                backpressure: 0,
                out: VecDeque::new(),
                phase: Phase::Sending,
                spec,
            })
            .collect();

        // Lanes are homogeneous in address family (one socket cannot reach
        // both); chunk each family's sessions in spec order so lane
        // membership is deterministic.
        let v4: Vec<usize> = (0..sessions.len())
            .filter(|&i| sessions[i].spec.target.is_ipv4())
            .collect();
        let v6: Vec<usize> = (0..sessions.len())
            .filter(|&i| !sessions[i].spec.target.is_ipv4())
            .collect();
        let mut lanes = Vec::new();
        for (members, bind_addr) in [(v4, "0.0.0.0:0"), (v6, "[::]:0")] {
            for chunk in members.chunks(per_lane) {
                let socket = UdpSocket::bind(bind_addr)?;
                socket.set_nonblocking(true)?;
                if config.socket_buffer_bytes > 0 {
                    // Best effort: the kernel clamps to its rmem/wmem caps.
                    let _ = rawpoll::set_socket_buffers(
                        socket.as_raw_fd(),
                        config.socket_buffer_bytes,
                        config.socket_buffer_bytes,
                    );
                }
                let lane_idx = lanes.len();
                epoll.add(socket.as_raw_fd(), lane_idx as u64, Interest::READ)?;
                for (slot, &session_idx) in chunk.iter().enumerate() {
                    sessions[session_idx].lane = lane_idx;
                    sessions[session_idx].slot =
                        u32::try_from(slot).expect("slot bounded by MAX_LANE_SESSIONS");
                }
                lanes.push(Lane {
                    socket,
                    sessions: chunk.to_vec(),
                    rr: 0,
                    queued: 0,
                    wants_write: false,
                });
            }
        }

        let batch = config.batch.max(1);
        let tick_ns = (config.timer_tick.as_nanos() as u64).max(1);
        let slots = (sessions.len() * 2).next_power_of_two().clamp(64, 4096);
        let stop = Arc::new(AtomicBool::new(false));
        let handle = LiveHandle {
            stop: Arc::clone(&stop),
            wake: wake.handle(),
        };
        let active = sessions.len();
        let use_batching = !config.force_fallback && rawpoll::batching_available();
        let reactor = Reactor {
            config,
            clock: MonoClock::start(),
            epoll,
            wake,
            stop,
            wheel: TimerWheel::new(tick_ns, slots),
            lateness: LatenessHistogram::default(),
            sessions,
            lanes,
            active,
            finished: VecDeque::new(),
            stats: ReactorStats::default(),
            use_batching,
            tagged,
            base_ns: 0,
            recv_bufs: (0..batch).map(|_| vec![0u8; RECV_BUF_BYTES]).collect(),
            recv_meta: vec![RecvMeta::default(); batch],
        };
        Ok((reactor, handle))
    }

    /// Drive every session to completion (or shutdown), handing each
    /// resolved session's [`SessionOutcome`] to `sink` as it finishes, and
    /// return the run report.
    ///
    /// # Errors
    /// Only on epoll failures; per-datagram send errors are counted in
    /// [`ReactorStats::send_errors`] and ride as losses instead.
    pub fn run<F: FnMut(SessionOutcome)>(mut self, mut sink: F) -> io::Result<LiveReport> {
        self.base_ns = self.clock.now_ns();
        for i in 0..self.sessions.len() {
            if self.sessions[i].spec.count == 0 {
                self.finish_session(i);
            } else {
                let deadline = self.base_ns + self.sessions[i].offset_ns;
                self.wheel.arm(deadline, send_token(i));
            }
        }

        let mut events = Events::with_capacity(64);
        loop {
            self.drain_finished(&mut sink);
            if self.active == 0 {
                break;
            }
            if self.stop.load(Ordering::SeqCst) {
                self.abort_all();
                self.drain_finished(&mut sink);
                break;
            }
            let now = self.clock.now_ns();
            self.advance_timers(now);
            self.pump_all_lanes();
            self.drain_finished(&mut sink);
            if self.active == 0 {
                break;
            }
            let timeout = self.poll_timeout_ms(self.clock.now_ns());
            self.epoll.wait(&mut events, timeout)?;
            for event in events.iter() {
                if event.token == WAKE_TOKEN {
                    self.wake.drain();
                    continue;
                }
                let lane = usize::try_from(event.token).expect("lane tokens fit usize");
                if event.readable || event.error {
                    self.recv_lane(lane);
                }
                if event.writable {
                    self.pump_lane(lane);
                }
            }
        }

        let wall_ns = self.clock.now_ns().saturating_sub(self.base_ns);
        let stats = self.stats.clone();
        Ok(LiveReport {
            sessions: self.sessions.len(),
            lanes: self.lanes.len(),
            wall_ns,
            timers_fired: self.wheel.fired(),
            lateness_p50_us: self.lateness.quantile_us(0.50),
            lateness_p90_us: self.lateness.quantile_us(0.90),
            lateness_p99_us: self.lateness.quantile_us(0.99),
            lateness_max_us: self.lateness.max_us(),
            used_batching: stats.batched_send_calls + stats.batched_recv_calls > 0,
            stats,
        })
    }

    /// Poll timeout bridging to the next timer deadline (capped at 1 s;
    /// 200 ms heartbeat when nothing is armed).
    fn poll_timeout_ms(&self, now: u64) -> i32 {
        match self.wheel.next_deadline() {
            Some(deadline) => {
                let ms = deadline.saturating_sub(now).div_ceil(1_000_000).min(1_000);
                i32::try_from(ms).expect("timeout capped at 1000")
            }
            None => 200,
        }
    }

    fn advance_timers(&mut self, now: u64) {
        let mut due: Vec<(u64, u64)> = Vec::new();
        self.wheel
            .advance(now, |token, lateness| due.push((token, lateness)));
        for (token, lateness) in due {
            let idx = usize::try_from(token >> 1).expect("session tokens fit usize");
            if token & 1 == 0 {
                // Only send timers grade pacing; drain timers are coarse
                // one-shots whose lateness is meaningless.
                self.lateness.record(lateness);
                self.fire_send(idx, now);
            } else {
                self.fire_drain(idx);
            }
        }
    }

    /// A session's send deadline came due: encode the probe into its
    /// out-buffer (or defer one tick under backpressure) and arm the next.
    fn fire_send(&mut self, idx: usize, now: u64) {
        let tick_ns = self.wheel.tick_ns();
        let session = &mut self.sessions[idx];
        if session.phase != Phase::Sending {
            return;
        }
        if session.out.len() >= self.config.out_buffer_capacity {
            // Explicit backpressure: the probe is deferred, never dropped;
            // the deferral is visible in the outcome and the stats.
            session.backpressure += 1;
            self.stats.backpressure_deferrals += 1;
            self.wheel.arm(now + tick_ns, send_token(idx));
            return;
        }
        let n = session.next_seq;
        let probe_no = u32::try_from(n).expect("count validated against the seq codec");
        let wire_seq = if self.tagged {
            (session.slot << SEQ_BITS) | probe_no
        } else {
            probe_no
        };
        let probe = ProbePacket::outgoing(wire_seq, self.clock.stamp());
        session.out.push_back(probe.to_bytes());
        session.next_seq += 1;
        self.lanes[session.lane].queued += 1;
        if session.next_seq < session.spec.count {
            let deadline =
                self.base_ns + session.offset_ns + session.interval_ns * session.next_seq as u64;
            self.wheel.arm(deadline, send_token(idx));
        }
    }

    /// The post-send linger expired: unresolved probes are now losses.
    fn fire_drain(&mut self, idx: usize) {
        if self.sessions[idx].phase != Phase::Draining {
            return;
        }
        // Sweep the lane once more before declaring losses: if the loop
        // stalled past the drain deadline, replies may already sit in the
        // kernel buffer, and those are deliveries, not losses.
        self.recv_lane(self.sessions[idx].lane);
        if self.sessions[idx].phase == Phase::Draining {
            self.finish_session(idx);
        }
    }

    fn finish_session(&mut self, idx: usize) {
        let session = &mut self.sessions[idx];
        if session.phase == Phase::Done {
            return;
        }
        session.phase = Phase::Done;
        self.active -= 1;
        self.finished.push_back(idx);
    }

    /// Shutdown path: resolve every live session with what it has.
    fn abort_all(&mut self) {
        for idx in 0..self.sessions.len() {
            self.finish_session(idx);
        }
    }

    fn drain_finished<F: FnMut(SessionOutcome)>(&mut self, sink: &mut F) {
        while let Some(idx) = self.finished.pop_front() {
            let session = &self.sessions[idx];
            let resolution = session.spec.clock_resolution_ns;
            let records: Vec<StreamRecord> = (0..session.next_seq)
                .map(|n| StreamRecord {
                    seq: n as u64,
                    sent_at_ns: session.interval_ns * n as u64,
                    rtt_ns: session.rtts[n].map(|ns| quantize_ns(ns, resolution)),
                })
                .collect();
            sink(SessionOutcome {
                key: session.spec.key.clone(),
                records,
                echoed_at_ns: session.echoes[..session.next_seq].to_vec(),
                duplicates: session.duplicates,
                decode_errors: session.decode_errors,
                backpressure_deferrals: session.backpressure,
            });
        }
    }

    fn pump_all_lanes(&mut self) {
        for lane in 0..self.lanes.len() {
            if self.lanes[lane].queued > 0 || self.lanes[lane].wants_write {
                self.pump_lane(lane);
            }
        }
    }

    /// Flush a lane's queued probes: round-robin across its sessions into
    /// `sendmmsg` batches, stepping down the fallback ladder
    /// (`sendmmsg` → per-datagram `send_to`) as needed. On a full socket
    /// buffer the leftovers are re-queued and write interest is armed.
    fn pump_lane(&mut self, lane_idx: usize) {
        let now = self.clock.now_ns();
        let drain_ns = self.config.drain.as_nanos() as u64;
        let batch = self.recv_bufs.len();
        let mut blocked = false;

        while self.lanes[lane_idx].queued > 0 && !blocked {
            // Pop up to one batch, round-robin so no session starves.
            let mut items: Vec<(usize, Vec<u8>)> = Vec::with_capacity(batch);
            {
                let lane = &mut self.lanes[lane_idx];
                let members = lane.sessions.len();
                let mut scanned = 0;
                while items.len() < batch && lane.queued > 0 && scanned < members {
                    let idx = lane.sessions[lane.rr % members];
                    lane.rr = (lane.rr + 1) % members;
                    match self.sessions[idx].out.pop_front() {
                        Some(bytes) => {
                            lane.queued -= 1;
                            scanned = 0;
                            items.push((idx, bytes));
                        }
                        None => scanned += 1,
                    }
                }
            }
            if items.is_empty() {
                break;
            }

            let fd = self.lanes[lane_idx].socket.as_raw_fd();
            let accepted = if self.use_batching {
                let msgs: Vec<(&[u8], Option<SocketAddr>)> = items
                    .iter()
                    .map(|(idx, bytes)| (bytes.as_slice(), Some(self.sessions[*idx].spec.target)))
                    .collect();
                match rawpoll::send_batch(fd, &msgs) {
                    Ok(n) => {
                        self.stats.batched_send_calls += 1;
                        blocked = n < items.len();
                        n
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        blocked = true;
                        0
                    }
                    Err(e) if e.kind() == io::ErrorKind::Unsupported => {
                        // Step down the ladder for the rest of the run.
                        self.use_batching = false;
                        self.send_fallback(lane_idx, &items, &mut blocked)
                    }
                    // Batch submission failed outright; retry this batch
                    // per-datagram so a poisoned message cannot wedge the
                    // whole lane.
                    Err(_) => self.send_fallback(lane_idx, &items, &mut blocked),
                }
            } else {
                self.send_fallback(lane_idx, &items, &mut blocked)
            };

            // Requeue what the kernel did not take, preserving order.
            for (idx, bytes) in items.drain(accepted..).rev() {
                self.sessions[idx].out.push_front(bytes);
                self.lanes[lane_idx].queued += 1;
            }
            for (idx, _) in &items {
                self.stats.probes_sent += 1;
                self.after_departure(*idx, now + drain_ns);
            }
        }

        self.update_write_interest(lane_idx);
    }

    /// Per-datagram rung of the send ladder. Returns how many of `items`
    /// were consumed (sent or failed-and-counted); `blocked` is set when
    /// the socket buffer filled.
    fn send_fallback(
        &mut self,
        lane_idx: usize,
        items: &[(usize, Vec<u8>)],
        blocked: &mut bool,
    ) -> usize {
        let mut consumed = 0;
        for (idx, bytes) in items {
            let target = self.sessions[*idx].spec.target;
            match self.lanes[lane_idx].socket.send_to(bytes, target) {
                Ok(_) => {
                    self.stats.fallback_send_datagrams += 1;
                    consumed += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    *blocked = true;
                    break;
                }
                Err(_) => {
                    // The datagram is gone either way; count it and let
                    // the probe ride as a loss rather than wedging.
                    self.stats.send_errors += 1;
                    consumed += 1;
                }
            }
        }
        consumed
    }

    /// A probe left the out-buffer: if it was the session's last, begin
    /// the drain linger.
    fn after_departure(&mut self, idx: usize, drain_deadline: u64) {
        let session = &self.sessions[idx];
        if session.phase == Phase::Sending
            && session.next_seq == session.spec.count
            && session.out.is_empty()
        {
            self.sessions[idx].phase = Phase::Draining;
            self.wheel.arm(drain_deadline, drain_token(idx));
        }
    }

    fn update_write_interest(&mut self, lane_idx: usize) {
        let lane = &mut self.lanes[lane_idx];
        let wants = lane.queued > 0;
        if wants != lane.wants_write {
            let interest = if wants {
                Interest::READ_WRITE
            } else {
                Interest::READ
            };
            if self
                .epoll
                .modify(lane.socket.as_raw_fd(), lane_idx as u64, interest)
                .is_ok()
            {
                lane.wants_write = wants;
            }
        }
    }

    /// Drain a readable lane: `recvmmsg` batches (with the `recv_from`
    /// fallback rung), demuxing each datagram to its session.
    fn recv_lane(&mut self, lane_idx: usize) {
        let mut bufs = std::mem::take(&mut self.recv_bufs);
        let mut meta = std::mem::take(&mut self.recv_meta);
        let fd = self.lanes[lane_idx].socket.as_raw_fd();

        for _ in 0..MAX_RECV_ROUNDS {
            if self.use_batching {
                let received = {
                    let mut slices: Vec<&mut [u8]> =
                        bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
                    rawpoll::recv_batch(fd, &mut slices, &mut meta)
                };
                match received {
                    Ok(0) => break,
                    Ok(n) => {
                        self.stats.batched_recv_calls += 1;
                        for i in 0..n {
                            let len = meta[i].len.min(bufs[i].len());
                            self.on_datagram(lane_idx, &bufs[i][..len]);
                        }
                        if n < bufs.len() {
                            break; // queue drained
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Unsupported => {
                        self.use_batching = false;
                    }
                    Err(_) => break,
                }
            } else {
                match self.lanes[lane_idx].socket.recv_from(&mut bufs[0]) {
                    Ok((len, _)) => {
                        self.stats.fallback_recv_datagrams += 1;
                        let datagram = std::mem::take(&mut bufs[0]);
                        self.on_datagram(lane_idx, &datagram[..len.min(datagram.len())]);
                        bufs[0] = datagram;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        self.recv_bufs = bufs;
        self.recv_meta = meta;
    }

    /// Fold one received datagram into its session's bookkeeping.
    fn on_datagram(&mut self, lane_idx: usize, bytes: &[u8]) {
        let dest_ts = self.clock.stamp();
        let mut probe = match ProbePacket::decode(bytes) {
            Ok(p) => p,
            Err(_) => {
                // On a dedicated lane the sender is unambiguous, so the
                // error is attributable (matching the thread-per-session
                // prober); on a shared lane it is a stray.
                if self.lanes[lane_idx].sessions.len() == 1 {
                    let idx = self.lanes[lane_idx].sessions[0];
                    self.sessions[idx].decode_errors += 1;
                } else {
                    self.stats.stray_datagrams += 1;
                }
                return;
            }
        };
        probe.dest_ts = dest_ts;
        let (slot, n) = if self.tagged {
            (probe.seq >> SEQ_BITS, probe.seq & SEQ_MASK)
        } else {
            (0, probe.seq)
        };
        let slot = usize::try_from(slot).expect("slot tag fits usize");
        let Some(&idx) = self.lanes[lane_idx].sessions.get(slot) else {
            self.stats.stray_datagrams += 1;
            return;
        };
        let session = &mut self.sessions[idx];
        let n = usize::try_from(n).expect("probe number fits usize");
        if n >= session.rtts.len() {
            // Same accounting as the thread prober: an in-format reply
            // naming a probe that was never sent is a decode error.
            session.decode_errors += 1;
            return;
        }
        if session.phase == Phase::Done || session.rtts[n].is_some() {
            session.duplicates += 1;
            return;
        }
        session.rtts[n] = Some(probe.rtt_micros() * 1_000);
        session.echoes[n] = Some(probe.echo_ts.as_micros() * 1_000);
        session.received += 1;
        self.stats.replies_received += 1;
        // Early exit: every probe answered, no need to sit out the drain.
        if session.received == session.spec.count
            && session.next_seq == session.spec.count
            && session.out.is_empty()
        {
            self.finish_session(idx);
        }
    }
}
