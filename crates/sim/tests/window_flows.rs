//! Closed-loop window flows: ack-clocking, self-limitation, and the
//! ACK-compression dynamics of two-way traffic (the paper's refs [28, 29]).

use probenet_sim::{
    BufferLimit, Direction, Engine, FlowClass, LinkSpec, Path, SimDuration, SimTime, WindowFlow,
};

/// A two-hop path with a clear interior bottleneck.
fn bottleneck_path(mu: u64, prop_ms: u64) -> Path {
    Path::new(
        vec!["src".into(), "router".into(), "dst".into()],
        vec![
            LinkSpec::new(10_000_000, SimDuration::from_micros(100)),
            LinkSpec::new(mu, SimDuration::from_millis(prop_ms))
                .with_buffer(BufferLimit::Packets(64)),
        ],
    )
}

fn flow(data: u32, ack: u32, window: usize, reverse: bool) -> WindowFlow {
    WindowFlow::fixed(data, ack, window, reverse)
}

#[test]
fn window_limited_throughput_matches_w_over_rtt() {
    // Small window, fast bottleneck: no queueing, so goodput = W / RTT.
    let path = bottleneck_path(10_000_000, 20); // base RTT ≈ 40 ms
    let base_rtt = path.base_rtt(512).as_secs_f64();
    let mut e = Engine::new(path, 1);
    e.add_window_flow(flow(512, 40, 4, false), SimTime::ZERO);
    e.run_until(SimTime::from_secs(30));
    let delivered = e
        .deliveries()
        .iter()
        .filter(|d| d.class == FlowClass::Window)
        .count();
    let rate = delivered as f64 / 30.0;
    // RTT of the data+ack cycle is slightly below base_rtt(512) because the
    // return leg carries a 40-byte ACK; the bound is loose enough for that.
    let want = 4.0 / base_rtt;
    assert!(
        (rate - want).abs() / want < 0.1,
        "rate {rate:.1}/s vs W/RTT {want:.1}/s"
    );
}

#[test]
fn large_window_saturates_the_bottleneck() {
    // Window >> bandwidth-delay product: deliveries clock at the bottleneck
    // service rate of the data packets.
    let mu = 128_000u64;
    let mut e = Engine::new(bottleneck_path(mu, 10), 2);
    e.add_window_flow(flow(512, 40, 30, false), SimTime::ZERO);
    e.run_until(SimTime::from_secs(60));
    let times: Vec<SimTime> = e
        .deliveries()
        .iter()
        .filter(|d| d.class == FlowClass::Window)
        .map(|d| d.delivered_at)
        .collect();
    assert!(times.len() > 100);
    // Steady-state delivery spacing = data service time = 32 ms.
    let service = SimDuration::transmission(512, mu);
    let tail = &times[times.len() / 2..];
    for w in tail.windows(2) {
        assert_eq!(w[1] - w[0], service, "ack-clocked spacing broke");
    }
    // Utilization of the bottleneck approaches 1.
    let util = e.port(1, Direction::Outbound).stats.utilization(e.now());
    assert!(util > 0.95, "bottleneck utilization {util}");
}

#[test]
fn window_flow_is_self_limiting() {
    // However large the window, the flow keeps at most `window` packets in
    // the network: the bottleneck queue occupancy is bounded by it.
    let mut e = Engine::new(bottleneck_path(64_000, 5), 3);
    let w = 12usize;
    e.add_window_flow(flow(512, 40, w, false), SimTime::ZERO);
    e.run_until(SimTime::from_secs(120));
    let max_occ = e.port(1, Direction::Outbound).stats.max_occupancy;
    assert!(max_occ <= w, "occupancy {max_occ} exceeds the window {w}");
    // And nothing is ever dropped: closed loops cannot overflow a buffer
    // larger than the window.
    assert!(e.drops().is_empty());
}

#[test]
fn reverse_flow_delivers_at_the_far_end() {
    let mut e = Engine::new(bottleneck_path(1_000_000, 10), 4);
    let id = e.add_window_flow(flow(512, 40, 3, true), SimTime::ZERO);
    e.run_until(SimTime::from_secs(10));
    let count = e
        .deliveries()
        .iter()
        .filter(|d| d.class == FlowClass::Window && d.flow == id)
        .count();
    assert!(count > 100, "reverse flow delivered {count}");
    // The reverse flow's data loads the *inbound* bottleneck queue.
    let inbound_served = e.port(1, Direction::Inbound).stats.bytes_served;
    let outbound_served = e.port(1, Direction::Outbound).stats.bytes_served;
    assert!(
        inbound_served > 5 * outbound_served,
        "inbound {inbound_served} vs outbound {outbound_served}"
    );
}

#[test]
fn two_way_traffic_compresses_acks() {
    // The [29] experiment: a forward transfer's ACKs share the inbound
    // bottleneck queue with a reverse transfer's data packets. ACKs queue
    // behind 512-byte data packets and drain back-to-back — ACK
    // compression — so the forward sender receives them in bursts.
    let measure_ack_gaps = |with_reverse: bool| {
        let mut e = Engine::new(bottleneck_path(128_000, 10), 5);
        let fwd = e.add_window_flow(flow(512, 40, 6, false), SimTime::ZERO);
        if with_reverse {
            e.add_window_flow(flow(512, 40, 6, true), SimTime::ZERO);
        }
        e.run_until(SimTime::from_secs(120));
        let times: Vec<SimTime> = e
            .deliveries()
            .iter()
            .filter(|d| d.class == FlowClass::Window && d.flow == fwd)
            .map(|d| d.delivered_at)
            .collect();
        assert!(times.len() > 50, "too few forward deliveries");
        // Fraction of consecutive ACK arrivals spaced at (nearly) the ACK
        // service time — i.e. compressed back-to-back.
        let ack_service = SimDuration::transmission(40, 128_000);
        let compressed = times
            .windows(2)
            .filter(|w| w[1] - w[0] <= ack_service * 2)
            .count();
        compressed as f64 / (times.len() - 1) as f64
    };
    let without = measure_ack_gaps(false);
    let with = measure_ack_gaps(true);
    assert!(
        with > without + 0.2,
        "ACK compression missing: {with:.3} with reverse traffic vs {without:.3} without"
    );
}

#[test]
fn probes_see_the_window_flows_as_cross_traffic() {
    // Probing through a path carrying a bulk transfer: the probe RTTs
    // inflate and fluctuate, and everything stays conserved.
    let mut e = Engine::new(bottleneck_path(128_000, 10), 6);
    e.add_window_flow(flow(512, 40, 8, false), SimTime::ZERO);
    let n = 500u64;
    for k in 0..n {
        e.inject_probe(SimTime::from_millis(100 * k), 72, k);
    }
    e.run_until(SimTime::from_secs(70));
    let probe_rtts: Vec<f64> = e
        .probe_deliveries()
        .map(|d| d.rtt().as_millis_f64())
        .collect();
    let dropped = e
        .drops()
        .iter()
        .filter(|d| d.class == FlowClass::Probe)
        .count();
    assert_eq!(probe_rtts.len() + dropped, n as usize);
    let base = bottleneck_path(128_000, 10).base_rtt(72).as_millis_f64();
    let mean = probe_rtts.iter().sum::<f64>() / probe_rtts.len() as f64;
    assert!(
        mean > base + 50.0,
        "probes unaffected by the transfer: mean {mean} vs base {base}"
    );
}

#[test]
fn flow_sequences_are_contiguous() {
    let mut e = Engine::new(bottleneck_path(1_000_000, 5), 7);
    let id = e.add_window_flow(flow(512, 40, 4, false), SimTime::ZERO);
    e.run_until(SimTime::from_secs(20));
    let mut seqs: Vec<u64> = e
        .deliveries()
        .iter()
        .filter(|d| d.flow == id)
        .map(|d| d.seq)
        .collect();
    seqs.sort_unstable();
    for (i, &s) in seqs.iter().enumerate() {
        assert_eq!(s, i as u64, "sequence gap in a lossless closed loop");
    }
}

#[test]
fn aimd_grows_to_the_cap_on_a_clean_path() {
    // No losses: additive increase carries cwnd from 2 to the cap.
    let mut e = Engine::new(bottleneck_path(10_000_000, 10), 8);
    let id = e.add_window_flow(WindowFlow::aimd(512, 40, 20, false), SimTime::ZERO);
    assert!(e.flow_cwnd(id) <= 2.0);
    e.run_until(SimTime::from_secs(120));
    assert!(
        (e.flow_cwnd(id) - 20.0).abs() < 1.0,
        "cwnd {} should reach the 20-packet cap",
        e.flow_cwnd(id)
    );
    assert!(e.drops().is_empty());
}

#[test]
fn aimd_halves_on_loss_and_oscillates() {
    // A tight bottleneck buffer forces periodic losses: the window saws
    // between ~max/2 and max instead of camping at the cap.
    let path = Path::new(
        vec!["src".into(), "router".into(), "dst".into()],
        vec![
            LinkSpec::new(10_000_000, SimDuration::from_micros(100)),
            LinkSpec::new(500_000, SimDuration::from_millis(20))
                .with_buffer(BufferLimit::Packets(6)),
        ],
    );
    let mut e = Engine::new(path, 9);
    let id = e.add_window_flow(WindowFlow::aimd(512, 40, 64, false), SimTime::ZERO);
    // Sample the window over time.
    let mut samples = Vec::new();
    for step in 1..=600u64 {
        e.run_until(SimTime::from_millis(100 * step));
        samples.push(e.flow_cwnd(id));
    }
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    let min_after_warmup = samples[100..].iter().copied().fold(f64::INFINITY, f64::min);
    assert!(
        !e.drops().is_empty(),
        "the 6-slot buffer must overflow under a 64-cap AIMD flow"
    );
    assert!(
        max > 2.0 * min_after_warmup,
        "no sawtooth: max {max} vs min {min_after_warmup}"
    );
    assert!(max < 64.0, "losses must stop the window before the cap");
}

#[test]
fn aimd_loses_far_less_than_fixed_at_the_same_cap() {
    // The point of congestion control: same max window, same bottleneck —
    // the responsive flow backs off instead of hammering the full buffer.
    let run = |spec: WindowFlow| {
        let path = Path::new(
            vec!["src".into(), "router".into(), "dst".into()],
            vec![
                LinkSpec::new(10_000_000, SimDuration::from_micros(100)),
                LinkSpec::new(500_000, SimDuration::from_millis(20))
                    .with_buffer(BufferLimit::Packets(8)),
            ],
        );
        let mut e = Engine::new(path, 10);
        e.add_window_flow(spec, SimTime::ZERO);
        e.run_until(SimTime::from_secs(60));
        let delivered = e
            .deliveries()
            .iter()
            .filter(|d| d.class == FlowClass::Window)
            .count();
        (e.drops().len(), delivered)
    };
    let (drops_fixed, done_fixed) = run(WindowFlow::fixed(512, 40, 40, false));
    let (drops_aimd, done_aimd) = run(WindowFlow::aimd(512, 40, 40, false));
    assert!(
        drops_aimd * 5 < drops_fixed,
        "AIMD drops {drops_aimd} vs fixed {drops_fixed}"
    );
    // Throughput is bottleneck-limited either way: within 20%.
    assert!(
        (done_aimd as f64) > 0.8 * done_fixed as f64,
        "AIMD throughput {done_aimd} vs fixed {done_fixed}"
    );
}

#[test]
fn aimd_in_flight_never_exceeds_the_cap() {
    let path = bottleneck_path(128_000, 10);
    let mut e = Engine::new(path.clone(), 11);
    e.add_window_flow(WindowFlow::aimd(512, 40, 12, false), SimTime::ZERO);
    e.run_until(SimTime::from_secs(60));
    // The bottleneck queue can never hold more than the cap.
    let max_occ = e.port(1, Direction::Outbound).stats.max_occupancy;
    assert!(max_occ <= 12, "occupancy {max_occ} above the 12-packet cap");
}

#[test]
fn red_early_drops_flow_through_the_engine() {
    use probenet_sim::{DropReason, QueuePolicy};
    // Saturate a RED bottleneck with probes: early drops must appear in the
    // engine's drop records with their own reason, before overflow.
    let path = Path::new(
        vec!["src".into(), "dst".into()],
        vec![LinkSpec::new(128_000, SimDuration::from_millis(5))
            .with_buffer(BufferLimit::Packets(40))
            .with_policy(QueuePolicy::Red {
                min_threshold: 4.0,
                max_threshold: 12.0,
                max_probability: 0.1,
                weight: 0.1,
            })],
    );
    let mut e = Engine::new(path, 3);
    for n in 0..2000u64 {
        // Twice the service rate: sustained overload.
        e.inject_probe(SimTime::from_micros(2250 * n), 72, n);
    }
    e.run();
    let early = e
        .drops()
        .iter()
        .filter(|d| d.reason == DropReason::EarlyDrop)
        .count();
    assert!(early > 50, "RED produced only {early} early drops");
    // The port's own counter agrees.
    assert_eq!(
        e.port(0, Direction::Outbound).stats.early_drops as usize,
        early
    );
    // Conservation still holds.
    let delivered = e.probe_deliveries().count();
    assert_eq!(delivered + e.drops().len(), 2000);
}
