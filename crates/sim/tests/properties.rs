//! Property tests of simulator invariants under randomized scenarios.

use proptest::prelude::*;

use probenet_sim::{
    BufferLimit, Direction, DropReason, Engine, FlowClass, GilbertElliott, ImpairmentSpec,
    LinkSpec, Path, SimDuration, SimTime, TraceKind,
};

/// Build a random linear path from proptest-chosen hop parameters.
fn path_from(hops: &[(u64, u64, usize)]) -> Path {
    let nodes = (0..=hops.len()).map(|i| format!("n{i}")).collect();
    let links = hops
        .iter()
        .map(|&(bw_kbps, prop_us, buf)| {
            LinkSpec::new(bw_kbps.max(8) * 1000, SimDuration::from_micros(prop_us))
                .with_buffer(BufferLimit::Packets(buf.max(1)))
        })
        .collect();
    Path::new(nodes, links)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every probe is either delivered or dropped — never both, never lost
    /// track of — across random topologies and schedules.
    #[test]
    fn prop_probe_conservation(
        hops in proptest::collection::vec((8u64..2000, 0u64..20_000, 1usize..40), 1..6),
        n_probes in 1usize..200,
        spacing_us in 100u64..50_000,
    ) {
        let mut engine = Engine::new(path_from(&hops), 42);
        for n in 0..n_probes as u64 {
            engine.inject_probe(
                SimTime::from_micros(spacing_us * n),
                72,
                n,
            );
        }
        engine.run();
        let delivered: Vec<u64> = engine.probe_deliveries().map(|d| d.seq).collect();
        let dropped: Vec<u64> = engine
            .drops()
            .iter()
            .filter(|d| d.class == FlowClass::Probe)
            .map(|d| d.seq)
            .collect();
        prop_assert_eq!(delivered.len() + dropped.len(), n_probes);
        let mut all: Vec<u64> = delivered.iter().chain(dropped.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), n_probes, "a probe was double-counted");
    }

    /// RTTs never undercut the physical floor of the path.
    #[test]
    fn prop_rtt_at_least_base(
        hops in proptest::collection::vec((8u64..2000, 0u64..20_000, 1usize..40), 1..6),
        n_probes in 1usize..150,
        spacing_us in 1_000u64..100_000,
    ) {
        let path = path_from(&hops);
        let base = path.base_rtt(72);
        let mut engine = Engine::new(path, 1);
        for n in 0..n_probes as u64 {
            engine.inject_probe(SimTime::from_micros(spacing_us * n), 72, n);
        }
        engine.run();
        for d in engine.probe_deliveries() {
            prop_assert!(d.rtt() >= base, "rtt {:?} below base {:?}", d.rtt(), base);
        }
    }

    /// FIFO paths cannot reorder: probes return in send order.
    #[test]
    fn prop_fifo_no_reordering(
        hops in proptest::collection::vec((8u64..500, 0u64..5_000, 1usize..20), 1..5),
        n_probes in 2usize..150,
        spacing_us in 100u64..20_000,
    ) {
        let mut engine = Engine::new(path_from(&hops), 7);
        for n in 0..n_probes as u64 {
            engine.inject_probe(SimTime::from_micros(spacing_us * n), 72, n);
        }
        engine.run();
        // Deliveries are recorded in completion order.
        let seqs: Vec<u64> = engine.probe_deliveries().map(|d| d.seq).collect();
        for w in seqs.windows(2) {
            prop_assert!(w[0] < w[1], "reordered: {} after {}", w[1], w[0]);
        }
    }

    /// One-way components always sum to the round trip.
    #[test]
    fn prop_owd_sums_to_rtt(
        hops in proptest::collection::vec((8u64..2000, 0u64..20_000, 2usize..40), 1..5),
        n_probes in 1usize..100,
    ) {
        let mut engine = Engine::new(path_from(&hops), 3);
        for n in 0..n_probes as u64 {
            engine.inject_probe(SimTime::from_millis(20 * n), 72, n);
        }
        engine.run();
        for d in engine.probe_deliveries() {
            let out = d.outbound_delay().expect("probes are echoed");
            let back = d.inbound_delay().expect("probes are echoed");
            prop_assert_eq!(out + back, d.rtt());
        }
    }

    /// Determinism: identical seeds and schedules give identical traces,
    /// even with random loss in play.
    #[test]
    fn prop_seeded_determinism(
        seed in 0u64..1000,
        loss_pct in 0u32..40,
        n_probes in 1usize..120,
    ) {
        let build = || {
            let path = Path::new(
                vec!["a".into(), "b".into(), "c".into()],
                vec![
                    LinkSpec::new(500_000, SimDuration::from_millis(1))
                        .with_random_loss(loss_pct as f64 / 100.0),
                    LinkSpec::new(300_000, SimDuration::from_millis(2))
                        .with_buffer(BufferLimit::Packets(4)),
                ],
            );
            let mut e = Engine::new(path, seed);
            e.enable_trace();
            for n in 0..n_probes as u64 {
                e.inject_probe(SimTime::from_millis(3 * n), 72, n);
            }
            e.run();
            let trace: Vec<(u64, u64)> = e
                .take_trace()
                .iter()
                .map(|t| (t.at.as_nanos(), t.seq))
                .collect();
            (trace, e.probe_deliveries().count(), e.drops().len())
        };
        prop_assert_eq!(build(), build());
    }

    /// The trace is self-consistent: every delivered probe was echoed
    /// exactly once, and every enqueue at a port is eventually matched by a
    /// TxDone or nothing (never two TxDone for one packet at one port).
    #[test]
    fn prop_trace_echo_consistency(
        n_probes in 1usize..100,
        spacing_us in 500u64..20_000,
    ) {
        let path = Path::new(
            vec!["a".into(), "b".into()],
            vec![LinkSpec::new(128_000, SimDuration::from_millis(5))
                .with_buffer(BufferLimit::Packets(8))],
        );
        let mut e = Engine::new(path, 5);
        e.enable_trace();
        for n in 0..n_probes as u64 {
            e.inject_probe(SimTime::from_micros(spacing_us * n), 72, n);
        }
        e.run();
        let trace = e.take_trace();
        let delivered: std::collections::HashSet<u64> =
            e.probe_deliveries().map(|d| d.seq).collect();
        for &seq in &delivered {
            let echoes = trace
                .iter()
                .filter(|t| t.seq == seq && t.kind == TraceKind::Echoed)
                .count();
            prop_assert_eq!(echoes, 1, "probe {} echoed {} times", seq, echoes);
        }
    }
}

/// A single-hop path with an impairment pipeline on its link.
fn impaired_path(spec: ImpairmentSpec) -> Path {
    Path::new(
        vec!["src".into(), "echo".into()],
        vec![LinkSpec::new(10_000_000, SimDuration::from_millis(5))
            .with_buffer(BufferLimit::Unbounded)
            .with_impairments(spec)],
    )
}

/// Unconditional and conditional loss probability of a delivered/lost flag
/// sequence (losses are `true`).
fn loss_stats(lost: &[bool]) -> (f64, Option<f64>) {
    let ulp = lost.iter().filter(|&&l| l).count() as f64 / lost.len() as f64;
    let (mut after_loss, mut loss_then_loss) = (0usize, 0usize);
    for w in lost.windows(2) {
        if w[0] {
            after_loss += 1;
            if w[1] {
                loss_then_loss += 1;
            }
        }
    }
    let clp = (after_loss > 0).then(|| loss_then_loss as f64 / after_loss as f64);
    (ulp, clp)
}

/// Run `n` probes δ apart over `path` and return per-seq loss flags.
fn loss_flags(path: Path, seed: u64, n: usize, delta: SimDuration) -> Vec<bool> {
    let mut e = Engine::new(path, seed);
    for k in 0..n as u64 {
        e.inject_probe(SimTime::ZERO + delta * k, 72, k);
    }
    e.run();
    let mut flags = vec![true; n];
    for d in e.probe_deliveries() {
        flags[d.seq as usize] = false;
    }
    flags
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The degenerate-case oracle: Gilbert–Elliott with equal Good and Bad
    /// loss rates is memoryless, so over a long run both its loss rate and
    /// its conditional loss probability must match plain Bernoulli
    /// `random_loss` within sampling tolerance.
    #[test]
    fn prop_degenerate_ge_matches_bernoulli(
        seed in 0u64..500,
        loss_pct in 5u32..30,
    ) {
        let p = loss_pct as f64 / 100.0;
        let n = 12_000usize;
        let delta = SimDuration::from_millis(2);

        let ge = GilbertElliott {
            mean_good: SimDuration::from_millis(40),
            mean_bad: SimDuration::from_millis(10),
            loss_good: p,
            loss_bad: p,
        };
        let ge_flags = loss_flags(
            impaired_path(ImpairmentSpec::none().with_burst_loss(ge)),
            seed,
            n,
            delta,
        );
        let bern_flags = loss_flags(
            Path::new(
                vec!["src".into(), "echo".into()],
                vec![LinkSpec::new(10_000_000, SimDuration::from_millis(5))
                    .with_buffer(BufferLimit::Unbounded)
                    .with_random_loss(p)],
            ),
            seed.wrapping_add(9999),
            n,
            delta,
        );

        let (ge_ulp, ge_clp) = loss_stats(&ge_flags);
        let (b_ulp, b_clp) = loss_stats(&bern_flags);
        // Loss happens on both link directions: effective rate 1-(1-p)².
        let expect = 1.0 - (1.0 - p) * (1.0 - p);
        // 4σ-ish tolerance for n = 12k Bernoulli samples plus a margin.
        let tol = 4.0 * (expect * (1.0 - expect) / n as f64).sqrt() + 0.01;
        prop_assert!((ge_ulp - expect).abs() < tol, "GE ulp {ge_ulp} vs {expect}");
        prop_assert!((b_ulp - expect).abs() < tol, "Bern ulp {b_ulp} vs {expect}");
        // Memorylessness: conditional ≈ unconditional for both processes.
        let ge_clp = ge_clp.expect("losses occurred");
        let b_clp = b_clp.expect("losses occurred");
        prop_assert!((ge_clp - ge_ulp).abs() < 0.06, "GE clp {ge_clp} ulp {ge_ulp}");
        prop_assert!((ge_clp - b_clp).abs() < 0.08, "GE clp {ge_clp} Bern clp {b_clp}");
    }

    /// Conservation under the full impairment pipeline: with duplication in
    /// play ids are not unique per seq, but every injected *seq* still has
    /// at least one terminal event, and every id exactly one.
    #[test]
    fn prop_conservation_under_impairments(
        seed in 0u64..500,
        n_probes in 50usize..300,
    ) {
        let spec = ImpairmentSpec::none()
            .with_burst_loss(GilbertElliott::bursty(
                SimDuration::from_millis(200),
                SimDuration::from_millis(40),
                0.9,
            ))
            .with_corruption(0.05)
            .with_duplicate(0.1, SimDuration::from_millis(1))
            .with_reorder(0.1, SimDuration::from_millis(30))
            .with_flap(SimTime::from_millis(100), SimTime::from_millis(200));
        let mut e = Engine::new(impaired_path(spec), seed);
        for k in 0..n_probes as u64 {
            e.inject_probe(SimTime::from_millis(4 * k), 72, k);
        }
        e.run();
        let mut ids: Vec<u64> = e
            .probe_deliveries()
            .map(|d| d.id.0)
            .chain(e.drops().iter().map(|d| d.id.0))
            .collect();
        ids.sort_unstable();
        let unique = {
            let mut u = ids.clone();
            u.dedup();
            u.len()
        };
        prop_assert_eq!(unique, ids.len(), "a packet finished twice");
        // Duplicates mean ≥ n_probes terminal events; every seq accounted.
        let mut seqs: Vec<u64> = e
            .probe_deliveries()
            .map(|d| d.seq)
            .chain(e.drops().iter().map(|d| d.seq))
            .collect();
        seqs.sort_unstable();
        seqs.dedup();
        prop_assert_eq!(seqs.len(), n_probes, "a probe seq vanished");
    }

    /// Determinism under the full pipeline: identical seeds replay
    /// bit-identically, and a reset engine matches a fresh one.
    #[test]
    fn prop_impaired_determinism(
        seed in 0u64..500,
        n_probes in 20usize..150,
    ) {
        let spec = ImpairmentSpec::none()
            .with_burst_loss(GilbertElliott::bursty(
                SimDuration::from_millis(300),
                SimDuration::from_millis(50),
                0.8,
            ))
            .with_corruption(0.02)
            .with_duplicate(0.05, SimDuration::from_millis(1))
            .with_reorder(0.05, SimDuration::from_millis(20));
        let outcome = |e: &mut Engine| {
            for k in 0..n_probes as u64 {
                e.inject_probe(SimTime::from_millis(5 * k), 72, k);
            }
            e.run();
            let del: Vec<(u64, u64)> = e
                .probe_deliveries()
                .map(|d| (d.seq, d.delivered_at.as_nanos()))
                .collect();
            let drops: Vec<(u64, u8)> = e
                .drops()
                .iter()
                .map(|d| (d.seq, d.reason as u8))
                .collect();
            (del, drops)
        };
        let mut fresh = Engine::new(impaired_path(spec.clone()), seed);
        let a = outcome(&mut fresh);
        // Reset must restore the impairment state streams too.
        fresh.reset(seed);
        let b = outcome(&mut fresh);
        let mut other = Engine::new(impaired_path(spec), seed);
        let c = outcome(&mut other);
        prop_assert_eq!(&a, &b, "reset engine diverged from its own first run");
        prop_assert_eq!(&a, &c, "fresh engine diverged");
    }
}

/// Everything arriving at a flapped link during the outage dies with
/// `LinkDown`; arrivals outside the window never do.
#[test]
fn flap_window_drops_exactly_inside_outage() {
    let spec =
        ImpairmentSpec::none().with_flap(SimTime::from_millis(100), SimTime::from_millis(200));
    let mut e = Engine::new(impaired_path(spec), 3);
    for k in 0..60u64 {
        e.inject_probe(SimTime::from_millis(5 * k), 72, k);
    }
    e.run();
    let down: Vec<u64> = e
        .drops()
        .iter()
        .filter(|d| d.reason == DropReason::LinkDown)
        .map(|d| d.seq)
        .collect();
    assert!(!down.is_empty(), "outage lost nothing");
    // Probes sent in [100, 200) ms hit the outage outbound; ones sent just
    // before can be caught inbound (≈10 ms round trip). Nothing outside
    // [90, 200) ms can be affected.
    for &seq in &down {
        let sent_ms = 5 * seq;
        assert!(
            (90..200).contains(&sent_ms),
            "probe sent at {sent_ms} ms dropped by outage"
        );
    }
    // Probes clearly outside the window all return.
    let delivered: std::collections::HashSet<u64> = e.probe_deliveries().map(|d| d.seq).collect();
    for k in 0..60u64 {
        let sent_ms = 5 * k;
        if !(85..205).contains(&sent_ms) {
            assert!(delivered.contains(&k), "probe at {sent_ms} ms missing");
        }
    }
}

/// Corrupted probes travel the full path and die at an endpoint, not at
/// the corrupting hop.
#[test]
fn corruption_is_caught_at_the_endpoint_checksum() {
    let spec = ImpairmentSpec::none().with_corruption(0.2);
    let mut e = Engine::new(impaired_path(spec), 11);
    e.enable_trace();
    for k in 0..400u64 {
        e.inject_probe(SimTime::from_millis(3 * k), 72, k);
    }
    e.run();
    let corrupted: Vec<_> = e
        .drops()
        .iter()
        .filter(|d| d.reason == DropReason::Corrupted)
        .map(|d| d.seq)
        .collect();
    assert!(!corrupted.is_empty(), "no corruption drops at p=0.2");
    let trace = e.take_trace();
    for seq in corrupted {
        // The corrupted probe finished its transmission on the marked hop
        // (routers forward it) before the endpoint discarded it.
        assert!(
            trace
                .iter()
                .any(|t| t.seq == seq && t.kind == TraceKind::ChecksumDrop),
            "probe {seq} lacks a checksum-drop trace"
        );
    }
}

/// Duplication delivers the same sequence number more than once with
/// distinct packet ids — the receiver-side dedup is the driver's job.
#[test]
fn duplicates_surface_as_repeated_sequence_numbers() {
    let spec = ImpairmentSpec::none().with_duplicate(0.3, SimDuration::from_millis(1));
    let mut e = Engine::new(impaired_path(spec), 17);
    for k in 0..200u64 {
        e.inject_probe(SimTime::from_millis(5 * k), 72, k);
    }
    e.run();
    let mut per_seq = std::collections::HashMap::new();
    for d in e.probe_deliveries() {
        *per_seq.entry(d.seq).or_insert(0u32) += 1;
    }
    assert!(
        per_seq.values().any(|&c| c > 1),
        "duplication produced no repeated deliveries"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The indexed bucket queue agrees with the reference binary heap on
    /// arbitrary schedule/pop interleavings that straddle epoch boundaries
    /// (offsets span within-bucket, within-ring, and spill-range jumps).
    #[test]
    fn prop_event_queue_matches_heap_reference(
        ops in proptest::collection::vec(
            // (schedule?, offset-class, offset, keyed?, lane)
            (any::<bool>(), 0u8..3, 0u64..1 << 30, any::<bool>(), 0u64..1 << 20),
            1..400,
        ),
    ) {
        use probenet_sim::{BinaryHeapQueue, EventQueue};
        let mut fast: EventQueue<u32> = EventQueue::new();
        let mut reference: BinaryHeapQueue<u32> = BinaryHeapQueue::new();
        let mut ticket = 0u32;
        for (do_schedule, class, offset, keyed, lane) in ops {
            if do_schedule || fast.is_empty() {
                // Class 0 stays inside one bucket (2^18 ns), class 1 inside
                // the ring (2^30 ns), class 2 forces the spill vector — the
                // epoch boundary is crossed both ways as the clock drains.
                let scaled = match class {
                    0 => offset & ((1 << 18) - 1),
                    1 => offset,
                    _ => offset << 7,
                };
                let at = SimTime::from_nanos(fast.now().as_nanos().saturating_add(scaled));
                if keyed {
                    // Unique per packet, like real packet-id lanes; ties
                    // between identical (time, lane) pairs would be
                    // legitimately ambiguous.
                    let lane = (lane << 32) | u64::from(ticket);
                    fast.schedule_keyed(at, lane, ticket);
                    reference.schedule_keyed(at, lane, ticket);
                } else {
                    fast.schedule(at, ticket);
                    reference.schedule(at, ticket);
                }
                ticket += 1;
            } else {
                prop_assert_eq!(fast.peek_time(), reference.peek_time());
                prop_assert_eq!(fast.pop(), reference.pop());
                prop_assert_eq!(fast.now(), reference.now());
            }
            prop_assert_eq!(fast.len(), reference.len());
        }
        while let Some(got) = fast.pop() {
            prop_assert_eq!(Some(got), reference.pop());
        }
        prop_assert!(reference.is_empty());
    }
}

/// Non-proptest regression: drops carry the right reason at the right port.
#[test]
fn drop_records_identify_the_bottleneck() {
    let path = Path::new(
        vec!["a".into(), "b".into(), "c".into()],
        vec![
            LinkSpec::new(10_000_000, SimDuration::ZERO),
            LinkSpec::new(64_000, SimDuration::ZERO).with_buffer(BufferLimit::Packets(2)),
        ],
    );
    let mut e = Engine::new(path, 1);
    for n in 0..50u64 {
        e.inject_probe(SimTime::from_micros(100 * n), 72, n);
    }
    e.run();
    assert!(!e.drops().is_empty());
    let out_port = e.port_index(1, Direction::Outbound);
    for d in e.drops() {
        assert_eq!(d.reason, DropReason::BufferOverflow);
        assert_eq!(d.port, out_port, "drop at unexpected port {}", d.port);
    }
}
