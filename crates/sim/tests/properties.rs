//! Property tests of simulator invariants under randomized scenarios.

use proptest::prelude::*;

use probenet_sim::{
    BufferLimit, Direction, DropReason, Engine, FlowClass, LinkSpec, Path, SimDuration, SimTime,
    TraceKind,
};

/// Build a random linear path from proptest-chosen hop parameters.
fn path_from(hops: &[(u64, u64, usize)]) -> Path {
    let nodes = (0..=hops.len()).map(|i| format!("n{i}")).collect();
    let links = hops
        .iter()
        .map(|&(bw_kbps, prop_us, buf)| {
            LinkSpec::new(bw_kbps.max(8) * 1000, SimDuration::from_micros(prop_us))
                .with_buffer(BufferLimit::Packets(buf.max(1)))
        })
        .collect();
    Path::new(nodes, links)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every probe is either delivered or dropped — never both, never lost
    /// track of — across random topologies and schedules.
    #[test]
    fn prop_probe_conservation(
        hops in proptest::collection::vec((8u64..2000, 0u64..20_000, 1usize..40), 1..6),
        n_probes in 1usize..200,
        spacing_us in 100u64..50_000,
    ) {
        let mut engine = Engine::new(path_from(&hops), 42);
        for n in 0..n_probes as u64 {
            engine.inject_probe(
                SimTime::from_micros(spacing_us * n),
                72,
                n,
            );
        }
        engine.run();
        let delivered: Vec<u64> = engine.probe_deliveries().map(|d| d.seq).collect();
        let dropped: Vec<u64> = engine
            .drops()
            .iter()
            .filter(|d| d.class == FlowClass::Probe)
            .map(|d| d.seq)
            .collect();
        prop_assert_eq!(delivered.len() + dropped.len(), n_probes);
        let mut all: Vec<u64> = delivered.iter().chain(dropped.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), n_probes, "a probe was double-counted");
    }

    /// RTTs never undercut the physical floor of the path.
    #[test]
    fn prop_rtt_at_least_base(
        hops in proptest::collection::vec((8u64..2000, 0u64..20_000, 1usize..40), 1..6),
        n_probes in 1usize..150,
        spacing_us in 1_000u64..100_000,
    ) {
        let path = path_from(&hops);
        let base = path.base_rtt(72);
        let mut engine = Engine::new(path, 1);
        for n in 0..n_probes as u64 {
            engine.inject_probe(SimTime::from_micros(spacing_us * n), 72, n);
        }
        engine.run();
        for d in engine.probe_deliveries() {
            prop_assert!(d.rtt() >= base, "rtt {:?} below base {:?}", d.rtt(), base);
        }
    }

    /// FIFO paths cannot reorder: probes return in send order.
    #[test]
    fn prop_fifo_no_reordering(
        hops in proptest::collection::vec((8u64..500, 0u64..5_000, 1usize..20), 1..5),
        n_probes in 2usize..150,
        spacing_us in 100u64..20_000,
    ) {
        let mut engine = Engine::new(path_from(&hops), 7);
        for n in 0..n_probes as u64 {
            engine.inject_probe(SimTime::from_micros(spacing_us * n), 72, n);
        }
        engine.run();
        // Deliveries are recorded in completion order.
        let seqs: Vec<u64> = engine.probe_deliveries().map(|d| d.seq).collect();
        for w in seqs.windows(2) {
            prop_assert!(w[0] < w[1], "reordered: {} after {}", w[1], w[0]);
        }
    }

    /// One-way components always sum to the round trip.
    #[test]
    fn prop_owd_sums_to_rtt(
        hops in proptest::collection::vec((8u64..2000, 0u64..20_000, 2usize..40), 1..5),
        n_probes in 1usize..100,
    ) {
        let mut engine = Engine::new(path_from(&hops), 3);
        for n in 0..n_probes as u64 {
            engine.inject_probe(SimTime::from_millis(20 * n), 72, n);
        }
        engine.run();
        for d in engine.probe_deliveries() {
            let out = d.outbound_delay().expect("probes are echoed");
            let back = d.inbound_delay().expect("probes are echoed");
            prop_assert_eq!(out + back, d.rtt());
        }
    }

    /// Determinism: identical seeds and schedules give identical traces,
    /// even with random loss in play.
    #[test]
    fn prop_seeded_determinism(
        seed in 0u64..1000,
        loss_pct in 0u32..40,
        n_probes in 1usize..120,
    ) {
        let build = || {
            let path = Path::new(
                vec!["a".into(), "b".into(), "c".into()],
                vec![
                    LinkSpec::new(500_000, SimDuration::from_millis(1))
                        .with_random_loss(loss_pct as f64 / 100.0),
                    LinkSpec::new(300_000, SimDuration::from_millis(2))
                        .with_buffer(BufferLimit::Packets(4)),
                ],
            );
            let mut e = Engine::new(path, seed);
            e.enable_trace();
            for n in 0..n_probes as u64 {
                e.inject_probe(SimTime::from_millis(3 * n), 72, n);
            }
            e.run();
            let trace: Vec<(u64, u64)> = e
                .take_trace()
                .iter()
                .map(|t| (t.at.as_nanos(), t.seq))
                .collect();
            (trace, e.probe_deliveries().count(), e.drops().len())
        };
        prop_assert_eq!(build(), build());
    }

    /// The trace is self-consistent: every delivered probe was echoed
    /// exactly once, and every enqueue at a port is eventually matched by a
    /// TxDone or nothing (never two TxDone for one packet at one port).
    #[test]
    fn prop_trace_echo_consistency(
        n_probes in 1usize..100,
        spacing_us in 500u64..20_000,
    ) {
        let path = Path::new(
            vec!["a".into(), "b".into()],
            vec![LinkSpec::new(128_000, SimDuration::from_millis(5))
                .with_buffer(BufferLimit::Packets(8))],
        );
        let mut e = Engine::new(path, 5);
        e.enable_trace();
        for n in 0..n_probes as u64 {
            e.inject_probe(SimTime::from_micros(spacing_us * n), 72, n);
        }
        e.run();
        let trace = e.take_trace();
        let delivered: std::collections::HashSet<u64> =
            e.probe_deliveries().map(|d| d.seq).collect();
        for &seq in &delivered {
            let echoes = trace
                .iter()
                .filter(|t| t.seq == seq && t.kind == TraceKind::Echoed)
                .count();
            prop_assert_eq!(echoes, 1, "probe {} echoed {} times", seq, echoes);
        }
    }
}

/// Non-proptest regression: drops carry the right reason at the right port.
#[test]
fn drop_records_identify_the_bottleneck() {
    let path = Path::new(
        vec!["a".into(), "b".into(), "c".into()],
        vec![
            LinkSpec::new(10_000_000, SimDuration::ZERO),
            LinkSpec::new(64_000, SimDuration::ZERO).with_buffer(BufferLimit::Packets(2)),
        ],
    );
    let mut e = Engine::new(path, 1);
    for n in 0..50u64 {
        e.inject_probe(SimTime::from_micros(100 * n), 72, n);
    }
    e.run();
    assert!(!e.drops().is_empty());
    let out_port = e.port_index(1, Direction::Outbound);
    for d in e.drops() {
        assert_eq!(d.reason, DropReason::BufferOverflow);
        assert_eq!(d.port, out_port, "drop at unexpected port {}", d.port);
    }
}
