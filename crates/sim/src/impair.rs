//! Per-hop, seed-deterministic fault injectors.
//!
//! The paper's central loss finding (§4) is that probe losses are
//! *correlated* at small δ — the conditional loss probability far exceeds
//! the unconditional one — yet look essentially random at δ = 500 ms. A
//! plain Bernoulli `random_loss` cannot produce that δ-dependence: it has
//! no memory. This module supplies the missing network dynamics as a
//! pipeline of impairments attached to each [`LinkSpec`](crate::LinkSpec):
//!
//! * **Bursty loss** — a continuous-time Gilbert–Elliott channel
//!   ([`GilbertElliott`]): the link alternates between a Good and a Bad
//!   state with exponentially distributed sojourn times, each state
//!   dropping packets with its own probability. Probes sent δ apart see
//!   correlated losses when δ is short relative to the Bad sojourn and
//!   independent losses when δ is long — exactly the paper's observation.
//! * **Reordering** ([`ReorderSpec`]) — a packet is held back for an extra
//!   delay before entering the hop's queue, letting later packets overtake
//!   it (alternate-path forwarding).
//! * **Duplication** ([`DuplicateSpec`]) — a copy of the packet is
//!   re-injected shortly after the original (retransmitting link layers).
//! * **Corruption** (`corrupt_probability`) — the payload is damaged in
//!   flight. Routers forward corrupted packets (they only checksum the IP
//!   header); the damage is caught end-to-end by the `wire` checksum, so
//!   the packet is discarded at the first *endpoint* that decodes it.
//! * **Link flaps** ([`FlapWindow`]) — hard outage windows during which
//!   every arrival at the hop is destroyed.
//! * **Route shifts** ([`RouteShift`]) — scheduled changes of the hop's
//!   propagation delay, modelling a mid-run route change (the RTT baseline
//!   shifts of the paper's companion work, ref \[21\]). Named `RouteShift`
//!   to stay clear of the `RouteChange` *detector* in the analysis layer.
//!
//! # Determinism contract
//!
//! Every random decision is drawn from a per-port RNG seeded by mixing the
//! engine's master seed with the port index ([`port_stream_seed`]). The
//! engine processes events in deterministic order and the pipeline draws
//! in a fixed order per packet, so a fixed (path, seed, injection
//! schedule) yields bit-identical results at any thread count — threads
//! only ever parallelize *whole runs*, never events within one run.
//! Crucially, an inert [`ImpairmentSpec`] draws nothing, so existing
//! scenarios reproduce their pre-impairment traces exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::packet::DropReason;
use crate::time::{SimDuration, SimTime};

/// A continuous-time Gilbert–Elliott loss channel.
///
/// The link is a two-state Markov chain: it stays in the Good state for an
/// exponentially distributed time with mean `mean_good`, then in the Bad
/// state for an exponential time with mean `mean_bad`, and so on. A packet
/// crossing the link while the chain is in state *S* is destroyed with
/// probability `loss_S`.
///
/// With `loss_good == loss_bad` the state no longer matters and the
/// channel degenerates to Bernoulli loss — the differential-test oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct GilbertElliott {
    /// Mean sojourn time in the Good state.
    pub mean_good: SimDuration,
    /// Mean sojourn time in the Bad state.
    pub mean_bad: SimDuration,
    /// Per-packet loss probability while Good (usually ~0).
    pub loss_good: f64,
    /// Per-packet loss probability while Bad (usually ~1).
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A classic burst channel: lossless while Good, losing packets with
    /// probability `loss_bad` while Bad.
    ///
    /// # Panics
    /// Panics if a mean sojourn is zero or a probability is outside [0, 1].
    pub fn bursty(mean_good: SimDuration, mean_bad: SimDuration, loss_bad: f64) -> Self {
        let ge = GilbertElliott {
            mean_good,
            mean_bad,
            loss_good: 0.0,
            loss_bad,
        };
        ge.validate();
        ge
    }

    fn validate(&self) {
        assert!(!self.mean_good.is_zero(), "mean_good must be positive");
        assert!(!self.mean_bad.is_zero(), "mean_bad must be positive");
        assert!(
            (0.0..=1.0).contains(&self.loss_good) && (0.0..=1.0).contains(&self.loss_bad),
            "loss probabilities must lie in [0, 1]"
        );
    }

    /// Stationary probability of finding the chain in the Bad state.
    pub fn stationary_bad(&self) -> f64 {
        let g = self.mean_good.as_nanos() as f64;
        let b = self.mean_bad.as_nanos() as f64;
        b / (g + b)
    }

    /// Long-run (stationary) per-packet loss probability, for calibration.
    pub fn expected_loss(&self) -> f64 {
        let pb = self.stationary_bad();
        pb * self.loss_bad + (1.0 - pb) * self.loss_good
    }
}

/// Occasional extra delay before a packet enters a hop's queue, so that
/// packets sent after it can overtake it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderSpec {
    /// Per-packet probability of being held back.
    pub probability: f64,
    /// How long a held-back packet waits before (re)entering the queue.
    pub extra_delay: SimDuration,
}

/// Occasional duplication: a copy of the packet re-enters the hop's queue
/// `offset` after the original.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DuplicateSpec {
    /// Per-packet probability of being duplicated.
    pub probability: f64,
    /// Lag between the original and the copy entering the queue.
    pub offset: SimDuration,
}

/// A hard outage: every packet arriving at the hop inside `[from, until)`
/// is destroyed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlapWindow {
    /// Outage start (inclusive).
    pub from: SimTime,
    /// Outage end (exclusive).
    pub until: SimTime,
}

impl FlapWindow {
    /// Whether instant `t` falls inside the outage.
    pub fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// A scheduled change of the hop's one-way propagation delay — a mid-run
/// route change re-homing the hop onto a longer or shorter physical path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteShift {
    /// When the new route takes effect.
    pub at: SimTime,
    /// The hop's propagation delay from `at` on.
    pub propagation: SimDuration,
}

/// The full impairment pipeline of one hop. The default value is inert:
/// no state, no RNG draws, and byte-identical behaviour to a link built
/// before this module existed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ImpairmentSpec {
    /// Bursty (correlated) loss channel.
    pub burst_loss: Option<GilbertElliott>,
    /// Occasional reordering via held-back packets.
    pub reorder: Option<ReorderSpec>,
    /// Occasional packet duplication.
    pub duplicate: Option<DuplicateSpec>,
    /// Per-packet payload corruption probability (caught end-to-end by the
    /// wire checksum, not by routers).
    pub corrupt_probability: f64,
    /// Hard outage windows.
    pub flaps: Vec<FlapWindow>,
    /// Scheduled propagation-delay changes.
    pub route_shifts: Vec<RouteShift>,
}

impl ImpairmentSpec {
    /// An inert pipeline (same as `Default`).
    pub fn none() -> Self {
        ImpairmentSpec::default()
    }

    /// Whether this pipeline does anything at all. Inert specs are skipped
    /// entirely on the hot path and consume no randomness.
    pub fn is_inert(&self) -> bool {
        self.burst_loss.is_none()
            && self.reorder.is_none()
            && self.duplicate.is_none()
            && self.corrupt_probability == 0.0
            && self.flaps.is_empty()
            && self.route_shifts.is_empty()
    }

    /// Attach a Gilbert–Elliott burst-loss channel.
    pub fn with_burst_loss(mut self, ge: GilbertElliott) -> Self {
        ge.validate();
        self.burst_loss = Some(ge);
        self
    }

    /// Hold packets back with probability `p`, delaying them by `extra`.
    ///
    /// # Panics
    /// Panics if `p` is outside [0, 1].
    pub fn with_reorder(mut self, p: f64, extra: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        self.reorder = Some(ReorderSpec {
            probability: p,
            extra_delay: extra,
        });
        self
    }

    /// Duplicate packets with probability `p`, the copy lagging by `offset`.
    ///
    /// # Panics
    /// Panics if `p` is outside [0, 1].
    pub fn with_duplicate(mut self, p: f64, offset: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        self.duplicate = Some(DuplicateSpec {
            probability: p,
            offset,
        });
        self
    }

    /// Corrupt packet payloads with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside [0, 1].
    pub fn with_corruption(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        self.corrupt_probability = p;
        self
    }

    /// Add a hard outage window.
    ///
    /// # Panics
    /// Panics if the window is empty or inverted.
    pub fn with_flap(mut self, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "flap window must have positive length");
        self.flaps.push(FlapWindow { from, until });
        self
    }

    /// Schedule a propagation-delay change at instant `at`.
    pub fn with_route_shift(mut self, at: SimTime, propagation: SimDuration) -> Self {
        self.route_shifts.push(RouteShift { at, propagation });
        self
    }
}

/// SplitMix64 finalizer — mixes the master seed with a stream index so
/// each port gets an independent, reproducible RNG stream.
pub fn port_stream_seed(seed: u64, port: usize) -> u64 {
    let mut z = seed ^ (port as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What the pipeline decided for one packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fate {
    /// The packet is destroyed at the hop (`LinkDown` or `BurstLoss`).
    Dropped(DropReason),
    /// The packet proceeds, possibly altered.
    Forward {
        /// Damage the payload (detected later by the endpoint checksum).
        corrupt: bool,
        /// Re-inject a copy this long after the original.
        duplicate: Option<SimDuration>,
        /// Hold the packet back this long before it enters the queue.
        defer: Option<SimDuration>,
    },
}

/// Mutable per-port state of the pipeline: the RNG stream plus the
/// Gilbert–Elliott chain position, advanced lazily to each packet arrival.
#[derive(Debug)]
pub struct ImpairmentState {
    rng: StdRng,
    /// Chain state: `true` while Bad.
    bad: bool,
    /// When the current sojourn ends and the chain flips.
    sojourn_ends: SimTime,
    /// The chain's initial state is drawn on first use.
    primed: bool,
}

impl ImpairmentState {
    /// Fresh state for one port stream.
    pub fn new(stream_seed: u64) -> Self {
        ImpairmentState {
            rng: StdRng::seed_from_u64(stream_seed),
            bad: false,
            sojourn_ends: SimTime::ZERO,
            primed: false,
        }
    }

    /// Return to the state [`ImpairmentState::new`] produces.
    pub fn reset(&mut self, stream_seed: u64) {
        self.rng = StdRng::seed_from_u64(stream_seed);
        self.bad = false;
        self.sojourn_ends = SimTime::ZERO;
        self.primed = false;
    }

    /// An exponential sojourn with the given mean, floored at 1 ns so the
    /// chain always advances.
    fn exp_sojourn(&mut self, mean: SimDuration) -> SimDuration {
        let u: f64 = self.rng.gen();
        let nanos = -(1.0 - u).ln() * mean.as_nanos() as f64;
        SimDuration::from_nanos(nanos.clamp(1.0, 1.0e18) as u64)
    }

    /// Advance the Gilbert–Elliott chain to instant `at` and report whether
    /// it is in the Bad state there.
    fn advance(&mut self, ge: &GilbertElliott, at: SimTime) -> bool {
        if !self.primed {
            self.primed = true;
            let u: f64 = self.rng.gen();
            self.bad = u < ge.stationary_bad();
            let mean = if self.bad { ge.mean_bad } else { ge.mean_good };
            let sojourn = self.exp_sojourn(mean);
            self.sojourn_ends = SimTime::ZERO + sojourn;
        }
        while self.sojourn_ends <= at {
            self.bad = !self.bad;
            let mean = if self.bad { ge.mean_bad } else { ge.mean_good };
            let sojourn = self.exp_sojourn(mean);
            self.sojourn_ends += sojourn;
        }
        self.bad
    }

    /// Run the pipeline for one packet arriving at the hop at instant `at`.
    /// `dup_eligible` gates duplication (the engine excludes closed-loop
    /// window data and control replies, whose accounting assumes one copy).
    ///
    /// Decision order is fixed — flap, burst loss, corruption, duplication,
    /// reorder — so the RNG stream is consumed identically on every replay.
    pub fn evaluate(&mut self, spec: &ImpairmentSpec, at: SimTime, dup_eligible: bool) -> Fate {
        if spec.flaps.iter().any(|w| w.contains(at)) {
            return Fate::Dropped(DropReason::LinkDown);
        }
        if let Some(ge) = &spec.burst_loss {
            let bad = self.advance(ge, at);
            let p = if bad { ge.loss_bad } else { ge.loss_good };
            if p > 0.0 && self.rng.gen::<f64>() < p {
                return Fate::Dropped(DropReason::BurstLoss);
            }
        }
        let corrupt =
            spec.corrupt_probability > 0.0 && self.rng.gen::<f64>() < spec.corrupt_probability;
        let duplicate = spec.duplicate.as_ref().and_then(|d| {
            if d.probability > 0.0 && self.rng.gen::<f64>() < d.probability && dup_eligible {
                Some(d.offset)
            } else {
                None
            }
        });
        let defer = spec.reorder.as_ref().and_then(|r| {
            if r.probability > 0.0 && self.rng.gen::<f64>() < r.probability {
                Some(r.extra_delay)
            } else {
                None
            }
        });
        Fate::Forward {
            corrupt,
            duplicate,
            defer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn inert_spec_reports_inert() {
        assert!(ImpairmentSpec::none().is_inert());
        assert!(ImpairmentSpec::default().is_inert());
        let spec = ImpairmentSpec::default().with_corruption(0.01);
        assert!(!spec.is_inert());
    }

    #[test]
    fn stationary_loss_matches_formula() {
        let ge = GilbertElliott::bursty(ms(900), ms(100), 1.0);
        assert!((ge.stationary_bad() - 0.1).abs() < 1e-12);
        assert!((ge.expected_loss() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn chain_visits_both_states_at_stationary_rate() {
        let ge = GilbertElliott::bursty(ms(400), ms(100), 1.0);
        let mut st = ImpairmentState::new(7);
        let mut bad = 0usize;
        let n = 20_000usize;
        for i in 0..n {
            // Sample every 50 ms, far apart relative to the sojourns.
            let t = SimTime::ZERO + SimDuration::from_millis(50) * i as u64;
            if st.advance(&ge, t) {
                bad += 1;
            }
        }
        let frac = bad as f64 / n as f64;
        assert!(
            (frac - ge.stationary_bad()).abs() < 0.02,
            "bad fraction {frac} vs stationary {}",
            ge.stationary_bad()
        );
    }

    #[test]
    fn back_to_back_samples_are_correlated() {
        let ge = GilbertElliott::bursty(ms(400), ms(100), 1.0);
        let mut st = ImpairmentState::new(11);
        let mut same = 0usize;
        let n = 20_000usize;
        let mut prev = st.advance(&ge, SimTime::ZERO);
        for i in 1..n {
            // 1 ms apart: well inside either sojourn, so the state rarely
            // flips between consecutive samples.
            let t = SimTime::ZERO + SimDuration::from_millis(1) * i as u64;
            let cur = st.advance(&ge, t);
            if cur == prev {
                same += 1;
            }
            prev = cur;
        }
        assert!(
            same as f64 / n as f64 > 0.95,
            "consecutive states should almost always agree"
        );
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let ge = GilbertElliott::bursty(ms(50), ms(10), 0.8);
        let spec = ImpairmentSpec::default()
            .with_burst_loss(ge)
            .with_corruption(0.05)
            .with_duplicate(0.05, ms(1))
            .with_reorder(0.05, ms(20));
        let run = |seed: u64| {
            let mut st = ImpairmentState::new(seed);
            (0..5_000)
                .map(|i| {
                    let t = SimTime::ZERO + SimDuration::from_millis(2) * i as u64;
                    st.evaluate(&spec, t, true)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn flap_window_drops_everything_inside() {
        let spec =
            ImpairmentSpec::default().with_flap(SimTime::from_millis(10), SimTime::from_millis(20));
        let mut st = ImpairmentState::new(1);
        assert_eq!(
            st.evaluate(&spec, SimTime::from_millis(15), true),
            Fate::Dropped(DropReason::LinkDown)
        );
        assert!(matches!(
            st.evaluate(&spec, SimTime::from_millis(25), true),
            Fate::Forward { .. }
        ));
        // Boundary: inclusive start, exclusive end.
        assert_eq!(
            st.evaluate(&spec, SimTime::from_millis(10), true),
            Fate::Dropped(DropReason::LinkDown)
        );
        assert!(matches!(
            st.evaluate(&spec, SimTime::from_millis(20), true),
            Fate::Forward { .. }
        ));
    }

    #[test]
    fn port_streams_differ() {
        assert_ne!(port_stream_seed(1, 0), port_stream_seed(1, 1));
        assert_ne!(port_stream_seed(1, 0), port_stream_seed(2, 0));
    }
}
