//! Simulated time.
//!
//! All simulator time is carried as an integer number of **nanoseconds** in
//! [`SimTime`] (an instant) and [`SimDuration`] (a span). Integer time keeps
//! event ordering exact and makes runs bit-for-bit reproducible: there is no
//! floating-point accumulation drift no matter how many events are processed.
//!
//! Conversions to and from floating-point seconds/milliseconds are provided
//! at the edges for analysis code, which works in `f64` seconds.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Nanoseconds per millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds per microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite horizon".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * NANOS_PER_MICRO)
    }

    /// Construct from integer milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * NANOS_PER_MILLI)
    }

    /// Construct from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from floating-point seconds (rounded to the nearest ns).
    ///
    /// Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_f64_to_nanos(s))
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in floating-point seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This instant expressed in floating-point milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// Construct from integer milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// Construct from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from floating-point seconds (rounded to the nearest ns).
    ///
    /// Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_f64_to_nanos(s))
    }

    /// Construct from floating-point milliseconds (rounded to the nearest ns).
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration(secs_f64_to_nanos(ms / 1e3))
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in floating-point seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This span expressed in floating-point milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// True if this is the zero-length span.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by an integer count, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }

    /// The exact time to transmit `size_bytes` at `bandwidth_bps` bits/s,
    /// rounded up to the next nanosecond so a server never finishes "early".
    ///
    /// # Panics
    /// Panics if `bandwidth_bps` is zero.
    pub fn transmission(size_bytes: u32, bandwidth_bps: u64) -> SimDuration {
        assert!(bandwidth_bps > 0, "link bandwidth must be positive");
        let bits = size_bytes as u128 * 8;
        let ns = (bits * NANOS_PER_SEC as u128).div_ceil(bandwidth_bps as u128);
        SimDuration(u64::try_from(ns).unwrap_or(u64::MAX))
    }
}

fn secs_f64_to_nanos(s: f64) -> u64 {
    if s.is_nan() || s <= 0.0 {
        return 0;
    }
    let ns = s * NANOS_PER_SEC as f64;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Exact difference; panics if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
    }

    #[test]
    fn float_round_trip() {
        let t = SimTime::from_secs_f64(0.050);
        assert_eq!(t, SimTime::from_millis(50));
        assert!((t.as_secs_f64() - 0.050).abs() < 1e-12);
        assert!((t.as_millis_f64() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn from_secs_f64_clamps_negative_and_nan() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(
            SimDuration::from_millis(5) * 3,
            SimDuration::from_millis(15)
        );
        assert_eq!(
            SimDuration::from_millis(15) / 3,
            SimDuration::from_millis(5)
        );
    }

    #[test]
    #[should_panic(expected = "negative SimDuration")]
    fn negative_difference_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(1));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn transmission_time_exact() {
        // 32 bytes at 128 kb/s = 256 bits / 128000 b/s = 2 ms exactly.
        assert_eq!(
            SimDuration::transmission(32, 128_000),
            SimDuration::from_millis(2)
        );
        // 512 bytes at 128 kb/s = 4096/128000 s = 32 ms exactly.
        assert_eq!(
            SimDuration::transmission(512, 128_000),
            SimDuration::from_millis(32)
        );
        // 1500 bytes at 10 Mb/s = 12000/1e7 = 1.2 ms exactly.
        assert_eq!(
            SimDuration::transmission(1500, 10_000_000),
            SimDuration::from_micros(1200)
        );
    }

    #[test]
    fn transmission_rounds_up() {
        // 1 byte at 3 b/s: 8/3 s = 2.666..s -> must round UP.
        let d = SimDuration::transmission(1, 3);
        assert_eq!(d.as_nanos(), (8 * NANOS_PER_SEC).div_ceil(3));
        assert!(d > SimDuration::from_secs_f64(8.0 / 3.0) - SimDuration::from_nanos(1));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn transmission_zero_bandwidth_panics() {
        let _ = SimDuration::transmission(1, 0);
    }

    #[test]
    fn zero_size_packet_transmits_instantly() {
        assert_eq!(SimDuration::transmission(0, 128_000), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(50)), "50.000ms");
        assert_eq!(format!("{:?}", SimDuration::from_millis(2)), "0.002000s");
    }
}
