//! Conservative parallel execution: one engine per contiguous node range,
//! synchronized Chandy–Misra–Bryant style.
//!
//! The simulated topology is a linear path, so it partitions naturally at
//! link boundaries: partition `p` owns a contiguous range of nodes (and the
//! ports located at them), and the **only** events that cross a boundary
//! are node arrivals of packets that just traversed the boundary link.
//! That link's propagation delay is the classical CMB *lookahead*: a
//! partition whose clock is at `t` cannot place an arrival into its
//! neighbor before `t + propagation`, so each partition can safely advance
//! to one tick before the minimum of its neighbors' announced guarantees.
//!
//! Guarantees ("null messages") and event batches travel through per-
//! partition mailboxes — a mutex-protected inbox with a condition variable.
//! A partition announces, monotonically:
//!
//! * eastward: `max(prev, L_east + min(next_local_event, west_guarantee))`
//! * westward: `max(prev, L_west + min(next_local_event, west_guarantee,
//!   east_guarantee))`
//!
//! The eastward bound may ignore the east neighbor's clock because
//! westbound traffic can never *cause* an eastbound send (probes turn
//! around only at the echo host, the last node; TTL replies travel west;
//! window flows, which can turn traffic around at node 0, are not used in
//! partitioned runs). That directional acyclicity lets the guarantee chain
//! resolve west-to-east and then east-to-west without a cycle, and the
//! nonzero-propagation invariant (checked at partition time — a zero-
//! lookahead boundary forces a serial run) gives the classical CMB progress
//! argument: the partition holding the globally minimal event always has a
//! safe horizon strictly beyond it, so the system never deadlocks. See
//! DESIGN.md §13 for the full argument.
//!
//! Determinism does not depend on scheduling: cross-boundary arrivals are
//! ordered by packet id (content-derived, identical in serial runs),
//! per-port RNG streams make admission decisions a function of each port's
//! own arrival sequence, and all result merges reduce in fixed
//! partition-index order. A partitioned run is therefore bit-identical to
//! the serial run of the same plan at any partition count.

use std::ops::Range;
use std::sync::{Condvar, Mutex};

use crate::engine::{Engine, EngineStats, RemoteArrival};
use crate::packet::{Delivery, Direction, DropRecord, PacketId, TtlExceeded};
use crate::path::{LinkSpec, Path};
use crate::queue::PortStats;
use crate::time::SimTime;

/// Number of worker threads the environment asks for: `PROBENET_THREADS`
/// when set (minimum 1), otherwise the host's available parallelism.
pub fn effective_threads() -> usize {
    // Pool width only: DESIGN.md §13 pins bit-identical results at any
    // thread count, so the width cannot alter artifact bytes.
    // probenet-lint: allow(tainted-artifact-path) pool width only, results bit-identical at any width
    match std::env::var("PROBENET_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or(1),
        // probenet-lint: allow(tainted-artifact-path) pool width only (see above)
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// One probe to inject at the source (node 0).
#[derive(Debug, Clone, Copy)]
pub struct ProbeInjection {
    /// Injection instant.
    pub at: SimTime,
    /// Wire size in bytes.
    pub size: u32,
    /// Probe sequence number.
    pub seq: u64,
    /// Initial TTL.
    pub ttl: u8,
    /// Packet id (see [`InjectionPlan::with_serial_ids`]).
    pub id: u64,
}

/// A cross-traffic arrival sequence bound to one port.
#[derive(Debug, Clone)]
pub struct CrossAttachment {
    /// Link index the traffic enters at.
    pub link: usize,
    /// Direction (selects the port at that link).
    pub direction: Direction,
    /// `(time, size)` arrivals, in time order.
    pub arrivals: Vec<(SimTime, u32)>,
    /// Id of the first packet; the rest follow consecutively (see
    /// [`InjectionPlan::with_serial_ids`]).
    pub base_id: u64,
}

/// Everything a run injects, described up front so the same plan can be
/// executed serially or split across partitions with identical packet ids.
#[derive(Debug, Clone, Default)]
pub struct InjectionPlan {
    /// Probes entering at node 0.
    pub probes: Vec<ProbeInjection>,
    /// Cross-traffic attachments.
    pub cross: Vec<CrossAttachment>,
}

impl InjectionPlan {
    /// Assign packet ids exactly as a serial engine's injection counter
    /// would have: cross attachments first (in list order, one id per
    /// arrival), then probes — the order `probenet-netdyn` performs them.
    pub fn with_serial_ids(mut self) -> Self {
        let mut next = 0u64;
        for c in &mut self.cross {
            c.base_id = next;
            next += c.arrivals.len() as u64;
        }
        for p in &mut self.probes {
            p.id = next;
            next += 1;
        }
        self
    }

    fn probe_count(&self) -> usize {
        self.probes.len()
    }
}

/// Merged results of a (possibly partitioned) run.
#[derive(Debug)]
pub struct ParallelOutcome {
    /// All deliveries; partition-local completion order within fixed
    /// partition-index concatenation (NOT global completion order — treat
    /// as a set, or sort by a content key).
    pub deliveries: Vec<Delivery>,
    /// All drops, concatenated in partition-index order.
    pub drops: Vec<DropRecord>,
    /// TTL-exceeded notifications, concatenated in partition-index order.
    pub ttl_replies: Vec<TtlExceeded>,
    /// Final simulated time (maximum over partitions — equals the serial
    /// engine's final clock).
    pub now: SimTime,
    /// Merged work counters; `wall` is the facade's elapsed time around the
    /// whole run, so `events_per_sec` reflects real parallel throughput.
    pub stats: EngineStats,
    /// Per-port statistics in global port-index order (`2 * links`), each
    /// taken from the partition that owns the port.
    pub port_stats: Vec<PortStats>,
    /// Partition count actually used (1 when a zero-lookahead boundary or a
    /// short path forced a serial run).
    pub partitions: usize,
}

/// The smallest propagation delay link `spec` can ever have, accounting for
/// scheduled route shifts — the value a lookahead bound must use.
fn min_propagation_ns(spec: &LinkSpec) -> u64 {
    let mut m = spec.propagation;
    for shift in &spec.impair.route_shifts {
        if shift.propagation < m {
            m = shift.propagation;
        }
    }
    m.as_nanos()
}

/// Split `nodes` into `k` contiguous, non-empty, near-equal ranges.
fn node_ranges(nodes: usize, k: usize) -> Vec<Range<usize>> {
    let base = nodes / k;
    let extra = nodes % k;
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

struct Inbox {
    msgs: Vec<RemoteArrival>,
    /// West neighbor's guarantee: it will never send an arrival with a
    /// timestamp below this. `u64::MAX` when there is no west neighbor.
    west_clock: u64,
    /// East neighbor's guarantee (`u64::MAX` when absent).
    east_clock: u64,
    /// Bumped on every post; the owner waits for it to change.
    gen: u64,
}

type Mailbox = (Mutex<Inbox>, Condvar);

/// Deliver a batch and/or a clock update to a neighbor's mailbox.
fn post(target: &Mailbox, msgs: Vec<RemoteArrival>, set_clock: impl FnOnce(&mut Inbox)) {
    let mut inbox = target.0.lock().expect("mailbox poisoned");
    inbox.msgs.extend(msgs);
    set_clock(&mut inbox);
    inbox.gen += 1;
    drop(inbox);
    target.1.notify_one();
}

/// Drive one partition until global quiescence. `lookahead_west`/`_east`
/// are the boundary links' minimum propagation delays in nanoseconds
/// (unused when the corresponding neighbor is absent).
fn partition_loop(
    engine: &mut Engine,
    idx: usize,
    lookahead_west: u64,
    lookahead_east: u64,
    boxes: &[Mailbox],
) {
    let me = &boxes[idx];
    let west = idx.checked_sub(1).map(|i| &boxes[i]);
    let east = boxes.get(idx + 1);
    // Last guarantees announced in each direction; announcements are
    // clamped monotone (each computed bound is sound for all *future*
    // sends at the moment it is computed, so the running maximum is too).
    let mut announced_west = 0u64;
    let mut announced_east = 0u64;
    // Force the first pass through without waiting.
    let mut seen_gen = u64::MAX;
    loop {
        let (msgs, g_west, g_east) = {
            let mut inbox = me.0.lock().expect("mailbox poisoned");
            while inbox.gen == seen_gen {
                inbox = me.1.wait(inbox).expect("mailbox poisoned");
            }
            seen_gen = inbox.gen;
            (
                std::mem::take(&mut inbox.msgs),
                inbox.west_clock,
                inbox.east_clock,
            )
        };
        for m in msgs {
            engine.deliver_remote(m);
        }
        // Both neighbors promise nothing below `safe`; everything strictly
        // before it is causally complete and can run.
        let safe = g_west.min(g_east);
        if safe > 0 {
            engine.run_until(SimTime::from_nanos(safe - 1));
        }
        let (to_west, to_east) = engine.take_outboxes();
        let peek = engine.next_event_time().map_or(u64::MAX, |t| t.as_nanos());
        // Any future eastbound send is caused by a local event or a future
        // west-side arrival, never by east-side (westbound) traffic — so
        // the east bound may ignore g_east (directional acyclicity).
        let bound_east = announced_east.max(lookahead_east.saturating_add(peek.min(g_west)));
        let bound_west =
            announced_west.max(lookahead_west.saturating_add(peek.min(g_west).min(g_east)));
        if let Some(w) = west {
            if !to_west.is_empty() || bound_west > announced_west {
                announced_west = bound_west;
                post(w, to_west, |inbox| {
                    inbox.east_clock = inbox.east_clock.max(bound_west);
                });
            }
        } else {
            debug_assert!(to_west.is_empty(), "westbound send from partition 0");
        }
        if let Some(e) = east {
            if !to_east.is_empty() || bound_east > announced_east {
                announced_east = bound_east;
                post(e, to_east, |inbox| {
                    inbox.west_clock = inbox.west_clock.max(bound_east);
                });
            }
        } else {
            debug_assert!(to_east.is_empty(), "eastbound send from the last partition");
        }
        // Quiescent: both neighbors are done forever and nothing is left
        // locally. The final announcements above were `u64::MAX`.
        if g_west == u64::MAX && g_east == u64::MAX && peek == u64::MAX {
            break;
        }
    }
}

/// Execute `plan` over `path`, split into at most `threads` partitions.
///
/// With `threads <= 1`, a short path, or a zero-lookahead boundary, this
/// degenerates to a plain serial run; the outcome is **identical** either
/// way (up to the stated record ordering), which the determinism and
/// golden-trace suites pin down.
pub fn run_partitioned(
    path: &Path,
    seed: u64,
    plan: &InjectionPlan,
    threads: usize,
) -> ParallelOutcome {
    let nodes = path.nodes.len();
    let mut k = threads.clamp(1, nodes);
    let mut ranges = node_ranges(nodes, k);
    // The nonzero-propagation invariant: every boundary link must provide
    // strictly positive lookahead, or conservative synchronization cannot
    // make progress — fall back to a serial run.
    if ranges[1..]
        .iter()
        .any(|r| min_propagation_ns(&path.links[r.start - 1]) == 0)
    {
        k = 1;
        ranges = node_ranges(nodes, 1);
    }

    let mut engines: Vec<Engine> = if k == 1 {
        vec![Engine::new(path.clone(), seed)]
    } else {
        ranges
            .iter()
            .map(|r| Engine::new_partition(path.clone(), seed, r.clone()))
            .collect()
    };

    // Owners: port `l` outbound sits at node `l`; port `l` inbound at
    // node `l + 1`.
    let owner_of_node =
        |n: usize| -> usize { ranges.iter().position(|r| r.contains(&n)).expect("covered") };

    // Apply the plan. Cross traffic goes to the partition owning the
    // attachment port; probes enter at node 0 (always partition 0).
    for c in &plan.cross {
        let node = match c.direction {
            Direction::Outbound => c.link,
            Direction::Inbound => c.link + 1,
        };
        let owner = owner_of_node(node);
        engines[owner].reserve(0, c.arrivals.len());
        engines[owner].attach_cross_traffic_with_base_id(
            c.link,
            c.direction,
            c.arrivals.iter().copied(),
            c.base_id,
        );
    }
    engines[0].reserve(plan.probe_count(), 0);
    for p in &plan.probes {
        engines[0].inject_probe_with_id(p.at, p.size, p.seq, p.ttl, PacketId(p.id));
    }

    let started = std::time::Instant::now(); // probenet-lint: allow(wall-clock-in-sim, tainted-artifact-path) EngineStats wall-time observability, not sim data
    if k == 1 {
        engines[0].run();
    } else {
        let lookahead: Vec<u64> = ranges[1..]
            .iter()
            .map(|r| min_propagation_ns(&path.links[r.start - 1]))
            .collect();
        let boxes: Vec<Mailbox> = (0..k)
            .map(|i| {
                (
                    Mutex::new(Inbox {
                        msgs: Vec::new(),
                        west_clock: if i == 0 { u64::MAX } else { 0 },
                        east_clock: if i == k - 1 { u64::MAX } else { 0 },
                        gen: 0,
                    }),
                    Condvar::new(),
                )
            })
            .collect();
        // Partitions block on their mailbox condvar, so they need real
        // threads (a work-stealing pool would deadlock); scoped threads
        // let them borrow the engines directly.
        std::thread::scope(|s| {
            let boxes = &boxes;
            let lookahead = &lookahead;
            for (idx, engine) in engines.iter_mut().enumerate() {
                s.spawn(move || {
                    let l_w = if idx == 0 {
                        u64::MAX
                    } else {
                        lookahead[idx - 1]
                    };
                    let l_e = lookahead.get(idx).copied().unwrap_or(u64::MAX);
                    partition_loop(engine, idx, l_w, l_e, boxes);
                });
            }
        });
    }
    let wall = started.elapsed();

    // Merge per-partition results. Every reduction below iterates the
    // engines in ascending partition index — a fixed order independent of
    // thread scheduling — so the merged output is reproducible.
    let mut deliveries = Vec::with_capacity(engines.iter().map(|e| e.deliveries().len()).sum());
    let mut drops = Vec::new();
    let mut ttl_replies = Vec::new();
    let mut events_processed = 0u64;
    let mut peak_queue_depth = 0usize;
    let mut now = SimTime::ZERO;
    for e in &engines {
        // probenet-lint: allow(unordered-partition-merge) merged in fixed ascending partition-index order
        deliveries.extend(e.deliveries().iter().cloned());
        // probenet-lint: allow(unordered-partition-merge) merged in fixed ascending partition-index order
        drops.extend(e.drops().iter().cloned());
        // probenet-lint: allow(unordered-partition-merge) merged in fixed ascending partition-index order
        ttl_replies.extend(e.ttl_replies().iter().cloned());
        let st = e.stats();
        events_processed += st.events_processed;
        peak_queue_depth = peak_queue_depth.max(st.peak_queue_depth);
        now = now.max(e.now());
    }
    let links = path.links.len();
    let mut port_stats = Vec::with_capacity(links * 2);
    for l in 0..links {
        let owner = owner_of_node(l);
        port_stats.push(engines[owner].port(l, Direction::Outbound).stats.clone());
    }
    for l in 0..links {
        let owner = owner_of_node(l + 1);
        port_stats.push(engines[owner].port(l, Direction::Inbound).stats.clone());
    }

    ParallelOutcome {
        deliveries,
        drops,
        ttl_replies,
        now,
        stats: EngineStats {
            events_processed,
            peak_queue_depth,
            wall,
        },
        port_stats,
        partitions: k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;
    use crate::time::SimDuration;

    /// A plan exercising every hop: periodic probes plus cross traffic on
    /// the bottleneck in both directions.
    fn plan(probes: u64, interval_ms: u64, cross_link: usize) -> InjectionPlan {
        let mut p = InjectionPlan::default();
        for (dir, stride_us, count) in [
            (Direction::Outbound, 1700u64, 2500usize),
            (Direction::Inbound, 2300, 1800),
        ] {
            p.cross.push(CrossAttachment {
                link: cross_link,
                direction: dir,
                arrivals: (0..count)
                    .map(|i| {
                        let size = 40 + ((i * 97) % 1460) as u32;
                        (SimTime::from_nanos(i as u64 * stride_us * 1000), size)
                    })
                    .collect(),
                base_id: 0,
            });
        }
        for n in 0..probes {
            p.probes.push(ProbeInjection {
                at: SimTime::from_millis(n * interval_ms),
                size: 32,
                seq: n,
                ttl: crate::packet::DEFAULT_TTL,
                id: 0,
            });
        }
        p.with_serial_ids()
    }

    /// Content key making delivery sets comparable across record orders.
    fn delivery_key(d: &Delivery) -> (u64, u64, u64, u64, Option<u64>) {
        (
            d.id.0,
            d.seq,
            d.injected_at.as_nanos(),
            d.delivered_at.as_nanos(),
            d.echoed_at.map(|t| t.as_nanos()),
        )
    }

    #[allow(clippy::type_complexity)]
    fn outcome_fingerprint(
        o: &ParallelOutcome,
    ) -> (
        Vec<(u64, u64, u64, u64, Option<u64>)>,
        Vec<(u64, u64, u64, usize, String)>,
        Vec<(u64, usize, u64)>,
        u64,
        Vec<(u64, u64, u64, u64)>,
    ) {
        let mut ds: Vec<_> = o.deliveries.iter().map(delivery_key).collect();
        ds.sort();
        let mut dr: Vec<_> = o
            .drops
            .iter()
            .map(|d| {
                (
                    d.id.0,
                    d.seq,
                    d.at.as_nanos(),
                    d.port,
                    format!("{:?}", d.reason),
                )
            })
            .collect();
        dr.sort();
        let mut tr: Vec<_> = o
            .ttl_replies
            .iter()
            .map(|t| (t.probe_seq, t.node, t.received_at.as_nanos()))
            .collect();
        tr.sort();
        let ps: Vec<_> = o
            .port_stats
            .iter()
            .map(|s| {
                (
                    s.arrivals,
                    s.served,
                    s.overflow_drops,
                    s.busy_time.as_nanos(),
                )
            })
            .collect();
        (ds, dr, tr, o.now.as_nanos(), ps)
    }

    #[test]
    fn partitioned_runs_match_serial_at_all_widths() {
        let path = Path::inria_umd_1992();
        let plan = plan(400, 8, 5);
        let serial = run_partitioned(&path, 42, &plan, 1);
        assert_eq!(serial.partitions, 1);
        assert!(!serial.deliveries.is_empty());
        let reference = outcome_fingerprint(&serial);
        for k in [2usize, 3, 4, 8] {
            let par = run_partitioned(&path, 42, &plan, k);
            assert!(par.partitions > 1, "width {k} did not partition");
            assert_eq!(
                outcome_fingerprint(&par),
                reference,
                "divergence at {k} partitions"
            );
        }
    }

    #[test]
    fn partitioned_runs_match_serial_with_impairments() {
        // umd_pitt_1993 carries link-level loss; inject enough probes that
        // random loss, TTL expiry, and queue overflow all occur.
        let path = Path::umd_pitt_1993();
        let plan = plan(300, 5, 3);
        let serial = run_partitioned(&path, 7, &plan, 1);
        let reference = outcome_fingerprint(&serial);
        for k in [2usize, 4, 8] {
            let par = run_partitioned(&path, 7, &plan, k);
            assert_eq!(
                outcome_fingerprint(&par),
                reference,
                "divergence at {k} partitions"
            );
        }
    }

    #[test]
    fn zero_lookahead_boundary_falls_back_to_serial() {
        use crate::path::LinkSpec;
        let path = Path::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                LinkSpec::new(1_000_000, SimDuration::ZERO),
                LinkSpec::new(1_000_000, SimDuration::ZERO),
            ],
        );
        let plan = InjectionPlan {
            probes: vec![ProbeInjection {
                at: SimTime::ZERO,
                size: 32,
                seq: 0,
                ttl: crate::packet::DEFAULT_TTL,
                id: 0,
            }],
            cross: Vec::new(),
        }
        .with_serial_ids();
        let out = run_partitioned(&path, 1, &plan, 4);
        assert_eq!(out.partitions, 1, "zero lookahead must force serial");
        assert_eq!(out.deliveries.len(), 1);
    }

    #[test]
    fn partition_count_caps_at_node_count() {
        let path = Path::inria_umd_1992();
        let nodes = path.nodes.len();
        let plan = plan(50, 20, 5);
        let out = run_partitioned(&path, 3, &plan, 64);
        assert!(out.partitions <= nodes);
        assert!(out.partitions > 1);
    }

    #[test]
    fn serial_ids_match_engine_counter_order() {
        let p = InjectionPlan {
            cross: vec![
                CrossAttachment {
                    link: 0,
                    direction: Direction::Outbound,
                    arrivals: vec![(SimTime::ZERO, 100), (SimTime::from_millis(1), 100)],
                    base_id: 999,
                },
                CrossAttachment {
                    link: 1,
                    direction: Direction::Inbound,
                    arrivals: vec![(SimTime::ZERO, 100)],
                    base_id: 999,
                },
            ],
            probes: vec![ProbeInjection {
                at: SimTime::ZERO,
                size: 32,
                seq: 0,
                ttl: 64,
                id: 999,
            }],
        }
        .with_serial_ids();
        assert_eq!(p.cross[0].base_id, 0);
        assert_eq!(p.cross[1].base_id, 2);
        assert_eq!(p.probes[0].id, 3);
    }
}
