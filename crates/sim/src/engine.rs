//! The discrete-event engine: packets traversing a linear path out to an
//! echo host and back, through per-direction FIFO ports, with cross traffic
//! sharing any subset of the queues.
//!
//! The engine reproduces the measurement setup of the paper's Section 2:
//! the source (node 0) injects fixed-size probe packets; the echo host (last
//! node) immediately turns them around; deliveries back at the source yield
//! the round-trip series `rtt_n`. Probes that overflow a finite buffer, are
//! randomly lost on a link, or exceed their TTL never come back — exactly
//! the `rtt_n = 0` convention of the paper's Section 3.
//!
//! ## Hot path
//!
//! Packets live in a generation-checked [`PacketArena`]; events carry 8-byte
//! [`PacketRef`] handles, so a queue entry is 32 bytes and admission moves a
//! handle instead of cloning the packet. Same-instant hops (router
//! forwarding, the echo turnaround, TTL replies) are dispatched inline
//! rather than round-tripped through the event queue, and the run loop
//! drains whole time buckets via [`EventQueue::begin_bucket`]. All
//! randomness that affects admission is drawn from **per-port** RNG streams
//! (disjoint from the impairment streams), so a port's random-loss/RED
//! decisions depend only on its own arrival sequence — the property that
//! lets a partitioned run reproduce the serial one exactly.
//!
//! ## Partitioned operation
//!
//! An engine can own a contiguous sub-range of the path's nodes
//! ([`Engine::new_partition`]). It then processes only events at its own
//! nodes and ports; a packet crossing the boundary is placed in an outbox
//! ([`Engine::take_outboxes`]) instead of the local queue, and remote
//! packets enter through [`Engine::deliver_remote`]. Cross-boundary
//! arrivals are ordered by a content-derived lane (the packet id, which is
//! itself derived from injection order or the generating port/node — never
//! from a global counter), so the merged execution is independent of the
//! partition count; see DESIGN.md §13.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arena::{PacketArena, PacketRef};
use crate::event::{EventQueue, LOCAL_LANE};
use crate::impair::{port_stream_seed, Fate, ImpairmentState};
use crate::packet::{
    Delivery, Direction, DropReason, DropRecord, FlowClass, Packet, PacketId, TtlExceeded,
    DEFAULT_TTL,
};
use crate::path::Path;
use crate::queue::{Admission, Port};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceKind};

/// Size in bytes of the simulated TTL-exceeded reply (an ICMP time-exceeded
/// message: 20-byte IP header + 8-byte ICMP header + 28 bytes of the
/// offending datagram).
pub const TTL_REPLY_SIZE: u32 = 56;

/// Bit marking a packet id generated at runtime (duplicates, TTL replies)
/// rather than assigned at injection. Runtime ids are derived from the
/// generating site and a per-site counter, so they are identical in serial
/// and partitioned runs.
const RUNTIME_ID_BIT: u64 = 1 << 62;
/// Additional bit marking TTL-exceeded replies among runtime ids.
const REPLY_ID_BIT: u64 = 1 << 61;
/// Shift of the generating port/node index within a runtime id.
const ID_SITE_SHIFT: u32 = 40;

#[derive(Debug)]
enum Ev {
    /// A packet reaches a port's queue.
    Arrive { port: u32, r: PacketRef },
    /// A port's server finishes transmitting its head packet.
    TxDone { port: u32 },
    /// A packet arrives at a node after crossing a link.
    NodeArrival { node: u32, r: PacketRef },
    /// A link's propagation delay changes (a route change re-homing this
    /// hop onto a longer or shorter physical path).
    SetPropagation { link: u32, value: SimDuration },
    /// A packet (re-)enters a port's queue downstream of the fault
    /// injectors: reorder-deferred packets and duplicate copies, which must
    /// not run the impairment pipeline a second time.
    Admit { port: u32, r: PacketRef },
}

/// Counters describing how much work a run did, for performance
/// instrumentation (none of these feed back into simulation results).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Logical events handled over the engine's lifetime (since
    /// construction or the last [`Engine::reset`]): events popped from the
    /// queue **plus** same-instant hops dispatched inline, so totals stay
    /// comparable with earlier engine versions that queued every hop.
    pub events_processed: u64,
    /// High-water mark of the pending-event queue.
    pub peak_queue_depth: usize,
    /// Wall-clock time spent inside [`Engine::run`] / [`Engine::run_until`].
    pub wall: std::time::Duration,
}

impl EngineStats {
    /// Events handled per wall-clock second (0 when nothing ran).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events_processed as f64 / secs
        } else {
            0.0
        }
    }
}

/// A packet that crossed a partition boundary: it arrives at `node` (owned
/// by a neighboring partition) at instant `at`.
#[derive(Debug)]
pub struct RemoteArrival {
    /// Arrival instant at the receiving node.
    pub at: SimTime,
    /// The receiving node (owned by the neighbor).
    pub node: usize,
    /// The packet itself, moved out of the sender's arena.
    pub packet: Packet,
}

/// Discrete-event simulator for one probed path (or one partition of it).
#[derive(Debug)]
pub struct Engine {
    path: Path,
    /// Nodes this engine owns: the full range for a serial engine, a
    /// contiguous sub-range for a partition. Port `j` outbound lives at
    /// node `j`; port `j` inbound lives at node `j + 1`.
    owned: Range<usize>,
    /// `ports[i]` for `i < L` transmits link `i` outbound (from node `i`);
    /// `ports[L + i]` transmits link `i` inbound (from node `i + 1`).
    ports: Vec<Port>,
    /// Fault-injector state, one per port, each with its own RNG stream
    /// derived from the master seed (see [`crate::impair`]).
    impair: Vec<ImpairmentState>,
    /// Admission randomness (random loss, RED), one independent stream per
    /// port, seeded after the impairment streams. Per-port streams make a
    /// port's decisions a function of its own arrival sequence alone.
    port_rng: Vec<StdRng>,
    events: EventQueue<Ev>,
    arena: PacketArena,
    next_id: u64,
    /// Per-port counter feeding duplicate-copy ids.
    dup_seq: Vec<u64>,
    /// Per-node counter feeding TTL-exceeded reply ids.
    reply_seq: Vec<u64>,
    deliveries: Vec<Delivery>,
    drops: Vec<DropRecord>,
    ttl_replies: Vec<TtlExceeded>,
    /// Closed-loop window flows; `Packet::flow` is an index + 1 here.
    flows: Vec<FlowState>,
    /// Boundary crossings toward lower-numbered nodes, in send order.
    outbox_west: Vec<RemoteArrival>,
    /// Boundary crossings toward higher-numbered nodes, in send order.
    outbox_east: Vec<RemoteArrival>,
    trace: Option<Vec<TraceEvent>>,
    /// Events handled and wall time spent in the run loops.
    events_processed: u64,
    run_wall: std::time::Duration,
}

/// A closed-loop, ack-clocked window flow — a fixed-window TCP-like
/// transfer: `window` data packets outstanding; each acknowledgement
/// arriving back at the sender clocks out the next data packet. This is
/// the mechanism behind the two-way-traffic dynamics (data/ACK
/// interaction, ACK compression) of the paper's refs [28, 29], which the
/// paper's probe compression mirrors.
#[derive(Debug, Clone)]
pub struct WindowFlow {
    /// Data packet size on the wire, bytes.
    pub data_bytes: u32,
    /// Acknowledgement size on the wire, bytes (40 for a bare TCP ACK).
    pub ack_bytes: u32,
    /// Window of data packets kept outstanding. For adaptive flows this is
    /// the **maximum** window (e.g. the receiver's advertised window); the
    /// congestion window moves below it.
    pub window: usize,
    /// `false`: the sender sits at node 0 (data travels outbound, ACKs
    /// inbound). `true`: the sender sits at the far end, so its **data**
    /// shares the inbound queues with returning probe/ACK traffic — the
    /// configuration that produces ACK compression.
    pub reverse: bool,
    /// `false`: fixed window (unresponsive, go-back-N retransmission).
    /// `true`: AIMD congestion control — additive increase (+1/cwnd per
    /// ACK) up to `window`, multiplicative decrease (halving, floor 1) on
    /// every loss — the congestion-avoidance behaviour of the paper's
    /// ref \[12\] (Jacobson), idealized with instant loss detection.
    pub adaptive: bool,
}

impl WindowFlow {
    /// A fixed-window (unresponsive) flow.
    pub fn fixed(data_bytes: u32, ack_bytes: u32, window: usize, reverse: bool) -> Self {
        WindowFlow {
            data_bytes,
            ack_bytes,
            window,
            reverse,
            adaptive: false,
        }
    }

    /// An AIMD (congestion-responsive) flow capped at `max_window`.
    pub fn aimd(data_bytes: u32, ack_bytes: u32, max_window: usize, reverse: bool) -> Self {
        WindowFlow {
            data_bytes,
            ack_bytes,
            window: max_window,
            reverse,
            adaptive: true,
        }
    }
}

#[derive(Debug)]
struct FlowState {
    spec: WindowFlow,
    next_seq: u64,
    /// Congestion window (== `spec.window` for fixed flows).
    cwnd: f64,
    /// Data packets currently in the network.
    in_flight: u64,
}

impl Engine {
    /// A fresh engine over `path`, with all randomness derived from `seed`.
    /// Identical seeds and identical injection sequences produce identical
    /// traces, bit for bit.
    pub fn new(path: Path, seed: u64) -> Self {
        let owned = 0..path.nodes.len();
        Engine::with_owned(path, seed, owned)
    }

    /// A partition engine owning the contiguous node range `owned` of
    /// `path`. It shares the global port/node indexing (and therefore the
    /// per-port RNG streams) with a serial engine over the same path, but
    /// must only be fed events for its own nodes; boundary crossings land
    /// in the outboxes.
    ///
    /// # Panics
    /// Panics if the range is empty or out of bounds.
    pub fn new_partition(path: Path, seed: u64, owned: Range<usize>) -> Self {
        assert!(
            !owned.is_empty() && owned.end <= path.nodes.len(),
            "invalid partition range {owned:?} for {} nodes",
            path.nodes.len()
        );
        Engine::with_owned(path, seed, owned)
    }

    fn with_owned(path: Path, seed: u64, owned: Range<usize>) -> Self {
        let links = path.links.len();
        let nodes = path.nodes.len();
        let mut ports = Vec::with_capacity(links * 2);
        for spec in &path.links {
            ports.push(Port::new(spec.clone()));
        }
        for spec in &path.links {
            ports.push(Port::new(spec.clone()));
        }
        let impair = (0..links * 2)
            .map(|i| ImpairmentState::new(port_stream_seed(seed, i)))
            .collect();
        // Admission streams sit after the 2L impairment streams.
        let port_rng = (0..links * 2)
            .map(|i| StdRng::seed_from_u64(port_stream_seed(seed, links * 2 + i)))
            .collect();
        let mut engine = Engine {
            path,
            owned,
            ports,
            impair,
            port_rng,
            events: EventQueue::new(),
            arena: PacketArena::new(),
            next_id: 0,
            dup_seq: vec![0; links * 2],
            reply_seq: vec![0; nodes],
            deliveries: Vec::new(),
            drops: Vec::new(),
            ttl_replies: Vec::new(),
            flows: Vec::new(),
            outbox_west: Vec::new(),
            outbox_east: Vec::new(),
            trace: None,
            events_processed: 0,
            run_wall: std::time::Duration::ZERO,
        };
        engine.arm_route_shifts();
        engine
    }

    /// Schedule the propagation changes declared by each link's impairment
    /// spec. Runs before any injection, in both [`Engine::new`] and
    /// [`Engine::reset`], so replays stay bit-identical.
    fn arm_route_shifts(&mut self) {
        for link in 0..self.path.links.len() {
            for k in 0..self.path.links[link].impair.route_shifts.len() {
                let shift = self.path.links[link].impair.route_shifts[k];
                self.events.schedule(
                    shift.at,
                    Ev::SetPropagation {
                        link: link as u32,
                        value: shift.propagation,
                    },
                );
            }
        }
    }

    /// Return the engine to the state [`Engine::new`] would produce for the
    /// same path and the given `seed`, **reusing** every buffer allocation:
    /// ports, event queue, arena, delivery/drop/trace vectors are cleared
    /// in place rather than reallocated. A reset engine produces
    /// bit-identical traces to a freshly constructed one.
    ///
    /// Scheduled propagation changes mutate the path during a run; the
    /// original link parameters are restored here from the (immutable) port
    /// specs.
    pub fn reset(&mut self, seed: u64) {
        let links = self.path.links.len();
        for (i, spec) in self.path.links.iter_mut().enumerate() {
            *spec = self.ports[i].spec.clone();
        }
        for p in &mut self.ports {
            p.reset();
        }
        for (i, st) in self.impair.iter_mut().enumerate() {
            st.reset(port_stream_seed(seed, i));
        }
        for (i, rng) in self.port_rng.iter_mut().enumerate() {
            *rng = StdRng::seed_from_u64(port_stream_seed(seed, links * 2 + i));
        }
        self.events.clear();
        self.arena.clear();
        self.next_id = 0;
        self.dup_seq.fill(0);
        self.reply_seq.fill(0);
        self.deliveries.clear();
        self.drops.clear();
        self.ttl_replies.clear();
        self.flows.clear();
        self.outbox_west.clear();
        self.outbox_east.clear();
        if let Some(t) = &mut self.trace {
            t.clear();
        }
        self.events_processed = 0;
        self.run_wall = std::time::Duration::ZERO;
        self.arm_route_shifts();
    }

    /// Pre-size the result buffers for a run expected to inject about
    /// `probes` probe packets and `cross` cross-traffic packets, so the hot
    /// loop never reallocates them.
    pub fn reserve(&mut self, probes: usize, cross: usize) {
        // Every cross packet and most probes produce a delivery record.
        self.deliveries.reserve(probes + cross);
        self.drops.reserve(probes / 4 + cross / 4);
        self.arena.reserve(probes + cross);
    }

    /// Work counters for this engine (see [`EngineStats`]).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            events_processed: self.events_processed,
            peak_queue_depth: self.events.peak_len(),
            wall: self.run_wall,
        }
    }

    /// The simulated path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The contiguous node range this engine owns (the whole path for a
    /// serial engine).
    pub fn owned_nodes(&self) -> Range<usize> {
        self.owned.clone()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Timestamp of the engine's next pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Index into the port array for (`link`, `direction`).
    pub fn port_index(&self, link: usize, direction: Direction) -> usize {
        assert!(link < self.path.links.len(), "link index out of range");
        match direction {
            Direction::Outbound => link,
            Direction::Inbound => self.path.links.len() + link,
        }
    }

    /// The port serving (`link`, `direction`).
    pub fn port(&self, link: usize, direction: Direction) -> &Port {
        &self.ports[self.port_index(link, direction)]
    }

    /// Start recording a per-packet event trace (for tests and debugging).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Take the recorded trace, leaving tracing enabled.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    fn record(&mut self, at: SimTime, port: Option<usize>, r: PacketRef, kind: TraceKind) {
        if self.trace.is_some() {
            let p = self.arena.get(r);
            let (packet, class, seq) = (p.id, p.class, p.seq);
            if let Some(t) = &mut self.trace {
                t.push(TraceEvent {
                    at,
                    port,
                    packet,
                    class,
                    seq,
                    kind,
                });
            }
        }
    }

    fn fresh_id(&mut self) -> PacketId {
        let id = PacketId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Schedule a probe of `size` bytes with sequence number `seq` to enter
    /// the network at instant `at` (must not be in the simulated past).
    pub fn inject_probe(&mut self, at: SimTime, size: u32, seq: u64) {
        self.inject_probe_with_ttl(at, size, seq, DEFAULT_TTL)
    }

    /// As [`Engine::inject_probe`] but with an explicit TTL — the primitive
    /// behind route discovery.
    pub fn inject_probe_with_ttl(&mut self, at: SimTime, size: u32, seq: u64, ttl: u8) {
        let id = self.fresh_id();
        self.inject_probe_with_id(at, size, seq, ttl, id);
    }

    /// As [`Engine::inject_probe_with_ttl`] but with an explicit packet id,
    /// bypassing the engine's injection counter. Partitioned runs use this
    /// to assign the exact ids a serial engine would have produced for the
    /// same injection sequence.
    pub fn inject_probe_with_id(
        &mut self,
        at: SimTime,
        size: u32,
        seq: u64,
        ttl: u8,
        id: PacketId,
    ) {
        debug_assert!(id.0 < LOCAL_LANE, "packet id too large for lane keying");
        let packet = Packet {
            id,
            class: FlowClass::Probe,
            flow: 0,
            size,
            seq,
            injected_at: at,
            ttl,
            direction: Direction::Outbound,
            corrupted: false,
            echoed_at: None,
        };
        let r = self.arena.alloc(packet);
        self.events.schedule(at, Ev::Arrive { port: 0, r });
    }

    /// Register a closed-loop window flow and launch its initial window at
    /// instant `start`. Returns the flow id found in
    /// [`Delivery::flow`](crate::packet::Delivery) records.
    ///
    /// # Panics
    /// Panics if the window is zero.
    pub fn add_window_flow(&mut self, spec: WindowFlow, start: SimTime) -> u32 {
        assert!(spec.window > 0, "window must be positive");
        let id = (self.flows.len() + 1) as u32;
        let cwnd = if spec.adaptive {
            2.0_f64.min(spec.window as f64)
        } else {
            spec.window as f64
        };
        self.flows.push(FlowState {
            spec,
            next_seq: 0,
            cwnd,
            in_flight: 0,
        });
        self.flow_fill_window(id, start);
        id
    }

    /// Current congestion window of a flow (for tests and instrumentation).
    pub fn flow_cwnd(&self, flow: u32) -> f64 {
        self.flows[flow as usize - 1].cwnd
    }

    /// Send new data packets while the (congestion) window allows.
    fn flow_fill_window(&mut self, flow: u32, at: SimTime) {
        loop {
            let state = &self.flows[flow as usize - 1];
            let allowed = (state.cwnd.floor() as u64).clamp(1, state.spec.window as u64);
            if state.in_flight >= allowed {
                return;
            }
            self.inject_window_packet(flow, at);
        }
    }

    /// A delivered ACK: free a window slot and grow the adaptive window
    /// (additive increase: +1/cwnd per ACK ≈ +1 per round trip).
    fn on_window_ack(&mut self, flow: u32, at: SimTime) {
        let state = &mut self.flows[flow as usize - 1];
        state.in_flight = state.in_flight.saturating_sub(1);
        if state.spec.adaptive {
            state.cwnd = (state.cwnd + 1.0 / state.cwnd).min(state.spec.window as f64);
        }
        self.flow_fill_window(flow, at);
    }

    /// A lost packet (anywhere in the loop): free the slot; adaptive flows
    /// halve the window (multiplicative decrease, floor 1). The lost data
    /// is retransmitted as a fresh packet when the window re-opens.
    fn on_window_loss(&mut self, flow: u32, at: SimTime) {
        let state = &mut self.flows[flow as usize - 1];
        state.in_flight = state.in_flight.saturating_sub(1);
        if state.spec.adaptive {
            state.cwnd = (state.cwnd / 2.0).max(1.0);
        }
        self.flow_fill_window(flow, at);
    }

    fn inject_window_packet(&mut self, flow: u32, at: SimTime) {
        let id = self.fresh_id();
        let state = &mut self.flows[flow as usize - 1];
        let seq = state.next_seq;
        state.next_seq += 1;
        state.in_flight += 1;
        let reverse = state.spec.reverse;
        let size = state.spec.data_bytes;
        let packet = Packet {
            id,
            class: FlowClass::Window,
            flow,
            size,
            seq,
            injected_at: at,
            ttl: DEFAULT_TTL,
            direction: if reverse {
                Direction::Inbound
            } else {
                Direction::Outbound
            },
            corrupted: false,
            echoed_at: None,
        };
        let port = if reverse {
            // Sender at the far end: first hop is the last link, inbound.
            self.port_index(self.path.links.len() - 1, Direction::Inbound)
        } else {
            0
        };
        let at = at.max(self.events.now());
        let r = self.arena.alloc(packet);
        self.events.schedule(
            at,
            Ev::Arrive {
                port: port as u32,
                r,
            },
        );
    }

    /// Attach a pre-generated cross-traffic arrival sequence to the queue of
    /// (`link`, `direction`). Each `(time, size)` becomes one Internet
    /// packet that competes with the probes for that port's server and then
    /// leaves the system.
    pub fn attach_cross_traffic<I>(&mut self, link: usize, direction: Direction, arrivals: I)
    where
        I: IntoIterator<Item = (SimTime, u32)>,
    {
        let port = self.port_index(link, direction);
        for (i, (at, size)) in arrivals.into_iter().enumerate() {
            let id = self.fresh_id();
            self.attach_cross_packet(port, at, size, i as u64, direction, id);
        }
    }

    /// As [`Engine::attach_cross_traffic`] but with explicit packet ids
    /// `base_id, base_id + 1, …`, bypassing the injection counter — the
    /// partitioned-run counterpart that reproduces serial id assignment.
    pub fn attach_cross_traffic_with_base_id<I>(
        &mut self,
        link: usize,
        direction: Direction,
        arrivals: I,
        base_id: u64,
    ) where
        I: IntoIterator<Item = (SimTime, u32)>,
    {
        let port = self.port_index(link, direction);
        for (i, (at, size)) in arrivals.into_iter().enumerate() {
            let id = PacketId(base_id + i as u64);
            self.attach_cross_packet(port, at, size, i as u64, direction, id);
        }
    }

    fn attach_cross_packet(
        &mut self,
        port: usize,
        at: SimTime,
        size: u32,
        seq: u64,
        direction: Direction,
        id: PacketId,
    ) {
        debug_assert!(id.0 < LOCAL_LANE, "packet id too large for lane keying");
        let packet = Packet {
            id,
            class: FlowClass::Cross,
            flow: 0,
            size,
            seq,
            injected_at: at,
            ttl: DEFAULT_TTL,
            direction,
            corrupted: false,
            echoed_at: None,
        };
        let r = self.arena.alloc(packet);
        self.events.schedule(
            at,
            Ev::Arrive {
                port: port as u32,
                r,
            },
        );
    }

    /// Schedule a change of link `link`'s one-way propagation delay at
    /// instant `at` — the paper’s cited companion work (ref \[21\]) observed
    /// route changes through exactly the RTT baseline shifts this models.
    /// Packets already in flight on the link keep their old delay; packets
    /// transmitted after `at` see the new one.
    ///
    /// # Panics
    /// Panics if the link index is out of range.
    pub fn schedule_propagation_change(&mut self, link: usize, at: SimTime, value: SimDuration) {
        assert!(link < self.path.links.len(), "link index out of range");
        self.events.schedule(
            at,
            Ev::SetPropagation {
                link: link as u32,
                value,
            },
        );
    }

    /// Accept a packet that crossed a partition boundary from a neighbor.
    /// The arrival is keyed by the packet id, so the receiving queue orders
    /// simultaneous boundary arrivals identically to a serial run.
    ///
    /// # Panics
    /// Panics (debug) if the arrival's node is not owned by this engine or
    /// lies in the simulated past.
    pub fn deliver_remote(&mut self, arrival: RemoteArrival) {
        debug_assert!(
            self.owned.contains(&arrival.node),
            "remote arrival at node {} outside owned range {:?}",
            arrival.node,
            self.owned
        );
        let lane = arrival.packet.id.0;
        debug_assert!(lane < LOCAL_LANE, "packet id too large for lane keying");
        let r = self.arena.alloc(arrival.packet);
        self.events.schedule_keyed(
            arrival.at,
            lane,
            Ev::NodeArrival {
                node: arrival.node as u32,
                r,
            },
        );
    }

    /// Take the boundary crossings produced since the last call:
    /// `(westbound, eastbound)` — packets headed to lower- and
    /// higher-numbered nodes respectively, in send order.
    pub fn take_outboxes(&mut self) -> (Vec<RemoteArrival>, Vec<RemoteArrival>) {
        (
            std::mem::take(&mut self.outbox_west),
            std::mem::take(&mut self.outbox_east),
        )
    }

    /// Run until no events remain.
    pub fn run(&mut self) {
        let started = std::time::Instant::now(); // probenet-lint: allow(wall-clock-in-sim, tainted-artifact-path) EngineStats wall-time observability, not sim data
        while self.events.begin_bucket() {
            while let Some((at, ev)) = self.events.pop_in_bucket() {
                self.handle(at, ev);
            }
        }
        self.run_wall += started.elapsed();
        self.finalize_ports();
    }

    /// Run all events scheduled at or before `horizon`; later events stay
    /// queued. Port statistics are folded up to the last processed event.
    pub fn run_until(&mut self, horizon: SimTime) {
        let started = std::time::Instant::now(); // probenet-lint: allow(wall-clock-in-sim, tainted-artifact-path) EngineStats wall-time observability, not sim data
        while let Some((at, ev)) = self.events.pop_until(horizon) {
            self.handle(at, ev);
        }
        self.run_wall += started.elapsed();
        self.finalize_ports();
    }

    fn finalize_ports(&mut self) {
        let now = self.events.now();
        for p in &mut self.ports {
            p.finalize(now);
        }
    }

    fn handle(&mut self, at: SimTime, ev: Ev) {
        self.events_processed += 1;
        match ev {
            Ev::Arrive { port, r } => self.on_arrive(at, port as usize, r),
            Ev::TxDone { port } => self.on_tx_done(at, port as usize),
            Ev::NodeArrival { node, r } => self.on_node_arrival(at, node as usize, r),
            Ev::SetPropagation { link, value } => {
                self.path.links[link as usize].propagation = value;
            }
            Ev::Admit { port, r } => self.admit(at, port as usize, r),
        }
    }

    /// Handle a same-instant hop inline instead of round-tripping it
    /// through the event queue; counted as a logical event so
    /// `events_processed` stays comparable across engine versions.
    fn dispatch_arrive(&mut self, at: SimTime, port: usize, r: PacketRef) {
        self.events_processed += 1;
        self.on_arrive(at, port, r);
    }

    /// A packet reaches a port: run the link's fault injectors first, then
    /// hand the survivors to [`Engine::admit`]. Inert specs skip straight
    /// to admission without touching the impairment RNG stream, so paths
    /// built before the impairment layer behave bit-identically.
    fn on_arrive(&mut self, at: SimTime, port: usize, r: PacketRef) {
        if !self.ports[port].impair_inert {
            // Window data and control replies stay single-copy: their
            // accounting (ack clocking, reply bookkeeping) assumes exactly
            // one instance of each packet in the network.
            let dup_eligible =
                matches!(self.arena.get(r).class, FlowClass::Probe | FlowClass::Cross);
            // `ports` and `impair` are distinct fields, so the spec borrow
            // and the mutable state borrow do not conflict.
            let fate = self.impair[port].evaluate(&self.ports[port].spec.impair, at, dup_eligible);
            match fate {
                Fate::Dropped(reason) => {
                    let kind = match reason {
                        DropReason::LinkDown => TraceKind::LinkDownDrop,
                        _ => TraceKind::BurstDrop,
                    };
                    self.record(at, Some(port), r, kind);
                    self.ports[port].note_impair_drop();
                    self.note_drop(at, port, r, reason);
                    return;
                }
                Fate::Forward {
                    corrupt,
                    duplicate,
                    defer,
                } => {
                    if corrupt && !self.arena.get(r).corrupted {
                        self.arena.get_mut(r).corrupted = true;
                        self.record(at, Some(port), r, TraceKind::CorruptMark);
                    }
                    if let Some(offset) = duplicate {
                        // The copy's id is derived from the duplicating
                        // port and a per-port counter, not a global one, so
                        // it is identical in serial and partitioned runs.
                        let id = PacketId(
                            RUNTIME_ID_BIT | ((port as u64) << ID_SITE_SHIFT) | self.dup_seq[port],
                        );
                        self.dup_seq[port] += 1;
                        let mut copy = self.arena.get(r).clone();
                        copy.id = id;
                        let cr = self.arena.alloc(copy);
                        self.record(at, Some(port), cr, TraceKind::Duplicated);
                        self.events.schedule(
                            at + offset,
                            Ev::Admit {
                                port: port as u32,
                                r: cr,
                            },
                        );
                    }
                    if let Some(delay) = defer {
                        self.record(at, Some(port), r, TraceKind::Deferred);
                        self.events.schedule(
                            at + delay,
                            Ev::Admit {
                                port: port as u32,
                                r,
                            },
                        );
                        return;
                    }
                }
            }
        }
        self.admit(at, port, r);
    }

    /// Admission into a port's queue, downstream of the fault injectors.
    fn admit(&mut self, at: SimTime, port: usize, r: PacketRef) {
        // Random loss models a faulty interface on the link: the packet is
        // destroyed before it can be queued (paper ref [17]). Lossless
        // links draw nothing, keeping each port's stream in lockstep with
        // its own arrival sequence.
        let p = self.ports[port].spec.random_loss;
        if p > 0.0 && self.port_rng[port].gen::<f64>() < p {
            self.record(at, Some(port), r, TraceKind::RandomDrop);
            self.ports[port].note_random_drop();
            self.note_drop(at, port, r, DropReason::RandomLoss);
            return;
        }
        let size = self.arena.get(r).size;
        let rng = &mut self.port_rng[port];
        match self.ports[port].offer(at, r, size, || rng.gen()) {
            Admission::StartService(d) => {
                self.record(at, Some(port), r, TraceKind::Enqueue);
                self.record(at, Some(port), r, TraceKind::TxStart);
                self.events
                    .schedule(at + d, Ev::TxDone { port: port as u32 });
            }
            Admission::Queued => {
                self.record(at, Some(port), r, TraceKind::Enqueue);
            }
            Admission::Overflow => {
                self.record(at, Some(port), r, TraceKind::OverflowDrop);
                self.note_drop(at, port, r, DropReason::BufferOverflow);
            }
            Admission::EarlyDrop => {
                self.record(at, Some(port), r, TraceKind::EarlyDrop);
                self.note_drop(at, port, r, DropReason::EarlyDrop);
            }
        }
    }

    fn on_tx_done(&mut self, at: SimTime, port: usize) {
        let (r, next) = self.ports[port].complete(at);
        self.record(at, Some(port), r, TraceKind::TxDone);
        if let Some(d) = next {
            self.events
                .schedule(at + d, Ev::TxDone { port: port as u32 });
        }
        match self.arena.get(r).class {
            FlowClass::Cross => {
                // Cross traffic leaves the system after its attachment queue;
                // its only role is to compete for the server (Figure 3).
                let delivered_at = at + self.ports[port].spec.propagation;
                let packet = self.arena.take(r);
                self.deliveries.push(Delivery {
                    id: packet.id,
                    class: packet.class,
                    flow: 0,
                    seq: packet.seq,
                    injected_at: packet.injected_at,
                    echoed_at: None,
                    delivered_at,
                });
            }
            FlowClass::Probe | FlowClass::Control | FlowClass::Window => {
                let links = self.path.links.len();
                let (link, node) = if port < links {
                    (port, port + 1) // outbound over link `port`
                } else {
                    (port - links, port - links) // inbound over link `port-links`
                };
                let t = at + self.path.links[link].propagation;
                if self.owned.contains(&node) {
                    let lane = self.arena.get(r).id.0;
                    debug_assert!(lane < LOCAL_LANE, "packet id too large for lane keying");
                    self.events.schedule_keyed(
                        t,
                        lane,
                        Ev::NodeArrival {
                            node: node as u32,
                            r,
                        },
                    );
                } else {
                    // Boundary crossing: hand the packet to the neighbor.
                    let arrival = RemoteArrival {
                        at: t,
                        node,
                        packet: self.arena.take(r),
                    };
                    if node < self.owned.start {
                        self.outbox_west.push(arrival);
                    } else {
                        self.outbox_east.push(arrival);
                    }
                }
            }
        }
    }

    fn on_node_arrival(&mut self, at: SimTime, node: usize, r: PacketRef) {
        let last = self.path.nodes.len() - 1;
        let (corrupted, direction, class, flow) = {
            let p = self.arena.get(r);
            (p.corrupted, p.direction, p.class, p.flow)
        };
        // Routers forward corrupted packets (they only checksum the IP
        // header); the first endpoint that decodes the payload sees the bad
        // wire checksum and discards the packet.
        if corrupted {
            let at_endpoint = match direction {
                Direction::Outbound => node == last,
                Direction::Inbound => node == 0,
            };
            if at_endpoint {
                self.record(at, None, r, TraceKind::ChecksumDrop);
                self.note_drop(at, usize::MAX, r, DropReason::Corrupted);
                return;
            }
        }
        let reverse_flow = class == FlowClass::Window && self.flows[flow as usize - 1].spec.reverse;
        match direction {
            Direction::Outbound => {
                if node == last {
                    if reverse_flow {
                        // The far end is this flow's home: ACK received.
                        self.deliver(at, r);
                        return;
                    }
                    // Echo host: turn the packet around immediately (§2),
                    // stamping the echo instant into the packet. Window
                    // data is acknowledged with an ACK-sized packet.
                    self.record(at, None, r, TraceKind::Echoed);
                    let ack_bytes = if class == FlowClass::Window {
                        Some(self.flows[flow as usize - 1].spec.ack_bytes)
                    } else {
                        None
                    };
                    {
                        let p = self.arena.get_mut(r);
                        p.echoed_at = Some(at);
                        p.direction = Direction::Inbound;
                        if let Some(size) = ack_bytes {
                            p.size = size;
                        }
                    }
                    let port = self.port_index(node - 1, Direction::Inbound);
                    self.dispatch_arrive(at, port, r);
                    return;
                }
                // Intermediate router: forwarding decrements TTL.
                let ttl = {
                    let p = self.arena.get_mut(r);
                    p.ttl = p.ttl.saturating_sub(1);
                    p.ttl
                };
                if ttl == 0 {
                    self.expire_ttl(at, node, r);
                    return;
                }
                let port = self.port_index(node, Direction::Outbound);
                self.dispatch_arrive(at, port, r);
            }
            Direction::Inbound => {
                if node == 0 {
                    if reverse_flow {
                        // Node 0 echoes the reverse flow's data as an ACK.
                        self.record(at, None, r, TraceKind::Echoed);
                        let ack_bytes = self.flows[flow as usize - 1].spec.ack_bytes;
                        {
                            let p = self.arena.get_mut(r);
                            p.echoed_at = Some(at);
                            p.direction = Direction::Outbound;
                            p.size = ack_bytes;
                        }
                        let port = self.port_index(0, Direction::Outbound);
                        self.dispatch_arrive(at, port, r);
                        return;
                    }
                    self.deliver(at, r);
                    return;
                }
                let ttl = {
                    let p = self.arena.get_mut(r);
                    p.ttl = p.ttl.saturating_sub(1);
                    p.ttl
                };
                if ttl == 0 {
                    self.expire_ttl(at, node, r);
                    return;
                }
                let port = self.port_index(node - 1, Direction::Inbound);
                self.dispatch_arrive(at, port, r);
            }
        }
    }

    fn expire_ttl(&mut self, at: SimTime, node: usize, r: PacketRef) {
        self.record(at, None, r, TraceKind::TtlExpired);
        // Routers drop the packet; for probes they answer with a
        // time-exceeded message routed back through the regular queues.
        let packet = self.arena.take(r);
        self.drops.push(DropRecord {
            id: packet.id,
            class: packet.class,
            seq: packet.seq,
            at,
            port: usize::MAX,
            reason: DropReason::TtlExpired,
        });
        if packet.class == FlowClass::Window {
            self.on_window_loss(packet.flow, at);
            return;
        }
        if packet.class != FlowClass::Probe {
            return;
        }
        // Reply ids are derived from the expiring node and a per-node
        // counter — identical in serial and partitioned runs. The origin
        // node rides in `flow`, so the reply needs no engine-side lookup
        // table when it is finally delivered (possibly in a different
        // partition).
        let id = PacketId(
            RUNTIME_ID_BIT | REPLY_ID_BIT | ((node as u64) << ID_SITE_SHIFT) | self.reply_seq[node],
        );
        self.reply_seq[node] += 1;
        let reply = Packet {
            id,
            class: FlowClass::Control,
            flow: node as u32,
            size: TTL_REPLY_SIZE,
            seq: packet.seq,
            injected_at: packet.injected_at,
            ttl: DEFAULT_TTL,
            direction: Direction::Inbound,
            corrupted: false,
            echoed_at: None,
        };
        let rr = self.arena.alloc(reply);
        let port = self.port_index(node - 1, Direction::Inbound);
        self.dispatch_arrive(at, port, rr);
    }

    fn deliver(&mut self, at: SimTime, r: PacketRef) {
        self.record(at, None, r, TraceKind::Delivered);
        let packet = self.arena.take(r);
        match packet.class {
            FlowClass::Control => {
                self.ttl_replies.push(TtlExceeded {
                    probe_seq: packet.seq,
                    node: packet.flow as usize,
                    received_at: at,
                });
            }
            _ => {
                self.deliveries.push(Delivery {
                    id: packet.id,
                    class: packet.class,
                    flow: packet.flow,
                    seq: packet.seq,
                    injected_at: packet.injected_at,
                    echoed_at: packet.echoed_at,
                    delivered_at: at,
                });
                // Ack-clocking: a delivered acknowledgement opens the
                // window for the next data packet, immediately.
                if packet.class == FlowClass::Window {
                    self.on_window_ack(packet.flow, at);
                }
            }
        }
    }

    fn note_drop(&mut self, at: SimTime, port: usize, r: PacketRef, reason: DropReason) {
        let packet = self.arena.take(r);
        self.drops.push(DropRecord {
            id: packet.id,
            class: packet.class,
            seq: packet.seq,
            at,
            port,
            reason,
        });
        // A reliable window flow retransmits what the network loses — the
        // loss is recorded above, the window slot freed (and halved for
        // AIMD flows), and fresh data sent when the window allows; the
        // loss-detection timeout is idealized to zero.
        if packet.class == FlowClass::Window {
            self.on_window_loss(packet.flow, at);
        }
    }

    /// All completed round trips (probes) and cross-traffic departures, in
    /// completion order.
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// All packet losses, in drop order.
    pub fn drops(&self) -> &[DropRecord] {
        &self.drops
    }

    /// TTL-exceeded notifications received back at the source.
    pub fn ttl_replies(&self) -> &[TtlExceeded] {
        &self.ttl_replies
    }

    /// Round-trip deliveries of probe packets only.
    pub fn probe_deliveries(&self) -> impl Iterator<Item = &Delivery> {
        self.deliveries
            .iter()
            .filter(|d| d.class == FlowClass::Probe)
    }
}

/// Discover the route of a path exactly as `traceroute` does: send probes
/// with TTL = 1, 2, … and collect the names of the nodes that answer with
/// time-exceeded messages, until the echo host itself answers.
///
/// Like real traceroute, three probes go out per TTL, because individual
/// probes (or their time-exceeded replies) can be eaten by the path's
/// random link loss; the first reply per hop wins. A hop only goes
/// unreported if all three of its probes die.
///
/// Returns the node names in hop order (excluding the source), i.e. the
/// paper's Tables 1 and 2. `probe_spacing` separates successive probes so
/// they do not queue behind each other.
pub fn discover_route(path: &Path, probe_spacing: SimDuration) -> Vec<String> {
    const ATTEMPTS: u64 = 3;
    let hops = path.hop_count() as u64;
    let mut engine = Engine::new(path.clone(), 0);
    for attempt in 0..ATTEMPTS {
        for k in 1..=hops {
            let seq = attempt * hops + k;
            let at = SimTime::ZERO + probe_spacing * seq;
            // The final probe must survive the return trip too, so it gets
            // a full TTL; its echo identifies the last node (real
            // traceroute likewise relies on a reply from the destination).
            let ttl = if k == hops { DEFAULT_TTL } else { k as u8 };
            engine.inject_probe_with_ttl(at, 32, seq, ttl);
        }
    }
    engine.run();
    // seq = attempt·hops + k with k ∈ 1..=hops, so the probed hop is
    // recoverable from any reply's sequence number.
    let hop_of = |seq: u64| ((seq - 1) % hops) as usize;
    let mut by_hop: Vec<Option<String>> = vec![None; hops as usize];
    for r in engine.ttl_replies() {
        let k = hop_of(r.probe_seq);
        if by_hop[k].is_none() {
            by_hop[k] = Some(path.nodes[r.node].clone());
        }
    }
    // Full-TTL probes reach the echo host and return as regular echoes.
    for d in engine.probe_deliveries() {
        let k = hop_of(d.seq);
        if by_hop[k].is_none() {
            by_hop[k] = Some(path.nodes[hops as usize].clone());
        }
    }
    by_hop.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{BufferLimit, LinkSpec};

    fn simple_path(bw: u64, prop_ms: u64) -> Path {
        Path::new(
            vec!["src".into(), "echo".into()],
            vec![LinkSpec::new(bw, SimDuration::from_millis(prop_ms))],
        )
    }

    #[test]
    fn single_probe_rtt_is_exact() {
        // 32 B at 128 kb/s = 2 ms tx per direction; 10 ms propagation each
        // way: RTT = 2*(2 + 10) = 24 ms.
        let mut e = Engine::new(simple_path(128_000, 10), 1);
        e.inject_probe(SimTime::ZERO, 32, 0);
        e.run();
        let d: Vec<_> = e.probe_deliveries().collect();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rtt(), SimDuration::from_millis(24));
    }

    #[test]
    fn periodic_probes_unloaded_rtt_constant() {
        let mut e = Engine::new(simple_path(128_000, 10), 1);
        for n in 0..100u64 {
            e.inject_probe(SimTime::from_millis(50 * n), 32, n);
        }
        e.run();
        let rtts: Vec<_> = e.probe_deliveries().map(|d| d.rtt()).collect();
        assert_eq!(rtts.len(), 100);
        assert!(rtts.iter().all(|&r| r == SimDuration::from_millis(24)));
    }

    #[test]
    fn probes_faster_than_bottleneck_compress_to_service_rate() {
        // δ = 1 ms < P/μ = 2 ms: probes pile up and leave the bottleneck
        // spaced exactly P/μ apart — the probe-compression phenomenon.
        let mut e = Engine::new(simple_path(128_000, 10), 1);
        for n in 0..10u64 {
            e.inject_probe(SimTime::from_millis(n), 32, n);
        }
        e.run();
        let mut recv: Vec<_> = e.probe_deliveries().map(|d| d.delivered_at).collect();
        recv.sort();
        assert_eq!(recv.len(), 10);
        for w in recv.windows(2) {
            assert_eq!(w[1] - w[0], SimDuration::from_millis(2));
        }
    }

    #[test]
    fn finite_buffer_overflows_under_saturation() {
        let path = Path::new(
            vec!["src".into(), "echo".into()],
            vec![LinkSpec::new(128_000, SimDuration::ZERO).with_buffer(BufferLimit::Packets(2))],
        );
        let mut e = Engine::new(path, 1);
        // 100 probes injected simultaneously: 1 in service + 2 queued
        // survive the outbound port; the rest overflow.
        for n in 0..100u64 {
            e.inject_probe(SimTime::ZERO, 32, n);
        }
        e.run();
        assert_eq!(e.probe_deliveries().count(), 3);
        assert_eq!(
            e.drops()
                .iter()
                .filter(|d| d.reason == DropReason::BufferOverflow)
                .count(),
            97
        );
    }

    #[test]
    fn cross_traffic_delays_probes() {
        // A 512-byte Internet packet arrives just before the probe: the
        // probe waits 32 ms (its service at 128 kb/s) extra.
        let mut e = Engine::new(simple_path(128_000, 10), 1);
        e.attach_cross_traffic(
            0,
            Direction::Outbound,
            vec![(SimTime::from_millis(5), 512u32)],
        );
        e.inject_probe(SimTime::from_millis(5), 32, 0);
        e.run();
        let d: Vec<_> = e.probe_deliveries().collect();
        assert_eq!(d.len(), 1);
        // Base 24 ms + 32 ms behind the FTP-sized packet.
        assert_eq!(d[0].rtt(), SimDuration::from_millis(56));
    }

    #[test]
    fn random_loss_is_applied_per_packet() {
        let path = Path::new(
            vec!["src".into(), "echo".into()],
            vec![LinkSpec::new(10_000_000, SimDuration::ZERO).with_random_loss(0.3)],
        );
        let mut e = Engine::new(path, 42);
        for n in 0..2000u64 {
            e.inject_probe(SimTime::from_millis(n), 32, n);
        }
        e.run();
        let delivered = e.probe_deliveries().count();
        let dropped = e
            .drops()
            .iter()
            .filter(|d| d.reason == DropReason::RandomLoss)
            .count();
        assert_eq!(delivered + dropped, 2000);
        // Loss is applied once per port traversal (out + back): the survival
        // probability is (1-0.3)^2 = 0.49.
        let survival = delivered as f64 / 2000.0;
        assert!(
            (survival - 0.49).abs() < 0.05,
            "survival {survival} far from 0.49"
        );
    }

    #[test]
    fn identical_seeds_identical_traces() {
        let run = |seed| {
            let path = Path::inria_umd_1992();
            let mut e = Engine::new(path, seed);
            e.enable_trace();
            for n in 0..200u64 {
                e.inject_probe(SimTime::from_millis(20 * n), 32, n);
            }
            e.run();
            let t = e.take_trace();
            (t.len(), e.probe_deliveries().count(), e.drops().len())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn different_seeds_differ_with_random_loss() {
        let run = |seed| {
            let path = Path::new(
                vec!["src".into(), "echo".into()],
                vec![LinkSpec::new(10_000_000, SimDuration::ZERO).with_random_loss(0.2)],
            );
            let mut e = Engine::new(path, seed);
            for n in 0..500u64 {
                e.inject_probe(SimTime::from_millis(n), 32, n);
            }
            e.run();
            e.probe_deliveries().map(|d| d.seq).collect::<Vec<_>>()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn route_discovery_reproduces_table1() {
        let path = Path::inria_umd_1992();
        let route = discover_route(&path, SimDuration::from_millis(500));
        assert_eq!(route.len(), 10);
        assert_eq!(route[0], "tom.inria.fr");
        assert_eq!(route[4], "Ithaca.NY.NSS.NSF.NET");
        assert_eq!(route[9], "avwhub-gw.umd.edu");
    }

    #[test]
    fn route_discovery_reproduces_table2() {
        let path = Path::umd_pitt_1993();
        let route = discover_route(&path, SimDuration::from_millis(200));
        assert_eq!(route.len(), 13);
        assert_eq!(route[0], "avw1hub-gw.umd.edu");
        assert_eq!(route[12], "hub-eh.gw.pitt.edu");
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut e = Engine::new(simple_path(128_000, 10), 1);
        for n in 0..10u64 {
            e.inject_probe(SimTime::from_millis(100 * n), 32, n);
        }
        e.run_until(SimTime::from_millis(450));
        // Probes 0..4 injected by 400 ms have completed (RTT 24 ms each);
        // probe 5 at 500 ms has not even been injected.
        assert_eq!(e.probe_deliveries().count(), 5);
        e.run();
        assert_eq!(e.probe_deliveries().count(), 10);
    }

    #[test]
    fn conservation_probes_delivered_plus_dropped() {
        let path = Path::inria_umd_1992();
        let mut e = Engine::new(path, 3);
        let n_probes = 500u64;
        for n in 0..n_probes {
            e.inject_probe(SimTime::from_millis(8 * n), 32, n);
        }
        e.run();
        let delivered = e.probe_deliveries().count() as u64;
        let dropped = e
            .drops()
            .iter()
            .filter(|d| d.class == FlowClass::Probe)
            .count() as u64;
        assert_eq!(delivered + dropped, n_probes);
    }

    #[test]
    fn reset_engine_replays_bit_identically() {
        let path = Path::inria_umd_1992();
        let drive = |e: &mut Engine| {
            for n in 0..300u64 {
                e.inject_probe(SimTime::from_millis(10 * n), 32, n);
            }
            e.run();
            let seqs: Vec<u64> = e.probe_deliveries().map(|d| d.seq).collect();
            let rtts: Vec<_> = e.probe_deliveries().map(|d| d.rtt()).collect();
            (seqs, rtts, e.drops().len(), e.stats().events_processed)
        };
        let mut fresh = Engine::new(path.clone(), 11);
        let first = drive(&mut fresh);

        // Drive a *different* seed in between, then reset back to 11: the
        // replay must match the fresh run exactly.
        let mut reused = Engine::new(path, 99);
        drive(&mut reused);
        reused.reset(11);
        assert_eq!(drive(&mut reused), first);
    }

    #[test]
    fn reset_restores_scheduled_propagation_changes() {
        let mut e = Engine::new(simple_path(128_000, 10), 1);
        e.schedule_propagation_change(0, SimTime::from_millis(1), SimDuration::from_millis(50));
        e.inject_probe(SimTime::from_millis(2), 32, 0);
        e.run();
        let slow = e.probe_deliveries().next().unwrap().rtt();
        assert!(slow > SimDuration::from_millis(100), "rtt {slow:?}");

        // After reset the link is back to its configured 10 ms.
        e.reset(1);
        e.inject_probe(SimTime::from_millis(2), 32, 0);
        e.run();
        assert_eq!(
            e.probe_deliveries().next().unwrap().rtt(),
            SimDuration::from_millis(24)
        );
    }

    #[test]
    fn stats_count_events_and_queue_depth() {
        let mut e = Engine::new(simple_path(128_000, 10), 1);
        for n in 0..50u64 {
            e.inject_probe(SimTime::from_millis(50 * n), 32, n);
        }
        e.run();
        let stats = e.stats();
        // Each probe generates at least Arrive + TxDone per direction plus
        // node arrivals: well over 4 logical events.
        assert!(stats.events_processed >= 200, "{stats:?}");
        assert!(stats.peak_queue_depth >= 50, "{stats:?}");
    }

    #[test]
    fn port_utilization_reflects_load() {
        let mut e = Engine::new(simple_path(128_000, 0), 1);
        // Saturate: probes every 2 ms, each taking 2 ms to serve.
        for n in 0..1000u64 {
            e.inject_probe(SimTime::from_millis(2 * n), 32, n);
        }
        e.run();
        let now = e.now();
        let util = e.port(0, Direction::Outbound).stats.utilization(now);
        assert!(util > 0.95, "outbound utilization {util}");
    }

    #[test]
    fn runtime_ids_are_site_derived() {
        // A TTL-expired probe yields a Control reply whose id encodes the
        // expiring node, not a global counter — the property that keeps
        // partitioned runs id-identical to serial ones.
        let path = Path::inria_umd_1992();
        let mut e = Engine::new(path, 5);
        e.inject_probe_with_ttl(SimTime::ZERO, 32, 1, 2);
        e.run();
        assert_eq!(e.ttl_replies().len(), 1);
        let reply_drop = e
            .drops()
            .iter()
            .find(|d| d.reason == DropReason::TtlExpired)
            .expect("probe must expire");
        assert_eq!(reply_drop.seq, 1);
        // The reply delivered back carries the origin node.
        assert_eq!(e.ttl_replies()[0].node, 2);
    }
}
