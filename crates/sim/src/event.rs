//! Deterministic event queue.
//!
//! A discrete-event simulator is only reproducible if simultaneous events
//! are popped in a well-defined order. [`EventQueue`] orders events by
//! `(time, lane)`:
//!
//! * Ordinary events get a **local lane** — the insertion sequence number
//!   with the top bit set — so same-time events pop in FIFO order exactly
//!   as before.
//! * Events that can cross a partition boundary in a parallel run are
//!   scheduled through [`EventQueue::schedule_keyed`] with a
//!   **content-derived lane** (the packet id). Content lanes compare below
//!   all local lanes, so the tie order of boundary events at one instant
//!   depends only on *which packets* are involved — never on which
//!   partition inserted them first — which is what keeps a partitioned run
//!   bit-identical to the serial one (see DESIGN.md §13).
//!
//! ## Implementation: a two-level indexed bucket queue
//!
//! Simulation timestamps are integer nanoseconds ([`SimTime`]), which makes
//! them directly indexable: instead of a comparison-based heap, events hash
//! into a ring of `RING_SIZE` buckets of `2^BUCKET_SHIFT` ns each
//! (≈ 2.1 ms per bucket, ≈ 1.07 s per ring revolution; 512 slot headers
//! keep the index L1-resident). The ring is circular over *absolute*
//! bucket indices: anything within one revolution of the drain front goes
//! straight to its slot. Only events more than a revolution ahead wait in
//! a **spill vector**, sorted lazily (descending) at most once per batch
//! of far-future pushes; as the window advances, the spill tail — the
//! minimum keys — is popped into the ring. Runtime scheduling never
//! touches the spill (the engine's event horizon is milliseconds), so the
//! sort is never invalidated mid-run. This replaces the old
//! `BTreeMap<epoch, Vec>`: one flat allocation, one amortized sort, no
//! per-epoch tree nodes.
//!
//! The engine's event pattern is strongly time-local — a popped arrival
//! schedules a transmission-done a few hundred µs out — so nearly every
//! `schedule` lands in the current or a nearby bucket (an O(1) push), and
//! `pop` takes from a presorted *run* of the current bucket's events.
//! Events scheduled **into the bucket currently being drained** are
//! sorted-inserted straight into the run while it is small (buckets are a
//! handful of events, so the memmove beats heap maintenance plus a per-pop
//! merge comparison); past a fixed splice bound (`RUN_SPLICE_MAX`, 32) they
//! go to a side min-heap
//! merged on the fly, keeping the adversarial same-bucket cascade at
//! O(log k) instead of an O(k) splice.
//! Batch consumers ([`EventQueue::begin_bucket`] +
//! [`EventQueue::pop_in_bucket`]) check out a bucket once and drain it
//! without re-touching the ring index per event — the engine's hot loop.
//!
//! The original `BinaryHeap` implementation is retained as
//! [`reference::BinaryHeapQueue`] and pinned against this one by
//! differential tests below (including a property test that hammers epoch
//! boundaries; see `crates/sim/tests/properties.rs`).
//!
//! Buffers are reused across [`EventQueue::clear`], so a reset queue
//! schedules and pops without fresh allocation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// log2 of the bucket width in nanoseconds (2^21 ns ≈ 2.1 ms). Wider
/// buckets than the original 262 µs amortize per-bucket checkout over ~2-3
/// events; together with the smaller ring this measured ~5% faster than
/// the (18, 12) geometry on the δ=50 ms scenario microbench.
pub(crate) const BUCKET_SHIFT: u32 = 21;
/// log2 of the number of buckets in the ring.
pub(crate) const RING_BITS: u32 = 9;
/// Buckets per epoch.
const RING_SIZE: usize = 1 << RING_BITS;
/// Mask extracting a ring slot from an absolute bucket index.
const RING_MASK: u64 = (RING_SIZE as u64) - 1;
/// Words in the ring-occupancy bitmap.
const OCC_WORDS: usize = RING_SIZE / 64;
/// Largest checked-out run an in-bucket schedule still splices into by
/// sorted insert; beyond this the event goes to the `late` min-heap
/// instead, so a same-bucket cascade of k events costs O(k log k), not
/// the O(k²) memmove a pure sorted-vector splice degrades to.
const RUN_SPLICE_MAX: usize = 32;

/// Lane bit distinguishing locally ordered events (FIFO by insertion) from
/// content-keyed events. Content lanes — packet ids — are always below
/// `2^63`, so every content-keyed event at an instant sorts before every
/// local event at the same instant, in both serial and partitioned runs.
pub const LOCAL_LANE: u64 = 1 << 63;

/// `(time_ns, lane, payload)` — the queue's internal event record.
type Entry<E> = (u64, u64, E);

/// An event scheduled into the bucket being drained after its run grew
/// past [`RUN_SPLICE_MAX`]. Ordered inverted so `BinaryHeap` (a max-heap)
/// pops the earliest `(key, lane)` first.
#[derive(Debug)]
struct LateEntry<E> {
    key: u64,
    lane: u64,
    payload: E,
}

impl<E> PartialEq for LateEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.lane == other.lane
    }
}
impl<E> Eq for LateEntry<E> {}

impl<E> PartialOrd for LateEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for LateEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.lane.cmp(&self.lane))
    }
}

/// A time-ordered queue of simulation events with deterministic
/// tie-breaking (FIFO for local events, packet-id order for keyed events).
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The current bucket's events, sorted **descending** by `(time, lane)`
    /// so the next event pops from the back in O(1).
    run: Vec<Entry<E>>,
    /// Absolute bucket index `run` (and `late`) belong to; only meaningful
    /// while either is non-empty. Events scheduled into the bucket *after*
    /// checkout are sorted-inserted directly into `run` while it is small
    /// (a memmove of a few 32-byte entries beats two binary-heap operations
    /// plus a merge comparison on every pop) and pushed onto `late` once it
    /// is not.
    run_bucket: u64,
    /// Overflow for in-drain schedules into an already-large `run`; merged
    /// with it on the fly by [`EventQueue::pop_in_bucket`]. Empty in the
    /// engine's steady state — realistic buckets never grow near
    /// [`RUN_SPLICE_MAX`].
    late: BinaryHeap<LateEntry<E>>,
    /// Buckets of the current epoch, unsorted within a bucket.
    ring: Vec<Vec<Entry<E>>>,
    /// Occupancy bitmap over `ring`: bit `s` of word `s / 64` is set iff
    /// slot `s` is non-empty. Advancing the cursor is a `trailing_zeros`
    /// scan over a few words instead of probing hundreds of `Vec` lengths
    /// — most slots are empty at realistic event densities.
    occ: [u64; OCC_WORDS],
    /// Events currently held in `ring` (excludes `run`).
    ring_len: usize,
    /// Events in epochs after the current one. Unsorted until an epoch
    /// boundary forces a (descending) sort; the sorted tail then feeds
    /// successive epochs without re-sorting until new far-future events
    /// arrive.
    spill: Vec<Entry<E>>,
    /// Minimum key present in `spill` (`u64::MAX` when empty).
    spill_min: u64,
    /// Whether `spill` is currently sorted descending by `(key, lane)`.
    spill_sorted: bool,
    /// Epoch the ring currently covers.
    epoch: u64,
    /// Next ring slot to scan for the following pop.
    cursor: usize,
    next_seq: u64,
    now: SimTime,
    len: usize,
    peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            run: Vec::new(),
            run_bucket: 0,
            late: BinaryHeap::new(),
            ring: (0..RING_SIZE).map(|_| Vec::new()).collect(),
            occ: [0; OCC_WORDS],
            ring_len: 0,
            spill: Vec::new(),
            spill_min: u64::MAX,
            spill_sorted: true,
            epoch: 0,
            cursor: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            len: 0,
            peak: 0,
        }
    }

    /// The current simulated time: the timestamp of the last popped event
    /// (zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest number of events ever pending at once over the queue's
    /// lifetime (survives [`EventQueue::clear`] until explicitly reset by
    /// constructing anew).
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Empty the queue and rewind the clock to zero, **keeping** every
    /// internal buffer allocation for reuse. The peak-depth statistic and
    /// sequence counter reset too, so a cleared queue is observationally a
    /// fresh one.
    pub fn clear(&mut self) {
        self.run.clear();
        self.late.clear();
        if self.ring_len > 0 {
            for bucket in &mut self.ring {
                bucket.clear();
            }
        }
        self.occ = [0; OCC_WORDS];
        self.ring_len = 0;
        self.spill.clear();
        self.spill_min = u64::MAX;
        self.spill_sorted = true;
        self.epoch = 0;
        self.cursor = 0;
        self.next_seq = 0;
        self.now = SimTime::ZERO;
        self.len = 0;
        self.peak = 0;
    }

    /// Schedule `payload` at instant `at` on a local (FIFO) lane.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current simulated time — scheduling
    /// into the past is always a simulator bug, and failing fast here beats
    /// silently reordering causality.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.schedule_keyed(at, LOCAL_LANE | seq, payload);
    }

    /// Schedule `payload` at instant `at` with an explicit tie-breaking
    /// `lane`. Lanes below [`LOCAL_LANE`] must be unique among the events
    /// pending at one instant (the engine uses packet ids); they order
    /// before all [`EventQueue::schedule`]d events at the same instant.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past.
    pub fn schedule_keyed(&mut self, at: SimTime, lane: u64, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule event at {at:?} before current time {:?}",
            self.now
        );
        self.len += 1;
        if self.len > self.peak {
            self.peak = self.len;
        }
        let key = at.as_nanos();
        let bucket = key >> BUCKET_SHIFT;
        if bucket == self.run_bucket && !(self.run.is_empty() && self.late.is_empty()) {
            // Into the bucket currently being drained: splice it into the
            // descending run at its (time, lane) position so the next pop
            // still takes from the back in O(1) — unless the run has grown
            // past the splice bound (an adversarial same-bucket cascade),
            // where the side heap's O(log k) beats the O(k) memmove.
            if self.run.len() <= RUN_SPLICE_MAX && self.late.is_empty() {
                let pos = self.run.partition_point(|e| (e.0, e.1) > (key, lane));
                self.run.insert(pos, (key, lane, payload));
            } else {
                self.late.push(LateEntry { key, lane, payload });
            }
        } else {
            // The ring is circular over absolute bucket indices: anything
            // within RING_SIZE buckets of the drain front goes straight to
            // its slot — slots behind the cursor simply belong to the next
            // revolution and are reached after the epoch rolls. Since every
            // runtime-scheduled event (tx-done, arrivals a few ms out) is
            // far closer than a full revolution (~1 s), only bulk pre-run
            // schedules ever spill, and the spill's lazy sort is never
            // invalidated mid-run — epoch rollovers stay O(drained).
            let front = (self.epoch << RING_BITS) + self.cursor as u64;
            debug_assert!(bucket >= front, "scheduling behind the drain front");
            if bucket.wrapping_sub(front) < RING_SIZE as u64 {
                let slot = (bucket & RING_MASK) as usize;
                self.ring[slot].push((key, lane, payload));
                self.occ[slot >> 6] |= 1 << (slot & 63);
                self.ring_len += 1;
            } else {
                self.spill.push((key, lane, payload));
                self.spill_sorted = false;
                if key < self.spill_min {
                    self.spill_min = key;
                }
            }
        }
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // The checked-out bucket (run + late overflow) precedes everything
        // still in the ring or spill.
        let run_key = self.run.last().map(|e| e.0);
        let late_key = self.late.peek().map(|l| l.key);
        match (run_key, late_key) {
            (Some(r), Some(l)) => return Some(SimTime::from_nanos(r.min(l))),
            (Some(k), None) | (None, Some(k)) => return Some(SimTime::from_nanos(k)),
            (None, None) => {}
        }
        let mut best = self.spill_min;
        if self.ring_len > 0 {
            // Slots behind the cursor hold the next revolution — later in
            // time than every slot ahead of it — so scanning in wrapped
            // order visits buckets in time order and the first non-empty
            // one holds the ring's minimum. The spill can still be earlier
            // (an old far-future entry whose bucket the window has since
            // approached), so the answer is the min of the two.
            let slot = self
                .next_occupied(self.cursor)
                .or_else(|| self.next_occupied(0));
            if let Some(s) = slot {
                let min = self.ring[s].iter().map(|e| e.0).min().expect("occupied");
                best = best.min(min);
            }
        }
        if best != u64::MAX {
            return Some(SimTime::from_nanos(best));
        }
        None
    }

    /// First occupied ring slot at index `from` or later, by bitmap scan.
    #[inline]
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= RING_SIZE {
            return None;
        }
        let mut word = from >> 6;
        let mut bits = self.occ[word] & (!0u64 << (from & 63));
        loop {
            if bits != 0 {
                return Some((word << 6) | bits.trailing_zeros() as usize);
            }
            word += 1;
            if word == OCC_WORDS {
                return None;
            }
            bits = self.occ[word];
        }
    }

    /// Make the current bucket (`run`) non-empty if any event is
    /// pending; returns false when the queue is exhausted. After a `true`
    /// return, [`EventQueue::pop_in_bucket`] drains the checked-out bucket
    /// without touching the ring index again.
    pub fn begin_bucket(&mut self) -> bool {
        if !self.run.is_empty() || !self.late.is_empty() {
            return true;
        }
        loop {
            // Rescatter spill entries whose bucket has entered the drain
            // window. The spill is sorted descending at most once per batch
            // of pushes — runtime schedules land in the ring, never here —
            // so entries leave via the sorted tail exactly once.
            let window_end = (self.epoch << RING_BITS) + self.cursor as u64 + RING_SIZE as u64;
            if self.spill_min >> BUCKET_SHIFT < window_end {
                if !self.spill_sorted {
                    self.spill
                        .sort_unstable_by_key(|e| std::cmp::Reverse((e.0, e.1)));
                    self.spill_sorted = true;
                }
                while let Some(&(key, _, _)) = self.spill.last() {
                    if key >> BUCKET_SHIFT >= window_end {
                        break;
                    }
                    let entry = self.spill.pop().expect("peeked above");
                    let slot = ((entry.0 >> BUCKET_SHIFT) & RING_MASK) as usize;
                    self.ring[slot].push(entry);
                    self.occ[slot >> 6] |= 1 << (slot & 63);
                    self.ring_len += 1;
                }
                self.spill_min = self.spill.last().map_or(u64::MAX, |e| e.0);
            }
            if self.ring_len > 0 {
                if let Some(slot) = self.next_occupied(self.cursor) {
                    self.cursor = slot;
                    self.occ[slot >> 6] &= !(1u64 << (slot & 63));
                    std::mem::swap(&mut self.ring[slot], &mut self.run);
                    self.ring_len -= self.run.len();
                    // Descending, so pops take from the back. At realistic
                    // densities most buckets hold a single event — skip the
                    // sort machinery entirely for those.
                    if self.run.len() > 1 {
                        self.run
                            .sort_unstable_by_key(|e| std::cmp::Reverse((e.0, e.1)));
                    }
                    self.run_bucket = (self.epoch << RING_BITS) | slot as u64;
                    return true;
                }
            }
            // Revolution exhausted. Ring entries may remain *behind* the
            // cursor (scheduled into the next revolution while this one
            // drained); they are all within one revolution of the front, so
            // roll one epoch and rescan. Otherwise jump straight to the
            // epoch of the spill's earliest bucket.
            if self.ring_len == 0 && self.spill.is_empty() {
                return false;
            }
            self.epoch = if self.ring_len > 0 {
                self.epoch + 1
            } else {
                self.spill_min >> (BUCKET_SHIFT + RING_BITS)
            };
            self.cursor = 0;
        }
    }

    /// Pop the next event of the checked-out bucket, advancing the clock to
    /// its timestamp; `None` once the bucket (including events scheduled
    /// into it mid-drain) is empty. Call [`EventQueue::begin_bucket`] to
    /// check out the next bucket.
    pub fn pop_in_bucket(&mut self) -> Option<(SimTime, E)> {
        // Steady-state fast path: no cascade overflow, pure run pop.
        let (key, payload) = if self.late.is_empty() {
            let (k, _, p) = self.run.pop()?;
            (k, p)
        } else {
            let take_late = match self.run.last() {
                Some(r) => {
                    let l = self.late.peek().expect("checked non-empty");
                    (l.key, l.lane) < (r.0, r.1)
                }
                None => true,
            };
            if take_late {
                let l = self.late.pop().expect("checked non-empty");
                (l.key, l.payload)
            } else {
                let (k, _, p) = self.run.pop().expect("matched Some above");
                (k, p)
            }
        };
        self.len -= 1;
        let at = SimTime::from_nanos(key);
        debug_assert!(at >= self.now);
        self.now = at;
        Some((at, payload))
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.begin_bucket() {
            return None;
        }
        self.pop_in_bucket()
    }

    /// Pop the next event only if it is scheduled at or before `horizon`.
    ///
    /// Events after the horizon stay queued and the clock does not advance,
    /// so a caller can interleave simulation with external control at fixed
    /// points in time.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }
}

/// The original comparison-based implementation, kept as a reference
/// oracle: the differential tests pin the indexed queue's pop order to it
/// (including across epoch boundaries; see
/// `crates/sim/tests/properties.rs`), and `benches/simulator.rs` races the
/// two.
pub mod reference {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    use crate::time::SimTime;

    #[derive(Debug)]
    struct Scheduled<E> {
        at: SimTime,
        lane: u64,
        payload: E,
    }

    impl<E> PartialEq for Scheduled<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.lane == other.lane
        }
    }
    impl<E> Eq for Scheduled<E> {}

    impl<E> PartialOrd for Scheduled<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> Ord for Scheduled<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // BinaryHeap is a max-heap; invert so the earliest (time, lane)
            // pops first. Same-time local events pop in insertion order.
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.lane.cmp(&self.lane))
        }
    }

    /// Binary-heap event queue with the same contract as
    /// [`super::EventQueue`].
    #[derive(Debug)]
    pub struct BinaryHeapQueue<E> {
        heap: BinaryHeap<Scheduled<E>>,
        next_seq: u64,
        now: SimTime,
    }

    impl<E> Default for BinaryHeapQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> BinaryHeapQueue<E> {
        /// An empty queue with the clock at zero.
        pub fn new() -> Self {
            BinaryHeapQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                now: SimTime::ZERO,
            }
        }

        /// The current simulated time.
        pub fn now(&self) -> SimTime {
            self.now
        }

        /// Number of pending events.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// True if no events are pending.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// Schedule `payload` at instant `at` on a local (FIFO) lane
        /// (panics on past times).
        pub fn schedule(&mut self, at: SimTime, payload: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.schedule_keyed(at, super::LOCAL_LANE | seq, payload);
        }

        /// Schedule with an explicit tie-breaking lane, mirroring
        /// [`super::EventQueue::schedule_keyed`].
        pub fn schedule_keyed(&mut self, at: SimTime, lane: u64, payload: E) {
            assert!(
                at >= self.now,
                "cannot schedule event at {at:?} before current time {:?}",
                self.now
            );
            self.heap.push(Scheduled { at, lane, payload });
        }

        /// Timestamp of the next event without removing it.
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|s| s.at)
        }

        /// Pop the next event, advancing the clock to its timestamp.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            let s = self.heap.pop()?;
            debug_assert!(s.at >= self.now);
            self.now = s.at;
            Some((s.at, s.payload))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn keyed_lanes_order_before_local_events_at_one_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule(t, "local-0");
        q.schedule_keyed(t, 9, "keyed-9");
        q.schedule(t, "local-1");
        q.schedule_keyed(t, 2, "keyed-2");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        // Content lanes first (by lane value), then locals in FIFO order —
        // regardless of interleaved insertion.
        assert_eq!(order, vec!["keyed-2", "keyed-9", "local-0", "local-1"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_millis(7), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.pop();
        q.schedule(SimTime::from_millis(10), 2); // same instant: fine
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "early");
        q.schedule(SimTime::from_millis(50), "late");
        assert_eq!(
            q.pop_until(SimTime::from_millis(20)).map(|(_, e)| e),
            Some("early")
        );
        assert_eq!(q.pop_until(SimTime::from_millis(20)), None);
        assert_eq!(q.len(), 1);
        // Clock did not jump past the horizon.
        assert_eq!(q.now(), SimTime::from_millis(10));
        assert_eq!(q.pop_until(SimTime::MAX).map(|(_, e)| e), Some("late"));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // Re-schedule relative to the popped time, as the engine does.
        q.schedule(t + SimDuration::from_millis(2), 3);
        q.schedule(t + SimDuration::from_millis(1), 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        assert_eq!(q.pop().map(|(_, e)| e), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn events_across_epochs_stay_ordered() {
        // Ring epoch is ~1.07 s; schedule across several epochs at once.
        let mut q = EventQueue::new();
        for i in (0..40u64).rev() {
            q.schedule(SimTime::from_millis(i * 97), i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..40).collect::<Vec<_>>());
    }

    /// Direct coverage of the spill vector: far-future events (many epochs
    /// out, interleaved with near events and re-sorts forced by repeated
    /// pushes) drain back out in exact `(time, lane)` order.
    #[test]
    fn far_future_spill_drains_in_order() {
        let epoch_ns = 1u64 << (BUCKET_SHIFT + RING_BITS);
        let mut q = EventQueue::new();
        // Three epochs of far-future events pushed out of order...
        for i in (0..30u64).rev() {
            q.schedule(SimTime::from_nanos((i % 3 + 1) * epoch_ns + i * 1000), i);
        }
        // ...plus near-term events in the current epoch.
        for i in 30..34u64 {
            q.schedule(SimTime::from_nanos(i), i);
        }
        let mut popped = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, e)) = q.pop() {
            assert!(t >= last, "pop went backwards at {e}");
            last = t;
            popped.push(e);
            // Interleave new spill pushes mid-drain to force re-sorts.
            if e == 31 {
                q.schedule(SimTime::from_nanos(5 * epoch_ns), 100);
                q.schedule(SimTime::from_nanos(4 * epoch_ns), 101);
            }
        }
        assert_eq!(popped.len(), 36);
        // The mid-drain pushes come out last, ordered by time.
        assert_eq!(&popped[34..], &[101, 100]);
    }

    /// The spill keeps exact FIFO tie order for same-instant events even
    /// when they arrive split across separate (lazily sorted) batches.
    #[test]
    fn spill_preserves_fifo_ties_across_sort_batches() {
        let epoch_ns = 1u64 << (BUCKET_SHIFT + RING_BITS);
        let t = SimTime::from_nanos(3 * epoch_ns + 7);
        let mut q = EventQueue::new();
        q.schedule(t, 0u64);
        q.schedule(t, 1);
        // Force the first sort by crossing into an epoch, then add more
        // same-instant events to the (now sorted) spill.
        q.schedule(SimTime::from_nanos(epoch_ns), 99);
        assert_eq!(q.pop().map(|(_, e)| e), Some(99));
        q.schedule(t, 2);
        q.schedule(t, 3);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    /// An adversarial same-bucket cascade: every popped event schedules
    /// follow-ups into the bucket still being drained, growing the run far
    /// past `RUN_SPLICE_MAX` so the `late` heap path engages. Pop order
    /// must match the binary-heap oracle exactly.
    #[test]
    fn same_bucket_cascade_overflows_to_late_heap_in_order() {
        let mut q = EventQueue::new();
        let mut oracle = reference::BinaryHeapQueue::new();
        let t0 = SimTime::from_nanos(10 << BUCKET_SHIFT);
        q.schedule(t0, 0u64);
        oracle.schedule(t0, 0u64);
        let mut next = 1u64;
        loop {
            let (a, b) = (q.pop(), oracle.pop());
            assert_eq!(a, b);
            let Some((at, v)) = a else { break };
            if v < 400 {
                // Two follow-ups a few µs out — same 2.1 ms bucket.
                let jitter = (v.wrapping_mul(2_654_435_761)) % 3_000;
                for d in [jitter, 1_500 + jitter / 2] {
                    let at2 = at + SimDuration::from_nanos(d);
                    q.schedule(at2, next);
                    oracle.schedule(at2, next);
                    next += 1;
                }
            }
        }
        assert!(q.is_empty());
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(SimTime::from_millis(i), i);
        }
        for _ in 0..5 {
            q.pop();
        }
        q.schedule(SimTime::from_millis(100), 99);
        assert_eq!(q.peak_len(), 10);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn clear_resets_and_reuses() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.schedule(SimTime::from_millis(i * 13), i);
        }
        for _ in 0..30 {
            q.pop();
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peak_len(), 0);
        // Scheduling at t = 0 after clear must work (clock rewound).
        q.schedule(SimTime::ZERO, 1u64);
        q.schedule(SimTime::from_millis(1), 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }

    /// The differential oracle: a random mixed workload (bursts of
    /// schedules at clustered and far-flung times interleaved with pops,
    /// on both local and content lanes) must produce the exact pop
    /// sequence of the retained binary-heap implementation — times,
    /// payloads, clock values, and lengths.
    #[test]
    fn matches_binary_heap_reference_on_random_workload() {
        let mut rng = StdRng::seed_from_u64(0xb010_7e57);
        let mut fast = EventQueue::new();
        let mut oracle = reference::BinaryHeapQueue::new();
        let mut ticket = 0u64;
        for _ in 0..20_000 {
            if rng.gen_bool(0.55) || fast.is_empty() {
                let base = fast.now().as_nanos();
                // Mix of near-now (same bucket), mid-range (same epoch),
                // far-future (spill), and exactly-now events.
                let offset = match rng.gen_range(0u32..4) {
                    0 => 0,
                    1 => rng.gen_range(0u64..1 << BUCKET_SHIFT),
                    2 => rng.gen_range(0u64..1 << (BUCKET_SHIFT + RING_BITS)),
                    _ => rng.gen_range(0u64..1 << 34),
                };
                let at = SimTime::from_nanos(base + offset);
                if rng.gen_bool(0.2) {
                    // Content lane: unique by ticket, below LOCAL_LANE.
                    fast.schedule_keyed(at, ticket, ticket);
                    oracle.schedule_keyed(at, ticket, ticket);
                } else {
                    fast.schedule(at, ticket);
                    oracle.schedule(at, ticket);
                }
                ticket += 1;
            } else {
                assert_eq!(fast.pop(), oracle.pop());
                assert_eq!(fast.now(), oracle.now());
            }
            assert_eq!(fast.len(), oracle.len());
        }
        // Drain both completely.
        loop {
            let (a, b) = (fast.pop(), oracle.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
