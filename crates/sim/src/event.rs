//! Deterministic event queue.
//!
//! A discrete-event simulator is only reproducible if simultaneous events are
//! popped in a well-defined order. [`EventQueue`] orders events by time and
//! breaks ties by insertion sequence number, so two runs with the same inputs
//! process events identically.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled for some simulated instant.
///
/// `E` is the simulator-specific payload; the queue itself is payload-agnostic
/// so it can be unit-tested (and reused) in isolation.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. Same-time events pop in insertion order (FIFO).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the last popped event
    /// (zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current simulated time — scheduling
    /// into the past is always a simulator bug, and failing fast here beats
    /// silently reordering causality.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule event at {at:?} before current time {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        Some((s.at, s.payload))
    }

    /// Pop the next event only if it is scheduled at or before `horizon`.
    ///
    /// Events after the horizon stay queued and the clock does not advance,
    /// so a caller can interleave simulation with external control at fixed
    /// points in time.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_millis(7), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.pop();
        q.schedule(SimTime::from_millis(10), 2); // same instant: fine
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "early");
        q.schedule(SimTime::from_millis(50), "late");
        assert_eq!(
            q.pop_until(SimTime::from_millis(20)).map(|(_, e)| e),
            Some("early")
        );
        assert_eq!(q.pop_until(SimTime::from_millis(20)), None);
        assert_eq!(q.len(), 1);
        // Clock did not jump past the horizon.
        assert_eq!(q.now(), SimTime::from_millis(10));
        assert_eq!(q.pop_until(SimTime::MAX).map(|(_, e)| e), Some("late"));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // Re-schedule relative to the popped time, as the engine does.
        q.schedule(t + SimDuration::from_millis(2), 3);
        q.schedule(t + SimDuration::from_millis(1), 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        assert_eq!(q.pop().map(|(_, e)| e), Some(3));
        assert!(q.is_empty());
    }
}
