//! Deterministic event queue.
//!
//! A discrete-event simulator is only reproducible if simultaneous events are
//! popped in a well-defined order. [`EventQueue`] orders events by time and
//! breaks ties by insertion sequence number, so two runs with the same inputs
//! process events identically.
//!
//! ## Implementation: a two-level indexed bucket queue
//!
//! Simulation timestamps are integer nanoseconds ([`SimTime`]), which makes
//! them directly indexable: instead of a comparison-based heap, events hash
//! into a ring of `RING_SIZE` buckets of `2^BUCKET_SHIFT` ns each
//! (≈ 262 µs per bucket, ≈ 1.07 s per ring *epoch*). Events beyond the
//! current epoch wait in a `BTreeMap<epoch, Vec>` and are scattered into the
//! ring when the clock reaches their epoch.
//!
//! The engine's event pattern is strongly time-local — a popped arrival
//! schedules a transmission-done a few hundred µs out — so nearly every
//! `schedule` lands in the current or a nearby bucket (an O(1) push), and
//! `pop` takes from a presorted *run* of the current bucket's events.
//! Events scheduled **into the bucket currently being drained** go to a
//! small side min-heap (`late`) merged on the fly, so even the adversarial
//! case — an unbounded cascade concentrating into one bucket — costs
//! O(log k) per operation rather than an O(k) splice into the sorted run.
//! The FIFO tie-break is preserved exactly: pops come out in ascending
//! `(time, seq)` order, bit-identical to the previous `BinaryHeap`
//! implementation, which is retained as [`reference::BinaryHeapQueue`] and
//! pinned against this one by a differential test below.
//!
//! Buffers are reused across [`EventQueue::clear`], so a reset queue
//! schedules and pops without fresh allocation.

use std::collections::{BTreeMap, BinaryHeap};

use crate::time::SimTime;

/// log2 of the bucket width in nanoseconds (2^18 ns ≈ 262 µs).
const BUCKET_SHIFT: u32 = 18;
/// log2 of the number of buckets in the ring.
const RING_BITS: u32 = 12;
/// Buckets per epoch.
const RING_SIZE: usize = 1 << RING_BITS;
/// Mask extracting a ring slot from an absolute bucket index.
const RING_MASK: u64 = (RING_SIZE as u64) - 1;

/// `(time_ns, seq, payload)` — the queue's internal event record.
type Entry<E> = (u64, u64, E);

/// An event that arrived for the bucket already being drained; held in a
/// min-heap beside the sorted run.
#[derive(Debug)]
struct LateEntry<E> {
    key: u64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for LateEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl<E> Eq for LateEntry<E> {}

impl<E> PartialOrd for LateEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for LateEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Inverted: BinaryHeap is a max-heap, we want the earliest first.
        (other.key, other.seq).cmp(&(self.key, self.seq))
    }
}

/// A time-ordered queue of simulation events with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The current bucket's events, sorted **descending** by `(time, seq)`
    /// so the next event pops from the back in O(1).
    run: Vec<Entry<E>>,
    /// Events scheduled into the current bucket *after* it was drained,
    /// min-heap ordered; merged with `run` on pop.
    late: BinaryHeap<LateEntry<E>>,
    /// Absolute bucket index `run`/`late` belong to; only meaningful while
    /// one of them is non-empty.
    run_bucket: u64,
    /// Buckets of the current epoch, unsorted within a bucket.
    ring: Vec<Vec<Entry<E>>>,
    /// Events currently held in `ring` (excludes `run`).
    ring_len: usize,
    /// Events in epochs after the current one, keyed by epoch index.
    overflow: BTreeMap<u64, Vec<Entry<E>>>,
    /// Epoch the ring currently covers.
    epoch: u64,
    /// Next ring slot to scan for the following pop.
    cursor: usize,
    next_seq: u64,
    now: SimTime,
    len: usize,
    peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            run: Vec::new(),
            late: BinaryHeap::new(),
            run_bucket: 0,
            ring: (0..RING_SIZE).map(|_| Vec::new()).collect(),
            ring_len: 0,
            overflow: BTreeMap::new(),
            epoch: 0,
            cursor: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            len: 0,
            peak: 0,
        }
    }

    /// The current simulated time: the timestamp of the last popped event
    /// (zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest number of events ever pending at once over the queue's
    /// lifetime (survives [`EventQueue::clear`] until explicitly reset by
    /// constructing anew).
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Empty the queue and rewind the clock to zero, **keeping** every
    /// internal buffer allocation for reuse. The peak-depth statistic and
    /// sequence counter reset too, so a cleared queue is observationally a
    /// fresh one.
    pub fn clear(&mut self) {
        self.run.clear();
        self.late.clear();
        if self.ring_len > 0 {
            for bucket in &mut self.ring {
                bucket.clear();
            }
        }
        self.ring_len = 0;
        self.overflow.clear();
        self.epoch = 0;
        self.cursor = 0;
        self.next_seq = 0;
        self.now = SimTime::ZERO;
        self.len = 0;
        self.peak = 0;
    }

    /// Schedule `payload` at instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current simulated time — scheduling
    /// into the past is always a simulator bug, and failing fast here beats
    /// silently reordering causality.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule event at {at:?} before current time {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        if self.len > self.peak {
            self.peak = self.len;
        }
        let key = at.as_nanos();
        let bucket = key >> BUCKET_SHIFT;
        if bucket == self.run_bucket && !(self.run.is_empty() && self.late.is_empty()) {
            // Into the bucket currently being drained: the side heap keeps
            // the global (time, seq) order in O(log k).
            self.late.push(LateEntry { key, seq, payload });
        } else if bucket >> RING_BITS == self.epoch {
            self.ring[(bucket & RING_MASK) as usize].push((key, seq, payload));
            self.ring_len += 1;
        } else {
            self.overflow
                .entry(bucket >> RING_BITS)
                .or_default()
                .push((key, seq, payload));
        }
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        let run_min = self.run.last().map(|&(key, _, _)| key);
        let late_min = self.late.peek().map(|l| l.key);
        if run_min.is_some() || late_min.is_some() {
            let key = match (run_min, late_min) {
                (Some(r), Some(l)) => r.min(l),
                (a, b) => a.or(b).expect("one is Some"),
            };
            return Some(SimTime::from_nanos(key));
        }
        if self.ring_len > 0 {
            for slot in self.cursor..RING_SIZE {
                let bucket = &self.ring[slot];
                if !bucket.is_empty() {
                    let min = bucket.iter().map(|e| e.0).min().expect("non-empty");
                    return Some(SimTime::from_nanos(min));
                }
            }
        }
        self.overflow.first_key_value().map(|(_, events)| {
            let min = events.iter().map(|e| e.0).min().expect("non-empty epoch");
            SimTime::from_nanos(min)
        })
    }

    /// Make the current bucket (`run`/`late`) non-empty if any event is
    /// pending; returns false when the queue is exhausted.
    fn refill(&mut self) -> bool {
        if !self.run.is_empty() || !self.late.is_empty() {
            return true;
        }
        loop {
            if self.ring_len > 0 {
                while self.cursor < RING_SIZE {
                    if !self.ring[self.cursor].is_empty() {
                        std::mem::swap(&mut self.ring[self.cursor], &mut self.run);
                        self.ring_len -= self.run.len();
                        // Descending, so pops take from the back.
                        self.run
                            .sort_unstable_by_key(|e| std::cmp::Reverse((e.0, e.1)));
                        self.run_bucket = (self.epoch << RING_BITS) | self.cursor as u64;
                        return true;
                    }
                    self.cursor += 1;
                }
                debug_assert_eq!(self.ring_len, 0, "ring events behind cursor");
            }
            // Current epoch exhausted: scatter the next overflow epoch.
            let Some((&next_epoch, _)) = self.overflow.first_key_value() else {
                return false;
            };
            let events = self.overflow.remove(&next_epoch).expect("key just seen");
            self.epoch = next_epoch;
            self.cursor = 0;
            self.ring_len += events.len();
            for entry in events {
                let slot = ((entry.0 >> BUCKET_SHIFT) & RING_MASK) as usize;
                self.ring[slot].push(entry);
            }
        }
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.refill() {
            return None;
        }
        let take_late = match (self.run.last(), self.late.peek()) {
            (Some(&(rk, rs, _)), Some(l)) => (l.key, l.seq) < (rk, rs),
            (None, Some(_)) => true,
            _ => false,
        };
        let (key, payload) = if take_late {
            let l = self.late.pop().expect("peeked above");
            (l.key, l.payload)
        } else {
            let (k, _, p) = self.run.pop().expect("refill guaranteed an event");
            (k, p)
        };
        self.len -= 1;
        let at = SimTime::from_nanos(key);
        debug_assert!(at >= self.now);
        self.now = at;
        Some((at, payload))
    }

    /// Pop the next event only if it is scheduled at or before `horizon`.
    ///
    /// Events after the horizon stay queued and the clock does not advance,
    /// so a caller can interleave simulation with external control at fixed
    /// points in time.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }
}

/// The original comparison-based implementation, kept as a reference
/// oracle: the differential test below pins the indexed queue's pop order
/// to it, and `benches/simulator.rs` races the two.
pub mod reference {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    use crate::time::SimTime;

    #[derive(Debug)]
    struct Scheduled<E> {
        at: SimTime,
        seq: u64,
        payload: E,
    }

    impl<E> PartialEq for Scheduled<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<E> Eq for Scheduled<E> {}

    impl<E> PartialOrd for Scheduled<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> Ord for Scheduled<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // BinaryHeap is a max-heap; invert so the earliest (time, seq)
            // pops first. Same-time events pop in insertion order (FIFO).
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// Binary-heap event queue with the same contract as
    /// [`super::EventQueue`].
    #[derive(Debug)]
    pub struct BinaryHeapQueue<E> {
        heap: BinaryHeap<Scheduled<E>>,
        next_seq: u64,
        now: SimTime,
    }

    impl<E> Default for BinaryHeapQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> BinaryHeapQueue<E> {
        /// An empty queue with the clock at zero.
        pub fn new() -> Self {
            BinaryHeapQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                now: SimTime::ZERO,
            }
        }

        /// The current simulated time.
        pub fn now(&self) -> SimTime {
            self.now
        }

        /// Number of pending events.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// True if no events are pending.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// Schedule `payload` at instant `at` (panics on past times).
        pub fn schedule(&mut self, at: SimTime, payload: E) {
            assert!(
                at >= self.now,
                "cannot schedule event at {at:?} before current time {:?}",
                self.now
            );
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Scheduled { at, seq, payload });
        }

        /// Timestamp of the next event without removing it.
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|s| s.at)
        }

        /// Pop the next event, advancing the clock to its timestamp.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            let s = self.heap.pop()?;
            debug_assert!(s.at >= self.now);
            self.now = s.at;
            Some((s.at, s.payload))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_millis(7), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.pop();
        q.schedule(SimTime::from_millis(10), 2); // same instant: fine
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "early");
        q.schedule(SimTime::from_millis(50), "late");
        assert_eq!(
            q.pop_until(SimTime::from_millis(20)).map(|(_, e)| e),
            Some("early")
        );
        assert_eq!(q.pop_until(SimTime::from_millis(20)), None);
        assert_eq!(q.len(), 1);
        // Clock did not jump past the horizon.
        assert_eq!(q.now(), SimTime::from_millis(10));
        assert_eq!(q.pop_until(SimTime::MAX).map(|(_, e)| e), Some("late"));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 1u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // Re-schedule relative to the popped time, as the engine does.
        q.schedule(t + SimDuration::from_millis(2), 3);
        q.schedule(t + SimDuration::from_millis(1), 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        assert_eq!(q.pop().map(|(_, e)| e), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn events_across_epochs_stay_ordered() {
        // Ring epoch is ~1.07 s; schedule across several epochs at once.
        let mut q = EventQueue::new();
        for i in (0..40u64).rev() {
            q.schedule(SimTime::from_millis(i * 97), i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(SimTime::from_millis(i), i);
        }
        for _ in 0..5 {
            q.pop();
        }
        q.schedule(SimTime::from_millis(100), 99);
        assert_eq!(q.peak_len(), 10);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn clear_resets_and_reuses() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.schedule(SimTime::from_millis(i * 13), i);
        }
        for _ in 0..30 {
            q.pop();
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peak_len(), 0);
        // Scheduling at t = 0 after clear must work (clock rewound).
        q.schedule(SimTime::ZERO, 1u64);
        q.schedule(SimTime::from_millis(1), 2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }

    /// The differential oracle: a random mixed workload (bursts of
    /// schedules at clustered and far-flung times interleaved with pops)
    /// must produce the exact pop sequence of the retained binary-heap
    /// implementation — times, payloads, clock values, and lengths.
    #[test]
    fn matches_binary_heap_reference_on_random_workload() {
        let mut rng = StdRng::seed_from_u64(0xb010_7e57);
        let mut fast = EventQueue::new();
        let mut oracle = reference::BinaryHeapQueue::new();
        let mut ticket = 0u64;
        for _ in 0..20_000 {
            if rng.gen_bool(0.55) || fast.is_empty() {
                let base = fast.now().as_nanos();
                // Mix of near-now (same bucket), mid-range (same epoch),
                // far-future (overflow), and exactly-now events.
                let offset = match rng.gen_range(0u32..4) {
                    0 => 0,
                    1 => rng.gen_range(0u64..1 << BUCKET_SHIFT),
                    2 => rng.gen_range(0u64..1 << (BUCKET_SHIFT + RING_BITS)),
                    _ => rng.gen_range(0u64..1 << 34),
                };
                let at = SimTime::from_nanos(base + offset);
                fast.schedule(at, ticket);
                oracle.schedule(at, ticket);
                ticket += 1;
            } else {
                assert_eq!(fast.pop(), oracle.pop());
                assert_eq!(fast.now(), oracle.now());
            }
            assert_eq!(fast.len(), oracle.len());
        }
        // Drain both completely.
        loop {
            let (a, b) = (fast.pop(), oracle.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
