//! Simulated packets.

use crate::time::SimTime;

/// Globally unique identifier for a simulated packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

/// Which traffic stream a packet belongs to.
///
/// The paper's model (its Figure 3) distinguishes the periodic **probe**
/// stream from the aggregate **Internet** stream sharing the bottleneck;
/// `Control` covers simulator-generated replies (TTL-exceeded messages used
/// by route discovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowClass {
    /// A NetDyn probe packet (periodic, fixed size).
    Probe,
    /// Cross traffic: the "Internet stream" sharing queues with the probes.
    Cross,
    /// Simulator control traffic, e.g. TTL-exceeded replies.
    Control,
    /// A packet of a closed-loop window flow (TCP-like: `window` data
    /// packets outstanding, each acknowledgement clocking out the next) —
    /// the "two-way traffic" dynamics of the paper's refs [28, 29].
    Window,
}

/// Travel direction along a linear path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// From the source (node 0) toward the echo host (last node).
    Outbound,
    /// From the echo host back toward the source.
    Inbound,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Outbound => Direction::Inbound,
            Direction::Inbound => Direction::Outbound,
        }
    }
}

/// Default IP time-to-live for injected packets.
pub const DEFAULT_TTL: u8 = 64;

/// A packet in flight inside the simulator.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Unique id, assigned at injection.
    pub id: PacketId,
    /// Traffic class.
    pub class: FlowClass,
    /// Owning flow for [`FlowClass::Window`] packets (index + 1 into the
    /// engine's window sources); 0 for every other class.
    pub flow: u32,
    /// Size on the wire, in bytes (headers included).
    pub size: u32,
    /// Per-flow sequence number (the probe number `n` of the paper).
    pub seq: u64,
    /// Instant the packet entered the network.
    pub injected_at: SimTime,
    /// Remaining hop count; decremented at each node arrival.
    pub ttl: u8,
    /// Current travel direction.
    pub direction: Direction,
    /// Payload damaged in flight by a corruption impairment. Routers keep
    /// forwarding (they only check the IP header); the first *endpoint*
    /// that decodes the packet detects the bad wire checksum and discards
    /// it ([`DropReason::Corrupted`]).
    pub corrupted: bool,
    /// Instant the echo host turned this packet around, stamped into the
    /// packet itself so the state travels with it. Carrying the echo time
    /// in-band (instead of a source-side lookup table) is what lets a
    /// partitioned run deliver the packet in a different partition from
    /// the one that echoed it without any shared mutable state.
    pub echoed_at: Option<SimTime>,
}

/// Record of a packet that completed its round trip (or one-way journey for
/// cross traffic, which leaves the system after its attachment queue).
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The delivered packet's id.
    pub id: PacketId,
    /// Traffic class.
    pub class: FlowClass,
    /// Owning flow for window-flow packets; 0 otherwise.
    pub flow: u32,
    /// Per-flow sequence number.
    pub seq: u64,
    /// Injection instant.
    pub injected_at: SimTime,
    /// Instant the echo host turned the packet around (`None` for cross
    /// traffic, which is never echoed). Simulated clocks are perfectly
    /// synchronized, so — unlike the paper's geographically distant hosts
    /// (§2) — one-way delays are directly meaningful here.
    pub echoed_at: Option<SimTime>,
    /// Delivery instant (back at the source for probes).
    pub delivered_at: SimTime,
}

impl Delivery {
    /// Round-trip time of the delivered packet.
    pub fn rtt(&self) -> crate::time::SimDuration {
        self.delivered_at - self.injected_at
    }

    /// One-way delay source → echo host, if the packet was echoed.
    pub fn outbound_delay(&self) -> Option<crate::time::SimDuration> {
        self.echoed_at.map(|e| e - self.injected_at)
    }

    /// One-way delay echo host → source, if the packet was echoed.
    pub fn inbound_delay(&self) -> Option<crate::time::SimDuration> {
        self.echoed_at.map(|e| self.delivered_at - e)
    }
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// The port's finite buffer was full (drop-tail).
    BufferOverflow,
    /// Random loss on the link (models the faulty interface cards of the
    /// paper's ref \[17\], which drop packets independently at random).
    RandomLoss,
    /// TTL reached zero at an intermediate node.
    TtlExpired,
    /// Dropped early by RED queue management before the buffer filled.
    EarlyDrop,
    /// Destroyed by a Gilbert–Elliott burst-loss channel while the link
    /// was in (usually) its Bad state (see [`crate::impair`]).
    BurstLoss,
    /// Destroyed because the link was down (a flap outage window).
    LinkDown,
    /// Payload corrupted in flight; the endpoint's wire-checksum
    /// verification failed and the packet was discarded there.
    Corrupted,
}

/// Record of a dropped packet.
#[derive(Debug, Clone)]
pub struct DropRecord {
    /// The dropped packet's id.
    pub id: PacketId,
    /// Traffic class.
    pub class: FlowClass,
    /// Per-flow sequence number.
    pub seq: u64,
    /// When the drop happened.
    pub at: SimTime,
    /// Index of the port (see [`crate::engine::Engine::port_index`]) where
    /// the packet was lost.
    pub port: usize,
    /// Why it was lost.
    pub reason: DropReason,
}

/// A TTL-exceeded notification delivered back to the source, as used by
/// route discovery (`traceroute` semantics).
#[derive(Debug, Clone)]
pub struct TtlExceeded {
    /// Sequence number of the probe whose TTL expired.
    pub probe_seq: u64,
    /// Index (into [`crate::path::Path::nodes`]) of the node that dropped it.
    pub node: usize,
    /// When the notification arrived back at the source.
    pub received_at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Outbound.reverse(), Direction::Inbound);
        assert_eq!(Direction::Inbound.reverse(), Direction::Outbound);
    }

    #[test]
    fn delivery_rtt() {
        let d = Delivery {
            id: PacketId(1),
            class: FlowClass::Probe,
            flow: 0,
            seq: 0,
            injected_at: SimTime::from_millis(10),
            echoed_at: Some(SimTime::from_millis(80)),
            delivered_at: SimTime::from_millis(152),
        };
        assert_eq!(d.rtt(), SimDuration::from_millis(142));
        assert_eq!(d.outbound_delay(), Some(SimDuration::from_millis(70)));
        assert_eq!(d.inbound_delay(), Some(SimDuration::from_millis(72)));
    }
}
