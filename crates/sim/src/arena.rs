//! Generation-indexed packet arena.
//!
//! The engine used to move whole [`Packet`] structs through every event and
//! clone them into the port queues; with the echo timestamp now carried
//! in-band the packet is ~64 bytes, so each hop cost several copies plus an
//! oversized event record. [`PacketArena`] keeps every in-flight packet in
//! one slab and hands out 8-byte [`PacketRef`] handles instead: events and
//! port queues store the handle, and the packet itself is written once at
//! injection and read in place until it is delivered or dropped.
//!
//! Handles are *generation-checked*: each slot carries a generation counter
//! bumped on free, and a [`PacketRef`] is only valid while its generation
//! matches. A stale handle (a use-after-free in simulator logic) panics
//! immediately instead of silently reading a recycled packet.
//!
//! The slab recycles freed slots through an explicit free list, so a
//! steady-state run allocates no memory in the hot loop, and
//! [`PacketArena::clear`] keeps the slot buffer for reuse across engine
//! resets.

use crate::packet::Packet;

/// Handle to a packet stored in a [`PacketArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef {
    idx: u32,
    gen: u32,
}

#[derive(Debug)]
enum Slot {
    Occupied { gen: u32, packet: Packet },
    Vacant { gen: u32 },
}

/// A slab of in-flight packets with generation-checked handles.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        PacketArena::default()
    }

    /// Number of live (allocated, not yet freed) packets.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no packets are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Reserve capacity for `extra` additional live packets.
    pub fn reserve(&mut self, extra: usize) {
        let spare = self.free.len() + (self.slots.capacity() - self.slots.len());
        if extra > spare {
            self.slots.reserve(extra - spare);
        }
    }

    /// Store `packet` and return its handle.
    pub fn alloc(&mut self, packet: Packet) -> PacketRef {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            let gen = match slot {
                Slot::Vacant { gen } => *gen,
                Slot::Occupied { .. } => unreachable!("free list pointed at a live slot"),
            };
            *slot = Slot::Occupied { gen, packet };
            PacketRef { idx, gen }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("more than 2^32 live packets");
            self.slots.push(Slot::Occupied { gen: 0, packet });
            PacketRef { idx, gen: 0 }
        }
    }

    /// Read the packet behind `r`.
    ///
    /// # Panics
    /// Panics if `r` is stale (its packet was already freed) — always a
    /// simulator bug.
    pub fn get(&self, r: PacketRef) -> &Packet {
        match &self.slots[r.idx as usize] {
            Slot::Occupied { gen, packet } if *gen == r.gen => packet,
            _ => panic!("stale packet handle {r:?}"),
        }
    }

    /// Mutable access to the packet behind `r` (panics if stale).
    pub fn get_mut(&mut self, r: PacketRef) -> &mut Packet {
        match &mut self.slots[r.idx as usize] {
            Slot::Occupied { gen, packet } if *gen == r.gen => packet,
            _ => panic!("stale packet handle {r:?}"),
        }
    }

    /// Remove and return the packet behind `r`, freeing its slot (panics if
    /// stale).
    pub fn take(&mut self, r: PacketRef) -> Packet {
        let slot = &mut self.slots[r.idx as usize];
        match slot {
            Slot::Occupied { gen, .. } if *gen == r.gen => {
                let next_gen = gen.wrapping_add(1);
                let prev = std::mem::replace(slot, Slot::Vacant { gen: next_gen });
                self.free.push(r.idx);
                self.live -= 1;
                match prev {
                    Slot::Occupied { packet, .. } => packet,
                    Slot::Vacant { .. } => unreachable!("matched occupied above"),
                }
            }
            _ => panic!("stale packet handle {r:?}"),
        }
    }

    /// Drop every live packet and reset the arena to empty, keeping the
    /// slot and free-list allocations for reuse. All outstanding handles
    /// become invalid; callers must clear any structure holding them first.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Direction, FlowClass, PacketId};
    use crate::time::SimTime;

    fn pkt(id: u64) -> Packet {
        Packet {
            id: PacketId(id),
            class: FlowClass::Probe,
            flow: 0,
            size: 32,
            seq: id,
            injected_at: SimTime::ZERO,
            ttl: 64,
            direction: Direction::Outbound,
            corrupted: false,
            echoed_at: None,
        }
    }

    #[test]
    fn alloc_get_take_roundtrip() {
        let mut a = PacketArena::new();
        let r = a.alloc(pkt(7));
        assert_eq!(a.get(r).id, PacketId(7));
        a.get_mut(r).ttl = 3;
        let p = a.take(r);
        assert_eq!(p.ttl, 3);
        assert!(a.is_empty());
    }

    #[test]
    fn slots_are_recycled_with_fresh_generations() {
        let mut a = PacketArena::new();
        let r0 = a.alloc(pkt(0));
        a.take(r0);
        let r1 = a.alloc(pkt(1));
        // Same slot, new generation: the old handle must not alias.
        assert_ne!(r0, r1);
        assert_eq!(a.get(r1).id, PacketId(1));
        assert_eq!(a.len(), 1);
    }

    #[test]
    #[should_panic(expected = "stale packet handle")]
    fn stale_handle_panics() {
        let mut a = PacketArena::new();
        let r = a.alloc(pkt(0));
        a.take(r);
        a.alloc(pkt(1));
        a.get(r);
    }

    #[test]
    fn clear_keeps_capacity_and_invalidates() {
        let mut a = PacketArena::new();
        for i in 0..64 {
            a.alloc(pkt(i));
        }
        a.clear();
        assert!(a.is_empty());
        let r = a.alloc(pkt(99));
        assert_eq!(a.get(r).id, PacketId(99));
    }
}
