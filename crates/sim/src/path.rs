//! Linear multi-hop path topologies.
//!
//! The paper studies one connection at a time: a sequence of nodes joined by
//! point-to-point links, traversed out to an echo host and back. [`Path`]
//! captures exactly that, plus two named topologies calibrated to the routes
//! the paper measured (its Tables 1 and 2).

use crate::impair::ImpairmentSpec;
use crate::time::SimDuration;

/// How much a port may buffer before drop-tail kicks in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferLimit {
    /// At most this many packets queued (not counting the one in service).
    Packets(usize),
    /// At most this many bytes queued (not counting the one in service).
    Bytes(u64),
    /// No limit (lossless queue).
    Unbounded,
}

impl BufferLimit {
    /// Would a queue currently holding `pkts` packets / `bytes` bytes accept
    /// one more packet of `size` bytes?
    pub fn admits(self, pkts: usize, bytes: u64, size: u32) -> bool {
        match self {
            BufferLimit::Packets(k) => pkts < k,
            BufferLimit::Bytes(b) => bytes + size as u64 <= b,
            BufferLimit::Unbounded => true,
        }
    }
}

/// Active queue management for a port: plain drop-tail, or Random Early
/// Detection (Floyd & Jacobson; the paper cites their phase-effects work as
/// ref \[10\]). RED drops arrivals probabilistically as the EWMA queue length
/// grows. Its benefits presume congestion-responsive senders: the `red`
/// ablation study shows it only amplifies loss for the paper's open-loop
/// aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueuePolicy {
    /// Drop only on buffer overflow (the early-90s default).
    DropTail,
    /// Classic RED on the packet count.
    Red {
        /// Average queue length (packets) where early drops begin.
        min_threshold: f64,
        /// Average queue length where the drop probability reaches
        /// `max_probability` (all arrivals drop above it).
        max_threshold: f64,
        /// Drop probability at `max_threshold`.
        max_probability: f64,
        /// EWMA weight for the average queue length (typical: 0.002–0.05).
        weight: f64,
    },
}

impl QueuePolicy {
    /// A RED configuration with the classic rule-of-thumb thresholds for a
    /// buffer of `capacity` packets: min = capacity/4, max = capacity/2,
    /// max_p = 0.1, weight = 0.02.
    pub fn red_for_capacity(capacity: usize) -> QueuePolicy {
        QueuePolicy::Red {
            min_threshold: capacity as f64 / 4.0,
            max_threshold: capacity as f64 / 2.0,
            max_probability: 0.1,
            weight: 0.02,
        }
    }
}

/// Static description of one point-to-point link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Transmission rate in bits per second (the μ of the paper when this is
    /// the bottleneck link).
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Buffer limit of the transmit queue feeding this link (each direction
    /// has its own queue with this limit).
    pub buffer: BufferLimit,
    /// Probability that a packet entering this link is lost at random
    /// (faulty-interface model; applied independently per packet and per
    /// direction).
    pub random_loss: f64,
    /// Queue management discipline of this link's ports.
    pub policy: QueuePolicy,
    /// Fault-injection pipeline of this link (bursty loss, reordering,
    /// duplication, corruption, flaps, route shifts). Inert by default;
    /// applies to both directions, each with its own RNG stream.
    pub impair: ImpairmentSpec,
}

impl LinkSpec {
    /// A link with the given rate and propagation delay, a 64-packet buffer
    /// and no random loss.
    pub fn new(bandwidth_bps: u64, propagation: SimDuration) -> Self {
        LinkSpec {
            bandwidth_bps,
            propagation,
            buffer: BufferLimit::Packets(64),
            random_loss: 0.0,
            policy: QueuePolicy::DropTail,
            impair: ImpairmentSpec::none(),
        }
    }

    /// Replace the queue-management policy.
    pub fn with_policy(mut self, policy: QueuePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the buffer limit.
    pub fn with_buffer(mut self, buffer: BufferLimit) -> Self {
        self.buffer = buffer;
        self
    }

    /// Replace the random-loss probability.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_random_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0,1]"
        );
        self.random_loss = p;
        self
    }

    /// Replace the fault-injection pipeline (see [`crate::impair`]).
    pub fn with_impairments(mut self, impair: ImpairmentSpec) -> Self {
        self.impair = impair;
        self
    }
}

/// A linear path: `nodes[0]` is the probe source (and, as in the paper,
/// also the destination), `nodes.last()` is the echo host, and `links[i]`
/// joins `nodes[i]` to `nodes[i+1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Node names, source first, echo host last.
    pub nodes: Vec<String>,
    /// Links; `links.len() == nodes.len() - 1`.
    pub links: Vec<LinkSpec>,
}

impl Path {
    /// Build a path from node names and link specs.
    ///
    /// # Panics
    /// Panics unless there are at least two nodes and exactly
    /// `nodes.len() - 1` links.
    pub fn new(nodes: Vec<String>, links: Vec<LinkSpec>) -> Self {
        assert!(nodes.len() >= 2, "a path needs at least two nodes");
        assert_eq!(
            links.len(),
            nodes.len() - 1,
            "a path of n nodes needs n-1 links"
        );
        Path { nodes, links }
    }

    /// Start building a path at the named source node.
    pub fn builder(source: impl Into<String>) -> PathBuilder {
        PathBuilder {
            nodes: vec![source.into()],
            links: Vec::new(),
        }
    }

    /// Number of links (hops) one way.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// Index and spec of the slowest link — the bottleneck μ of the paper.
    pub fn bottleneck(&self) -> (usize, &LinkSpec) {
        self.links
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.bandwidth_bps)
            .expect("path has at least one link")
    }

    /// The fixed round-trip component `D`: twice the propagation plus the
    /// per-hop transmission time of a `probe_size`-byte packet in each
    /// direction, with no queueing anywhere.
    ///
    /// This is what the cluster near `(D, D)` in the paper's phase plots
    /// measures.
    pub fn base_rtt(&self, probe_size: u32) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for link in &self.links {
            let one_way =
                link.propagation + SimDuration::transmission(probe_size, link.bandwidth_bps);
            total += one_way * 2;
        }
        total
    }

    /// The route between INRIA and the University of Maryland as measured by
    /// `traceroute` in July 1992 (the paper's Table 1).
    ///
    /// The transatlantic link between `icm-sophia.icp.net` (node 4) and
    /// `Ithaca.NY.NSS.NSF.NET` (node 5) is the 128 kb/s bottleneck.
    /// Propagation delays are calibrated so the no-queueing round-trip time
    /// of a 32-byte probe is ≈ 140 ms, the `D` the paper reads off Figure 2.
    pub fn inria_umd_1992() -> Path {
        let eth = 10_000_000; // 10 Mb/s campus/regional segments
        let t1 = 1_544_000; // T1 backbone segments
        let ms = SimDuration::from_millis;
        let us = SimDuration::from_micros;
        Path::new(
            vec![
                "source.inria.fr".into(), // the DECstation 5000 source host
                "tom.inria.fr".into(),
                "t8-gw.inria.fr".into(),
                "sophia-gw.atlantic.fr".into(),
                "icm-sophia.icp.net".into(),
                "Ithaca.NY.NSS.NSF.NET".into(),
                "Ithaca1.NY.NSS.NSF.NET".into(),
                "nss-SURA-eth.sura.net".into(),
                "sura8-umd-c1.sura.net".into(),
                "csc2hub-gw.umd.edu".into(),
                "avwhub-gw.umd.edu".into(), // echo host at UMd
            ],
            vec![
                LinkSpec::new(eth, us(200)),
                LinkSpec::new(eth, us(300)),
                LinkSpec::new(t1, ms(2)),
                LinkSpec::new(t1, us(500)),
                // Transatlantic 128 kb/s bottleneck between icm-sophia and
                // Ithaca (the paper's nodes 4 and 5); its finite buffer is
                // where overflow losses happen. Propagation calibrated so
                // the no-load RTT of a 72-byte wire probe is ≈ 140 ms (D in
                // the paper's Figure 2). The buffer is slot-limited, as
                // early-90s router queues were: 22 slots of 512-byte bulk
                // packets drain in ~700 ms, bracketing the paper's observed
                // maximum queueing delay of ~620 ms (its §4).
                LinkSpec::new(128_000, us(49_750)).with_buffer(BufferLimit::Packets(22)),
                LinkSpec::new(t1, ms(2)),
                // SURA regional segment: carries the random loss the paper
                // attributes to faulty interface cards (ref [17], "up to
                // 3%"); two lossy interfaces crossed twice put the random
                // floor near the paper's ~10% ulp plateau.
                LinkSpec::new(eth, ms(8)).with_random_loss(0.022),
                LinkSpec::new(eth, ms(2)).with_random_loss(0.022),
                LinkSpec::new(eth, us(300)),
                LinkSpec::new(eth, us(200)),
            ],
        )
    }

    /// The route between the University of Maryland and the University of
    /// Pittsburgh in May 1993 (the paper's Table 2): a T3 (45 Mb/s) ANSnet
    /// backbone path whose bottleneck is far faster than the INRIA–UMd
    /// transatlantic link.
    pub fn umd_pitt_1993() -> Path {
        let eth = 10_000_000;
        let fddi = 100_000_000; // campus FDDI backbone segments
        let t3 = 45_000_000;
        let ms = SimDuration::from_millis;
        let us = SimDuration::from_micros;
        Path::new(
            vec![
                "lena.cs.umd.edu".into(),
                "avw1hub-gw.umd.edu".into(),
                "csc2hub-gw.umd.edu".into(),
                "192.221.38.5".into(),
                "en-0.enss136.t3.nsf.net".into(),
                "t3-1.Washington-DC-cnss58.t3.ans.net".into(),
                "t3-3.Washington-DC-cnss56.t3.ans.net".into(),
                "t3-0.New-York-cnss32.t3.ans.net".into(),
                "t3-1.Cleveland-cnss40.t3.ans.net".into(),
                "t3-0.Cleveland-cnss41.t3.ans.net".into(),
                "t3-0.enss132.t3.ans.net".into(),
                "externals.gw.pitt.edu".into(),
                "136.142.2.54".into(),
                "hub-eh.gw.pitt.edu".into(), // echo host at Pitt
            ],
            vec![
                LinkSpec::new(fddi, us(200)),
                LinkSpec::new(fddi, us(200)),
                LinkSpec::new(fddi, us(300)),
                LinkSpec::new(t3, ms(1)),
                LinkSpec::new(t3, us(300)),
                LinkSpec::new(t3, us(300)),
                LinkSpec::new(t3, ms(2)),
                LinkSpec::new(t3, ms(3)),
                LinkSpec::new(t3, us(300)),
                LinkSpec::new(t3, ms(1)),
                // The Pittsburgh campus Ethernet: the unique (if unproven —
                // "it is not clear which link in the path is the
                // bottleneck") slowest link of this path.
                LinkSpec::new(eth, us(500)).with_buffer(BufferLimit::Packets(50)),
                LinkSpec::new(eth, us(300)),
                LinkSpec::new(eth, us(200)),
            ],
        )
    }
}

/// Incremental [`Path`] construction.
#[derive(Debug)]
pub struct PathBuilder {
    nodes: Vec<String>,
    links: Vec<LinkSpec>,
}

impl PathBuilder {
    /// Append a link to a new node.
    pub fn hop(mut self, link: LinkSpec, node: impl Into<String>) -> Self {
        self.links.push(link);
        self.nodes.push(node.into());
        self
    }

    /// Finish building.
    ///
    /// # Panics
    /// Panics if no hop was added.
    pub fn build(self) -> Path {
        Path::new(self.nodes, self.links)
    }
}

/// A minimal two-node path realizing the paper's Figure-3 model directly:
/// a fixed delay `fixed_rtt` (split evenly over propagation of the single
/// link, both directions) and one FIFO bottleneck of rate `mu_bps` with the
/// given buffer, between a source and an echo host.
///
/// The return direction gets an effectively infinite-rate, lossless queue so
/// that *all* queueing happens at the single modelled bottleneck, exactly as
/// in the paper's analysis.
pub fn figure3_model(mu_bps: u64, fixed_rtt: SimDuration, buffer: BufferLimit) -> Path {
    // One link traversed twice: propagation per direction = fixed_rtt / 2.
    Path::new(
        vec!["source".into(), "echo".into()],
        vec![LinkSpec::new(mu_bps, fixed_rtt / 2).with_buffer(buffer)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn buffer_limit_admits() {
        assert!(BufferLimit::Packets(2).admits(1, 999, 100));
        assert!(!BufferLimit::Packets(2).admits(2, 0, 1));
        assert!(BufferLimit::Bytes(100).admits(5, 68, 32));
        assert!(!BufferLimit::Bytes(100).admits(0, 69, 32));
        assert!(BufferLimit::Unbounded.admits(usize::MAX - 1, u64::MAX - 1, 1));
    }

    #[test]
    fn builder_matches_new() {
        let p = Path::builder("a")
            .hop(LinkSpec::new(1_000_000, SimDuration::from_millis(1)), "b")
            .hop(LinkSpec::new(2_000_000, SimDuration::from_millis(2)), "c")
            .build();
        assert_eq!(p.nodes, vec!["a", "b", "c"]);
        assert_eq!(p.hop_count(), 2);
    }

    #[test]
    #[should_panic(expected = "n-1 links")]
    fn mismatched_links_panic() {
        Path::new(vec!["a".into(), "b".into()], vec![]);
    }

    #[test]
    fn inria_umd_matches_table1() {
        let p = Path::inria_umd_1992();
        // Table 1 lists 10 nodes after the source.
        assert_eq!(p.nodes.len(), 11);
        assert_eq!(p.hop_count(), 10);
        let (i, b) = p.bottleneck();
        assert_eq!(b.bandwidth_bps, 128_000);
        assert_eq!(p.nodes[i], "icm-sophia.icp.net");
        assert_eq!(p.nodes[i + 1], "Ithaca.NY.NSS.NSF.NET");
    }

    #[test]
    fn inria_umd_base_rtt_near_140ms() {
        // The paper reads D ≈ 140 ms off the phase plot for a 32-byte probe.
        let d = Path::inria_umd_1992().base_rtt(32).as_millis_f64();
        assert!(
            (135.0..=145.0).contains(&d),
            "base RTT {d} ms not within calibration band"
        );
    }

    #[test]
    fn umd_pitt_matches_table2() {
        let p = Path::umd_pitt_1993();
        // Table 2 lists 14 nodes including the source host.
        assert_eq!(p.nodes.len(), 14);
        assert_eq!(p.hop_count(), 13);
        let (_, b) = p.bottleneck();
        // Far faster bottleneck than the 128 kb/s transatlantic link.
        assert!(b.bandwidth_bps >= 10_000_000);
    }

    #[test]
    fn figure3_model_base_rtt_is_fixed_plus_service() {
        let p = figure3_model(
            128_000,
            SimDuration::from_millis(140),
            BufferLimit::Packets(30),
        );
        // D + two 2 ms transmissions of the 32-byte probe (out and back).
        assert_eq!(p.base_rtt(32), SimDuration::from_millis(144));
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn bad_loss_probability_panics() {
        let _ = LinkSpec::new(1, SimDuration::ZERO).with_random_loss(1.5);
    }
}
