//! # probenet-sim
//!
//! A deterministic discrete-event network simulator purpose-built for
//! end-to-end probing experiments in the style of Bolot's SIGCOMM '93 study
//! *"End-to-End Packet Delay and Loss Behavior in the Internet"*.
//!
//! The simulator models exactly the setting the paper measures: a **linear
//! multi-hop path** from a source host, through store-and-forward routers
//! joined by point-to-point links, to an **echo host** that immediately
//! returns each probe. Every link direction has its own FIFO transmit queue
//! with a finite drop-tail buffer, and any queue can carry **cross traffic**
//! (the paper's "Internet stream") competing with the probes.
//!
//! Design points, in the spirit of small, robust network stacks:
//!
//! * **Integer time.** All simulated time is in integer nanoseconds
//!   ([`SimTime`]/[`SimDuration`]); there is no floating-point drift and no
//!   platform-dependent rounding.
//! * **Determinism.** The event queue breaks timestamp ties deterministically
//!   (packet-id lanes for link crossings, insertion order otherwise), and all
//!   randomness flows from per-port streams derived from a single seed: the
//!   same inputs produce the same results, bit for bit — serial or
//!   partitioned ([`parallel::run_partitioned`]).
//! * **Fault injection.** Links can drop packets at random (the paper's
//!   faulty-interface-card losses) independently of buffer overflow.
//! * **Route discovery.** Packets carry a TTL; routers answer expired probes
//!   with time-exceeded replies, so `traceroute`-style discovery
//!   ([`engine::discover_route`]) reproduces the paper's Tables 1 and 2.
//!
//! ## Quick example
//!
//! ```
//! use probenet_sim::{Engine, Path, SimTime};
//!
//! // The paper's INRIA -> University of Maryland path, July 1992.
//! let path = Path::inria_umd_1992();
//! let mut engine = Engine::new(path, 42);
//!
//! // Send 100 32-byte probes, one every 50 ms (one of the paper's settings).
//! for n in 0..100u64 {
//!     engine.inject_probe(SimTime::from_millis(50 * n), 32, n);
//! }
//! engine.run();
//!
//! // Every probe either completed a round trip or was dropped.
//! let delivered = engine.probe_deliveries().count();
//! let dropped = engine.drops().len();
//! assert_eq!(delivered + dropped, 100);
//! ```

pub mod arena;
pub mod engine;
pub mod event;
pub mod impair;
pub mod packet;
pub mod parallel;
pub mod path;
pub mod queue;
pub mod time;
pub mod trace;

pub use arena::{PacketArena, PacketRef};
pub use engine::{discover_route, Engine, EngineStats, RemoteArrival, WindowFlow, TTL_REPLY_SIZE};
pub use event::{reference::BinaryHeapQueue, EventQueue};
pub use impair::{
    DuplicateSpec, FlapWindow, GilbertElliott, ImpairmentSpec, ReorderSpec, RouteShift,
};
pub use packet::{
    Delivery, Direction, DropReason, DropRecord, FlowClass, Packet, PacketId, TtlExceeded,
    DEFAULT_TTL,
};
pub use parallel::{
    effective_threads, run_partitioned, CrossAttachment, InjectionPlan, ParallelOutcome,
    ProbeInjection,
};
pub use path::{figure3_model, BufferLimit, LinkSpec, Path, PathBuilder, QueuePolicy};
pub use queue::{Admission, Port, PortStats};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceKind};
