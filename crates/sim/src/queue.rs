//! Output ports: FIFO transmit queues with a single server.
//!
//! Every link direction is fed by one [`Port`]: a finite drop-tail FIFO
//! buffer plus a transmitter serving packets at the link rate. This is the
//! "single server queue with finite buffer and FIFO service discipline" of
//! the paper's Figure 3, instantiated once per hop and direction.
//!
//! Ports hold [`PacketRef`] handles into the engine's [`crate::arena`]
//! rather than packets by value: admitting a packet moves 12 bytes instead
//! of cloning the struct, and the packet itself stays in one place from
//! injection to delivery.

use std::collections::VecDeque;

use crate::arena::PacketRef;
#[cfg(test)]
use crate::path::BufferLimit;
use crate::path::{LinkSpec, QueuePolicy};
use crate::time::{SimDuration, SimTime};

/// Aggregate statistics for one port.
#[derive(Debug, Clone, Default)]
pub struct PortStats {
    /// Packets that attempted to enter the queue (before any drop decision).
    pub arrivals: u64,
    /// Packets fully transmitted.
    pub served: u64,
    /// Bytes fully transmitted.
    pub bytes_served: u64,
    /// Packets dropped because the buffer was full.
    pub overflow_drops: u64,
    /// Packets dropped early by RED.
    pub early_drops: u64,
    /// Packets dropped by link random loss.
    pub random_drops: u64,
    /// Packets destroyed by the link's fault injectors (burst loss or an
    /// outage window) before reaching the queue.
    pub impair_drops: u64,
    /// Largest number of packets ever held (queued + in service).
    pub max_occupancy: usize,
    /// Total time the server spent transmitting.
    pub busy_time: SimDuration,
    /// ∫ occupancy dt, in packet·nanoseconds — divide by observed time for
    /// the time-average number in system.
    pub occupancy_integral: u128,
}

impl PortStats {
    /// Time-average number of packets in the system over `[0, now]`.
    pub fn mean_occupancy(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.occupancy_integral as f64 / now.as_nanos() as f64
    }

    /// Fraction of `[0, now]` the server was busy (the utilization ρ).
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.busy_time.as_nanos() as f64 / now.as_nanos() as f64
    }
}

/// One transmit queue + server.
#[derive(Debug)]
pub struct Port {
    /// The static link parameters this port serves.
    pub spec: LinkSpec,
    /// Cached `spec.impair.is_inert()` — read on every arrival; the spec's
    /// impairment set is fixed for the port's lifetime.
    pub impair_inert: bool,
    /// `(handle, wire size)` — the size rides beside the handle so byte
    /// accounting and service times never touch the arena.
    queue: VecDeque<(PacketRef, u32)>,
    queued_bytes: u64,
    /// Packet currently being transmitted, if any.
    in_service: Option<(PacketRef, u32)>,
    service_started: SimTime,
    last_change: SimTime,
    /// RED state: EWMA of the queue length (packets), updated per arrival.
    avg_queue: f64,
    /// RED state: arrivals since the last early drop (the count correction
    /// that spaces early drops roughly uniformly).
    since_drop: u64,
    /// Running statistics.
    pub stats: PortStats,
}

/// Outcome of offering a packet to a port.
#[derive(Debug, PartialEq, Eq)]
pub enum Admission {
    /// Packet was queued; the server was already busy.
    Queued,
    /// Packet was queued and service should start now: the caller must
    /// schedule a `TxDone` after the returned transmission time.
    StartService(SimDuration),
    /// Buffer full; packet dropped (drop-tail).
    Overflow,
    /// Dropped early by RED before the buffer filled.
    EarlyDrop,
}

impl Port {
    /// A fresh idle port for the given link.
    pub fn new(spec: LinkSpec) -> Self {
        Port {
            impair_inert: spec.impair.is_inert(),
            spec,
            queue: VecDeque::new(),
            queued_bytes: 0,
            in_service: None,
            service_started: SimTime::ZERO,
            last_change: SimTime::ZERO,
            avg_queue: 0.0,
            since_drop: 0,
            stats: PortStats::default(),
        }
    }

    /// Return the port to its freshly constructed state — idle server,
    /// empty queue, zeroed statistics — while keeping the queue's buffer
    /// allocation for reuse.
    pub fn reset(&mut self) {
        self.queue.clear();
        self.queued_bytes = 0;
        self.in_service = None;
        self.service_started = SimTime::ZERO;
        self.last_change = SimTime::ZERO;
        self.avg_queue = 0.0;
        self.since_drop = 0;
        self.stats = PortStats::default();
    }

    /// Packets in the system (queued + in service).
    pub fn occupancy(&self) -> usize {
        self.queue.len() + usize::from(self.in_service.is_some())
    }

    /// Bytes waiting in the buffer (not counting the packet in service).
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// True if the server is transmitting.
    pub fn busy(&self) -> bool {
        self.in_service.is_some()
    }

    fn integrate(&mut self, now: SimTime) {
        let span = now.saturating_since(self.last_change).as_nanos();
        self.stats.occupancy_integral += span as u128 * self.occupancy() as u128;
        self.last_change = now;
    }

    /// Offer the packet behind `r` (of wire size `size`) to the queue at
    /// instant `now`. `red_uniform` supplies one uniform(0,1) sample *only
    /// if* RED's probabilistic branch needs it — drop-tail ports never
    /// invoke it, so their admission consumes no randomness at all.
    ///
    /// Random-loss is **not** applied here — the engine decides that before
    /// calling, so the port stays a pure FIFO queue.
    pub fn offer(
        &mut self,
        now: SimTime,
        r: PacketRef,
        size: u32,
        red_uniform: impl FnOnce() -> f64,
    ) -> Admission {
        self.stats.arrivals += 1;
        if let QueuePolicy::Red {
            min_threshold,
            max_threshold,
            max_probability,
            weight,
        } = self.spec.policy
        {
            // Per-arrival EWMA of the instantaneous queue length. (The
            // classic idle-time decay refinement is omitted; at the arrival
            // rates probed here the difference is negligible and the
            // simplification is documented.)
            self.avg_queue = (1.0 - weight) * self.avg_queue + weight * self.occupancy() as f64;
            self.since_drop += 1;
            if self.avg_queue >= max_threshold {
                self.stats.early_drops += 1;
                self.since_drop = 0;
                return Admission::EarlyDrop;
            }
            if self.avg_queue > min_threshold {
                let pb = max_probability * (self.avg_queue - min_threshold)
                    / (max_threshold - min_threshold);
                // Count correction spaces early drops ~uniformly.
                let pa = pb / (1.0 - (self.since_drop as f64 * pb).min(0.999));
                if red_uniform() < pa {
                    self.stats.early_drops += 1;
                    self.since_drop = 0;
                    return Admission::EarlyDrop;
                }
            }
        }
        let admitted = self
            .spec
            .buffer
            .admits(self.queue.len(), self.queued_bytes, size);
        if !admitted {
            self.stats.overflow_drops += 1;
            return Admission::Overflow;
        }
        self.integrate(now);
        self.queued_bytes += size as u64;
        self.queue.push_back((r, size));
        let occ = self.occupancy();
        if occ > self.stats.max_occupancy {
            self.stats.max_occupancy = occ;
        }
        if self.in_service.is_none() {
            let d = self.start_next(now).expect("queue is non-empty");
            Admission::StartService(d)
        } else {
            Admission::Queued
        }
    }

    /// Begin serving the head-of-line packet; returns its transmission time,
    /// or `None` if the queue is empty.
    fn start_next(&mut self, now: SimTime) -> Option<SimDuration> {
        debug_assert!(self.in_service.is_none());
        let (r, size) = self.queue.pop_front()?;
        self.queued_bytes -= size as u64;
        let d = SimDuration::transmission(size, self.spec.bandwidth_bps);
        self.in_service = Some((r, size));
        self.service_started = now;
        Some(d)
    }

    /// Complete the in-flight transmission at instant `now`.
    ///
    /// Returns the transmitted packet's handle and, if another packet
    /// immediately enters service, its transmission time (the caller
    /// schedules the next `TxDone`).
    ///
    /// # Panics
    /// Panics if no packet was in service — a scheduling bug.
    pub fn complete(&mut self, now: SimTime) -> (PacketRef, Option<SimDuration>) {
        assert!(
            self.in_service.is_some(),
            "TxDone for an idle port: scheduling bug"
        );
        // Fold the busy span into the occupancy integral while the departing
        // packet still counts toward the occupancy.
        self.integrate(now);
        let (r, size) = self.in_service.take().expect("checked above");
        self.stats.served += 1;
        self.stats.bytes_served += size as u64;
        self.stats.busy_time += now - self.service_started;
        let next = self.start_next(now);
        if next.is_some() {
            self.service_started = now;
        }
        (r, next)
    }

    /// Record a random-loss drop (bookkeeping only; the packet never enters
    /// the queue).
    pub fn note_random_drop(&mut self) {
        self.stats.arrivals += 1;
        self.stats.random_drops += 1;
    }

    /// Record a fault-injector drop (burst loss or outage; bookkeeping
    /// only — the packet never enters the queue).
    pub fn note_impair_drop(&mut self) {
        self.stats.arrivals += 1;
        self.stats.impair_drops += 1;
    }

    /// Fold the idle/busy area up to `now` into the occupancy integral;
    /// call once at the end of a run before reading statistics.
    pub fn finalize(&mut self, now: SimTime) {
        self.integrate(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::PacketArena;
    use crate::packet::{Direction, FlowClass, Packet, PacketId};

    fn pkt(id: u64, size: u32) -> Packet {
        Packet {
            id: PacketId(id),
            class: FlowClass::Probe,
            flow: 0,
            size,
            seq: id,
            injected_at: SimTime::ZERO,
            ttl: 64,
            direction: Direction::Outbound,
            corrupted: false,
            echoed_at: None,
        }
    }

    /// Allocate a test packet and offer it with a drop-tail uniform.
    fn offer(a: &mut PacketArena, p: &mut Port, at: SimTime, id: u64, size: u32) -> Admission {
        let r = a.alloc(pkt(id, size));
        p.offer(at, r, size, || 1.0)
    }

    fn port(buffer: BufferLimit) -> Port {
        Port::new(LinkSpec::new(128_000, SimDuration::ZERO).with_buffer(buffer))
    }

    #[test]
    fn first_packet_starts_service_immediately() {
        let mut a = PacketArena::new();
        let mut p = port(BufferLimit::Packets(10));
        match offer(&mut a, &mut p, SimTime::ZERO, 0, 32) {
            Admission::StartService(d) => assert_eq!(d, SimDuration::from_millis(2)),
            other => panic!("expected StartService, got {other:?}"),
        }
        assert!(p.busy());
        assert_eq!(p.occupancy(), 1);
    }

    #[test]
    fn fifo_order_and_back_to_back_service() {
        let mut a = PacketArena::new();
        let mut p = port(BufferLimit::Packets(10));
        let t0 = SimTime::ZERO;
        assert!(matches!(
            offer(&mut a, &mut p, t0, 0, 32),
            Admission::StartService(_)
        ));
        assert_eq!(offer(&mut a, &mut p, t0, 1, 32), Admission::Queued);
        assert_eq!(offer(&mut a, &mut p, t0, 2, 32), Admission::Queued);

        let t1 = SimTime::from_millis(2);
        let (done, next) = p.complete(t1);
        assert_eq!(a.get(done).id, PacketId(0));
        assert_eq!(next, Some(SimDuration::from_millis(2)));

        let t2 = SimTime::from_millis(4);
        let (done, next) = p.complete(t2);
        assert_eq!(a.get(done).id, PacketId(1));
        assert_eq!(next, Some(SimDuration::from_millis(2)));

        let (done, next) = p.complete(SimTime::from_millis(6));
        assert_eq!(a.get(done).id, PacketId(2));
        assert_eq!(next, None);
        assert!(!p.busy());
        assert_eq!(p.stats.served, 3);
        assert_eq!(p.stats.bytes_served, 96);
        assert_eq!(p.stats.busy_time, SimDuration::from_millis(6));
    }

    #[test]
    fn drop_tail_on_packet_limit() {
        // Buffer of 2 packets + 1 in service = at most 3 in system.
        let mut a = PacketArena::new();
        let mut p = port(BufferLimit::Packets(2));
        let t = SimTime::ZERO;
        assert!(matches!(
            offer(&mut a, &mut p, t, 0, 32),
            Admission::StartService(_)
        ));
        assert_eq!(offer(&mut a, &mut p, t, 1, 32), Admission::Queued);
        assert_eq!(offer(&mut a, &mut p, t, 2, 32), Admission::Queued);
        assert_eq!(offer(&mut a, &mut p, t, 3, 32), Admission::Overflow);
        assert_eq!(p.stats.overflow_drops, 1);
        assert_eq!(p.stats.arrivals, 4);
        assert_eq!(p.stats.max_occupancy, 3);
    }

    #[test]
    fn drop_tail_on_byte_limit() {
        let mut a = PacketArena::new();
        let mut p = port(BufferLimit::Bytes(64));
        let t = SimTime::ZERO;
        // First goes straight into service — queue bytes stay 0.
        assert!(matches!(
            offer(&mut a, &mut p, t, 0, 60),
            Admission::StartService(_)
        ));
        assert_eq!(offer(&mut a, &mut p, t, 1, 40), Admission::Queued);
        assert_eq!(p.queued_bytes(), 40);
        // 40 + 32 > 64: reject.
        assert_eq!(offer(&mut a, &mut p, t, 2, 32), Admission::Overflow);
        // But a 24-byte packet still fits exactly.
        assert_eq!(offer(&mut a, &mut p, t, 3, 24), Admission::Queued);
        assert_eq!(p.queued_bytes(), 64);
    }

    #[test]
    fn occupancy_integral_measures_mean_queue() {
        let mut a = PacketArena::new();
        let mut p = port(BufferLimit::Unbounded);
        // One 32-byte packet at t=0, served at t=2ms, then idle to t=4ms.
        assert!(matches!(
            offer(&mut a, &mut p, SimTime::ZERO, 0, 32),
            Admission::StartService(_)
        ));
        p.complete(SimTime::from_millis(2));
        p.finalize(SimTime::from_millis(4));
        // Occupancy was 1 for half the window.
        let mean = p.stats.mean_occupancy(SimTime::from_millis(4));
        assert!((mean - 0.5).abs() < 1e-9, "mean occupancy {mean}");
        let util = p.stats.utilization(SimTime::from_millis(4));
        assert!((util - 0.5).abs() < 1e-9, "utilization {util}");
    }

    #[test]
    #[should_panic(expected = "idle port")]
    fn complete_on_idle_port_panics() {
        let mut p = port(BufferLimit::Unbounded);
        p.complete(SimTime::ZERO);
    }

    #[test]
    fn overflow_does_not_perturb_queue_state() {
        let mut a = PacketArena::new();
        let mut p = port(BufferLimit::Packets(1));
        let t = SimTime::ZERO;
        offer(&mut a, &mut p, t, 0, 32);
        offer(&mut a, &mut p, t, 1, 32);
        let occ_before = p.occupancy();
        assert_eq!(offer(&mut a, &mut p, t, 2, 32), Admission::Overflow);
        assert_eq!(p.occupancy(), occ_before);
        assert_eq!(p.queued_bytes(), 32);
    }

    fn red_port(capacity: usize) -> Port {
        Port::new(
            LinkSpec::new(128_000, SimDuration::ZERO)
                .with_buffer(BufferLimit::Packets(capacity))
                .with_policy(QueuePolicy::red_for_capacity(capacity)),
        )
    }

    #[test]
    fn red_admits_everything_while_queue_is_short() {
        let mut a = PacketArena::new();
        let mut p = red_port(40);
        // Never let the EWMA reach min_threshold (10): short bursts.
        for i in 0..5 {
            let r = a.alloc(pkt(i, 32));
            let adm = p.offer(SimTime::ZERO, r, 32, || 0.0);
            assert_ne!(adm, Admission::EarlyDrop, "packet {i}: {adm:?}");
        }
        assert_eq!(p.stats.early_drops, 0);
    }

    #[test]
    fn red_drops_early_under_sustained_backlog() {
        // A fast EWMA (weight 0.3) tracks the backlog closely: arrivals
        // with no service completions push the average past min_threshold
        // and, with an unlucky uniform, drop early while the 40-slot
        // buffer still has plenty of room.
        let mut a = PacketArena::new();
        let mut p = Port::new(
            LinkSpec::new(128_000, SimDuration::ZERO)
                .with_buffer(BufferLimit::Packets(40))
                .with_policy(QueuePolicy::Red {
                    min_threshold: 10.0,
                    max_threshold: 20.0,
                    max_probability: 0.1,
                    weight: 0.3,
                }),
        );
        let mut early = 0;
        for i in 0..35 {
            let r = a.alloc(pkt(i, 32));
            if p.offer(SimTime::ZERO, r, 32, || 0.0) == Admission::EarlyDrop {
                early += 1;
            }
        }
        assert!(early > 0, "RED never early-dropped");
        assert!(
            p.occupancy() < 40,
            "early drops must precede buffer exhaustion"
        );
        assert_eq!(p.stats.early_drops, early);
        assert_eq!(p.stats.overflow_drops, 0);
    }

    #[test]
    fn red_with_lucky_uniform_never_drops_below_max_threshold() {
        let mut a = PacketArena::new();
        let mut p = red_port(40);
        // uniform = 1.0 defeats the probabilistic branch; only the hard
        // max_threshold (EWMA >= 20) cutoff can drop.
        let mut admitted = 0;
        for i in 0..40 {
            let r = a.alloc(pkt(i, 32));
            match p.offer(SimTime::ZERO, r, 32, || 1.0) {
                Admission::EarlyDrop => break,
                _ => admitted += 1,
            }
        }
        assert!(admitted >= 20, "admitted only {admitted}");
    }
}
