//! Optional per-packet event tracing.
//!
//! Tracing exists for tests and debugging: with it enabled, every queue
//! entry, transmission, drop, echo and delivery is recorded in order, so a
//! test can assert on the exact life of a packet rather than only on
//! aggregate outputs.

use crate::packet::{FlowClass, PacketId};
use crate::time::SimTime;

/// What happened to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Entered a port's buffer.
    Enqueue,
    /// Began transmission.
    TxStart,
    /// Finished transmission.
    TxDone,
    /// Dropped: buffer full.
    OverflowDrop,
    /// Dropped: RED early drop.
    EarlyDrop,
    /// Dropped: random link loss.
    RandomDrop,
    /// Dropped: TTL expired.
    TtlExpired,
    /// Dropped: Gilbert–Elliott burst-loss channel.
    BurstDrop,
    /// Dropped: link down (flap outage window).
    LinkDownDrop,
    /// Payload corrupted in flight (the packet keeps travelling).
    CorruptMark,
    /// Discarded at an endpoint: wire-checksum verification failed.
    ChecksumDrop,
    /// A duplicate copy of the packet was created at a hop.
    Duplicated,
    /// Held back by a reordering impairment before entering the queue.
    Deferred,
    /// Turned around by the echo host.
    Echoed,
    /// Arrived back at the source.
    Delivered,
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// Port involved, if any (`None` for node-level events).
    pub port: Option<usize>,
    /// The packet.
    pub packet: PacketId,
    /// Its traffic class.
    pub class: FlowClass,
    /// Its flow sequence number.
    pub seq: u64,
    /// What happened.
    pub kind: TraceKind,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::path::{LinkSpec, Path};
    use crate::time::SimDuration;

    #[test]
    fn trace_records_full_packet_life() {
        let path = Path::new(
            vec!["src".into(), "echo".into()],
            vec![LinkSpec::new(128_000, SimDuration::from_millis(10))],
        );
        let mut e = Engine::new(path, 0);
        e.enable_trace();
        e.inject_probe(SimTime::ZERO, 32, 0);
        e.run();
        let kinds: Vec<_> = e.take_trace().into_iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::Enqueue, // outbound port
                TraceKind::TxStart,
                TraceKind::TxDone,
                TraceKind::Echoed,
                TraceKind::Enqueue, // inbound port
                TraceKind::TxStart,
                TraceKind::TxDone,
                TraceKind::Delivered,
            ]
        );
    }

    #[test]
    fn trace_timestamps_are_monotone() {
        let path = Path::inria_umd_1992();
        let mut e = Engine::new(path, 5);
        e.enable_trace();
        for n in 0..50u64 {
            e.inject_probe(SimTime::from_millis(20 * n), 32, n);
        }
        e.run();
        let trace = e.take_trace();
        assert!(!trace.is_empty());
        for w in trace.windows(2) {
            assert!(w[0].at <= w[1].at, "trace out of order");
        }
    }
}
