//! Exhaustive interleaving exploration of the SPSC ring under the loom
//! model checker (build with `RUSTFLAGS="--cfg loom"`).
//!
//! These models are deliberately tiny — a 2-slot ring and a handful of
//! operations — so the depth-first search over schedules is exhaustive
//! (see the soundness notes in `vendor/loom/src/lib.rs`). What they pin:
//!
//! * blocking `send` never loses or reorders a record, in every schedule,
//!   including the schedule where the producer blocks on a full ring and
//!   must be woken by a consumer drain;
//! * the drop-accounting invariant `records + dropped == produced` holds
//!   for non-blocking `offer` in every schedule — this is the invariant
//!   every collector report asserts (DESIGN.md §11), checked here against
//!   all interleavings rather than the ones a test host happens to hit;
//! * a producer that observes a departed consumer gets its record back
//!   (`send == Err`) rather than silently dropping it.
#![cfg(loom)]

use probenet_stream::spsc;

/// Three blocking sends through a 2-slot ring: the third send must block
/// until the consumer drains. FIFO order and zero drops in every schedule.
#[test]
fn blocking_send_is_lossless_in_every_schedule() {
    loom::model(|| {
        let (tx, rx) = spsc::channel::<u32>(2);
        let producer = loom::thread::spawn(move || {
            for i in 0..3u32 {
                tx.send(i).expect("consumer alive");
            }
            // tx drops here: producer_gone lets the consumer finish.
        });
        let mut got = Vec::new();
        while !rx.is_finished() {
            if rx.drain(&mut got, 4) == 0 {
                loom::thread::yield_now();
            }
        }
        producer.join().expect("producer");
        assert_eq!(got, vec![0, 1, 2], "lost or reordered record");
        assert_eq!(rx.dropped(), 0);
    });
}

/// Non-blocking offers against a concurrent drainer: whatever the
/// schedule, every produced record is either delivered or counted in the
/// drop counter — `records + dropped == produced`, with delivery a
/// FIFO subsequence of production.
#[test]
fn offer_drop_accounting_holds_in_every_schedule() {
    loom::model(|| {
        let (tx, rx) = spsc::channel::<u32>(2);
        let producer = loom::thread::spawn(move || {
            let mut produced = 0u64;
            let mut accepted = 0u64;
            for i in 0..3u32 {
                produced += 1;
                if tx.offer(i) {
                    accepted += 1;
                }
            }
            (produced, accepted)
        });
        let mut got = Vec::new();
        while !rx.is_finished() {
            if rx.drain(&mut got, 4) == 0 {
                loom::thread::yield_now();
            }
        }
        let (produced, accepted) = producer.join().expect("producer");
        assert_eq!(accepted, got.len() as u64, "accepted records must arrive");
        assert_eq!(
            got.len() as u64 + rx.dropped(),
            produced,
            "drop-accounting invariant records + dropped == produced"
        );
        assert!(
            got.windows(2).all(|w| w[0] < w[1]),
            "delivered records out of order: {got:?}"
        );
    });
}

/// A consumer departing at any point: the producer's blocking send either
/// delivered before the departure or hands the record back as `Err`.
#[test]
fn send_returns_record_when_consumer_departs() {
    loom::model(|| {
        let (tx, rx) = spsc::channel::<u32>(1);
        let consumer = loom::thread::spawn(move || {
            let mut got = Vec::new();
            rx.drain(&mut got, 4);
            // rx drops here, possibly while the producer is mid-send.
            got
        });
        let mut delivered = 0u64;
        let mut returned = 0u64;
        for i in 0..2u32 {
            match tx.send(i) {
                Ok(()) => delivered += 1,
                Err(v) => {
                    assert_eq!(v, i, "send must hand back the rejected record");
                    returned += 1;
                }
            }
        }
        let got = consumer.join().expect("consumer");
        assert_eq!(delivered + returned, 2, "every record accounted for");
        assert!(got.len() as u64 <= delivered);
    });
}
